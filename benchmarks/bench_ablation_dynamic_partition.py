"""Ablation (Section 4.3 / DATuner comparison): static vs dynamic
partitioning.

The paper argues for *static* ("some-for-all") partitioning over
DATuner's dynamic approach: dynamic partitioning "needs several
iterations for sampling at the beginning of the DSE process for every
partition", whereas S2FA's offline-established rules avoid that set-up
time.  DATuner's own claim — dynamic partitions are more case-specific
and can converge better *given enough time* — is also visible.

The bench measures both: the best QoR reached after one virtual hour
(early convergence, where set-up time dominates) and at each explorer's
termination.
"""

import math
import statistics

from common import FIG3_SEEDS, design_space, make_evaluator

from repro.dse import S2FAEngine
from repro.dse.datuner import DATunerEngine
from repro.report import format_table

APPS = ["KMeans", "LR", "AES", "S-W"]
EARLY_MINUTES = 60.0


def test_ablation_static_vs_dynamic_partitioning(benchmark):
    def run():
        outcomes = {}
        for name in APPS:
            early_static, early_dynamic = [], []
            final_static, final_dynamic = [], []
            for seed in FIG3_SEEDS:
                static = S2FAEngine(make_evaluator(name),
                                    design_space(name), seed=seed).run()
                dynamic = DATunerEngine(make_evaluator(name),
                                        design_space(name),
                                        seed=seed).run()
                early_static.append(static.trace.best_at(EARLY_MINUTES))
                early_dynamic.append(dynamic.trace.best_at(EARLY_MINUTES))
                final_static.append(static.best_qor)
                final_dynamic.append(dynamic.best_qor)
            outcomes[name] = {
                "early_static": statistics.median(early_static),
                "early_dynamic": statistics.median(early_dynamic),
                "final_static": statistics.median(final_static),
                "final_dynamic": statistics.median(final_dynamic),
            }
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    early_ratios = []
    for name, o in outcomes.items():
        early_ratio = o["early_dynamic"] / o["early_static"] \
            if math.isfinite(o["early_static"]) else math.inf
        if math.isfinite(early_ratio):
            early_ratios.append(early_ratio)
        rows.append([
            name,
            f"{o['early_static']:.3e}",
            f"{o['early_dynamic']:.3e}",
            f"{early_ratio:.2f}x" if math.isfinite(early_ratio) else "inf",
            f"{o['final_static']:.3e}",
            f"{o['final_dynamic']:.3e}",
        ])
    print()
    print(format_table(
        ["Kernel", f"static @{EARLY_MINUTES:.0f}min",
         f"dynamic @{EARLY_MINUTES:.0f}min", "dyn/static (early)",
         "static final", "dynamic final (4h)"],
        rows,
        title="Ablation: static (S2FA) vs dynamic (DATuner-style) "
              "partitioning — medians over 3 seeds"))
    geo = statistics.geometric_mean(early_ratios)
    print(f"early-convergence advantage of static rules (geomean): "
          f"{geo:.2f}x")
    print("(DATuner's per-partition sampling set-up time delays its "
          "convergence; given the full 4 h it can catch up or pass — "
          "both effects the papers describe.)")

    # The paper's argument: static partitioning avoids set-up time, so
    # S2FA is ahead early in the exploration on aggregate.
    assert geo > 1.05, (
        f"static partitioning should lead early, geomean {geo:.2f}")
    benchmark.extra_info["early_advantage_geomean"] = geo
