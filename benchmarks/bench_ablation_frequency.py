"""Ablation (extension): frequency-aware DSE.

The paper's DSE optimizes HLS cycle counts and notes as future work: "we
plan to model the impact of design factors on frequency during the DSE
process" (Section 5.2 — several designs missed the 250 MHz target after
place and route).  This repository implements that future work: the
default QoR rescales cycles to the achieved clock.

This bench quantifies the effect by running the same exploration with
both metrics and comparing the *wall-clock* quality (cycles / achieved
frequency) of the chosen designs.
"""

import math
import statistics

from common import FIG3_SEEDS, design_space, make_evaluator

from repro.dse import S2FAEngine
from repro.report import format_table

APPS = ["KMeans", "SVM", "AES", "S-W"]


def _wall_us(run) -> float:
    if run.best_result is None or not run.best_result.feasible:
        return float("inf")
    return run.best_result.seconds_per_batch * 1e6


def test_ablation_frequency_aware_qor(benchmark):
    def run():
        outcomes = {}
        for name in APPS:
            aware, blind = [], []
            for seed in FIG3_SEEDS:
                aware_run = S2FAEngine(
                    make_evaluator(name, frequency_aware=True),
                    design_space(name), seed=seed).run()
                blind_run = S2FAEngine(
                    make_evaluator(name, frequency_aware=False),
                    design_space(name), seed=seed).run()
                aware.append(_wall_us(aware_run))
                blind.append(_wall_us(blind_run))
            outcomes[name] = (statistics.median(aware),
                              statistics.median(blind))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, (aware, blind) in outcomes.items():
        gain = blind / aware if math.isfinite(aware) else math.nan
        rows.append([name, f"{aware:.1f} us", f"{blind:.1f} us",
                     f"{gain:.2f}x"])
    print()
    print(format_table(
        ["Kernel", "Frequency-aware (median batch)",
         "Cycles-only (paper)", "Wall-time gain"],
        rows,
        title="Ablation: frequency-aware QoR (the paper's future work)"))

    gains = [blind / aware for aware, blind in outcomes.values()
             if math.isfinite(aware) and math.isfinite(blind)]
    geo = statistics.geometric_mean(gains)
    print(f"geomean wall-time gain from frequency awareness: {geo:.2f}x")
    # Frequency awareness must never make the wall-clock outcome much
    # worse, and both modes must find feasible designs everywhere.
    assert len(gains) == len(APPS)
    assert geo >= 0.9
    benchmark.extra_info["geomean_gain"] = geo
