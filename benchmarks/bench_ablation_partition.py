"""Ablation (Section 4.3.1): decision-tree design space partitioning.

Runs the S2FA engine with and without static partitioning on kernels with
large and small spaces.  The paper's observation to reproduce: partitioning
helps the big spaces, while for KMeans "the design space is relatively
small, so the benefit of design space partition is marginal" (vanilla
OpenTuner reaches the same design there).
"""

import math
import statistics

from common import APP_NAMES, FIG3_SEEDS, design_space, make_evaluator

from repro.dse import S2FAEngine
from repro.report import format_table

APPS = ["KMeans", "LR", "AES", "S-W"]


def _run(name: str, seed: int, use_partitioning: bool):
    engine = S2FAEngine(make_evaluator(name), design_space(name),
                        seed=seed, use_partitioning=use_partitioning)
    return engine.run()


def test_ablation_partitioning(benchmark):
    def run():
        outcomes = {}
        for name in APPS:
            with_p, without_p = [], []
            for seed in FIG3_SEEDS:
                with_p.append(_run(name, seed, True).best_qor)
                without_p.append(_run(name, seed, False).best_qor)
            outcomes[name] = (statistics.median(with_p),
                              statistics.median(without_p))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name in APPS:
        with_p, without_p = outcomes[name]
        gain = without_p / with_p if math.isfinite(with_p) else math.nan
        rows.append([
            name,
            f"{design_space(name).size():.1e}",
            f"{with_p:.3e}",
            f"{without_p:.3e}",
            f"{gain:.2f}x",
        ])
    print()
    print(format_table(
        ["Kernel", "Space size", "With partitioning (median)",
         "Without (median)", "Partitioning gain"],
        rows, title="Ablation: static design-space partitioning"))

    # Partitioning must never be catastrophic, and it must help at least
    # one of the large-space kernels clearly.
    gains = {name: outcomes[name][1] / outcomes[name][0]
             for name in APPS}
    assert max(gains[n] for n in ("LR", "AES", "S-W")) >= 1.0
    assert all(g > 0.4 for g in gains.values() if math.isfinite(g))
    # KMeans has the smallest space, so partitioning helps it the least
    # ("the benefit of design space partition is marginal", Section 5.2).
    assert gains["KMeans"] <= min(gains[n] for n in ("LR", "AES", "S-W")), (
        f"KMeans should benefit least from partitioning, got {gains}")
    benchmark.extra_info["gains"] = {
        k: (v if math.isfinite(v) else None) for k, v in gains.items()}
