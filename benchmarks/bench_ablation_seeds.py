"""Ablation (Section 4.3.2): seed generation.

Compares S2FA runs with the two generated seeds (performance-driven +
conservative) against runs seeded with a random point.  Claims to
reproduce:

* the conservative seed guarantees the learner starts in the feasible
  region — the first feasible design appears immediately, never after a
  long infeasible streak;
* the performance-driven seed "significantly reduces the iteration
  number" when it happens to synthesize (and simply fails otherwise,
  which is why both seeds exist).
"""

import math

from common import (
    APP_NAMES,
    FIG3_SEEDS,
    compiled,
    design_space,
    make_evaluator,
)

from repro.dse import S2FAEngine
from repro.dse.seeds import area_seed, performance_seed
from repro.merlin import DesignConfig
from repro.hls import estimate
from repro.report import format_table

APPS = ["KMeans", "LR", "SVM", "AES", "S-W"]


def _first_feasible_minute(run) -> float:
    for point in run.trace.points:
        if math.isfinite(point.best_qor):
            return point.minutes
    return float("inf")


def test_ablation_seed_generation(benchmark):
    def run():
        outcomes = {}
        for name in APPS:
            seeded_first, random_first = [], []
            seeded_best, random_best = [], []
            for seed in FIG3_SEEDS:
                seeded = S2FAEngine(
                    make_evaluator(name), design_space(name),
                    seed=seed, use_seeds=True).run()
                unseeded = S2FAEngine(
                    make_evaluator(name), design_space(name),
                    seed=seed, use_seeds=False).run()
                seeded_first.append(_first_feasible_minute(seeded))
                random_first.append(_first_feasible_minute(unseeded))
                seeded_best.append(seeded.best_qor)
                random_best.append(unseeded.best_qor)
            outcomes[name] = (max(seeded_first), max(random_first),
                              min(seeded_best), min(random_best))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name,
             f"{v[0]:.0f} min",
             f"{v[1]:.0f} min",
             f"{v[2]:.3e}",
             f"{v[3]:.3e}"]
            for name, v in outcomes.items()]
    print()
    print(format_table(
        ["Kernel", "First feasible (seeded, worst)",
         "First feasible (random, worst)", "Best (seeded)",
         "Best (random)"],
        rows, title="Ablation: seed generation"))

    # The conservative seed bounds time-to-first-feasible in EVERY run.
    for name, (seeded_first, _, _, _) in outcomes.items():
        assert seeded_first < 45, (
            f"{name}: seeded run took {seeded_first} virtual minutes to "
            f"its first feasible design")
    benchmark.extra_info["first_feasible"] = {
        name: v[0] for name, v in outcomes.items()}


def test_conservative_seed_always_feasible(benchmark):
    """The area-driven seed synthesizes for every kernel (the guarantee
    of Section 4.3.2); the performance-driven seed is allowed to fail."""

    def run():
        outcomes = {}
        for name in APP_NAMES:
            space = design_space(name)
            ck = compiled(name)
            conservative = estimate(
                ck.kernel, DesignConfig.from_point(area_seed(space)))
            aggressive = estimate(
                ck.kernel,
                DesignConfig.from_point(performance_seed(space)))
            outcomes[name] = (conservative.feasible, aggressive.feasible)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Kernel", "Area seed feasible", "Performance seed feasible"],
        [[n, str(a), str(b)] for n, (a, b) in outcomes.items()],
        title="Seed feasibility"))
    assert all(conservative for conservative, _ in outcomes.values()), (
        "the conservative seed must synthesize everywhere")
