"""Ablation (Section 4.3.3): the Shannon-entropy early stopping criterion.

Compares three termination policies under the same budget:

* the entropy criterion (Eq. 2) — S2FA's,
* the trivial criterion (stop after 10 idle iterations) — per the paper
  this one runs about an hour longer for only ~4% better QoR,
* no criterion (run to the four-hour limit) — vanilla OpenTuner's policy.
"""

import math
import statistics

from common import FIG3_SEEDS, design_space, make_evaluator

from repro.dse import S2FAEngine
from repro.dse.stopping import (
    EntropyStopping,
    NeverStop,
    NoImprovementStopping,
)
from repro.report import format_table

APPS = ["KMeans", "LR", "AES", "S-W"]

POLICIES = {
    "entropy (Eq. 2)": EntropyStopping,
    "trivial (10 idle)": lambda: NoImprovementStopping(patience=10),
    "time limit only": NeverStop,
}


def _run(name: str, seed: int, factory):
    engine = S2FAEngine(make_evaluator(name), design_space(name),
                        seed=seed, stopping_factory=factory)
    return engine.run()


def test_ablation_stopping_criteria(benchmark):
    def run():
        outcomes = {}
        for policy, factory in POLICIES.items():
            terms, bests = [], []
            for name in APPS:
                for seed in FIG3_SEEDS:
                    result = _run(name, seed, factory)
                    terms.append(result.termination_minutes)
                    bests.append(result.best_qor)
            outcomes[policy] = (statistics.mean(terms),
                                statistics.geometric_mean(
                                    [b for b in bests
                                     if math.isfinite(b)]))
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    entropy_term, entropy_qor = outcomes["entropy (Eq. 2)"]
    rows = []
    for policy, (term, qor) in outcomes.items():
        rows.append([
            policy,
            f"{term / 60:.1f} h",
            f"{qor:.3e}",
            f"{100 * (entropy_qor / qor - 1):+.1f}%",
        ])
    print()
    print(format_table(
        ["Stopping policy", "Mean termination", "Geomean best QoR",
         "QoR vs entropy"],
        rows, title="Ablation: early stopping criteria "
                    "(paper: trivial stops ~1 h later for ~4% QoR)"))

    trivial_term, trivial_qor = outcomes["trivial (10 idle)"]
    never_term, never_qor = outcomes["time limit only"]
    # The entropy criterion terminates earlier than the trivial one...
    assert entropy_term < trivial_term + 1e-9, (
        f"entropy should stop no later than trivial "
        f"({entropy_term:.0f} vs {trivial_term:.0f} min)")
    # ...and the extra time the longer policies spend buys only a small
    # QoR improvement (the paper measures ~4%).
    assert never_qor >= entropy_qor * 0.70, (
        "the entropy criterion should not lose much QoR vs running the "
        "full four hours")
    # No-criterion always burns the full budget.
    assert never_term >= 235
    benchmark.extra_info["terminations_hours"] = {
        policy: term / 60 for policy, (term, _) in outcomes.items()}
