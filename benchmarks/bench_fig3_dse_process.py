"""Fig. 3: the DSE process — S2FA (solid) vs vanilla OpenTuner (dashed).

For every kernel, runs both explorers on the same 8-worker virtual-time
budget and reports:

* the best-QoR trajectory (ASCII rendering of each Fig. 3 panel),
* S2FA's earlier termination (paper: ~1.9 h vs OpenTuner's fixed 4 h,
  a 52.5% average time saving),
* the QoR ratio (paper: 35x average improvement; our OpenTuner baseline
  shares the same accurate cost model, so the gap is smaller but S2FA
  still wins nearly everywhere — see EXPERIMENTS.md),
* the first-explored-point gap that demonstrates seed generation.
"""

import math
import statistics

from common import APP_NAMES, FIG3_SEEDS, opentuner_run, s2fa_run

from repro.report import format_table, trace_chart


def _aggregate() -> dict:
    rows = []
    ratios, savings, terms = [], [], []
    for name in APP_NAMES:
        per_seed = []
        for seed in FIG3_SEEDS:
            s2fa = s2fa_run(name, seed)
            opentuner = opentuner_run(name, seed)
            ratio = opentuner.best_qor / s2fa.best_qor
            per_seed.append((ratio, s2fa, opentuner))
            ratios.append(ratio)
            savings.append(
                1 - s2fa.termination_minutes
                / opentuner.termination_minutes)
            terms.append(s2fa.termination_minutes)
        median_ratio, s2fa, opentuner = sorted(
            per_seed, key=lambda x: x[0])[len(per_seed) // 2]
        rows.append([
            name,
            f"{s2fa.best_qor:.3e}",
            f"{opentuner.best_qor:.3e}",
            f"{median_ratio:.2f}x",
            f"{s2fa.termination_minutes:.0f} min",
            f"{opentuner.termination_minutes:.0f} min",
            s2fa.evaluations,
            opentuner.evaluations,
        ])
    finite = [r for r in ratios if math.isfinite(r) and r > 0]
    return {
        "rows": rows,
        "geo_ratio": statistics.geometric_mean(finite),
        "mean_saving": statistics.mean(savings),
        "mean_term_hours": statistics.mean(terms) / 60.0,
    }


def test_fig3_dse_process(benchmark):
    result = benchmark.pedantic(_aggregate, rounds=1, iterations=1)

    print()
    print(format_table(
        ["Kernel", "S2FA best", "OpenTuner best", "OT/S2FA (median)",
         "S2FA stop", "OT stop", "S2FA evals", "OT evals"],
        result["rows"],
        title="Fig. 3 aggregate: S2FA vs OpenTuner "
              f"(median over seeds {FIG3_SEEDS})"))
    print()
    print(f"QoR improvement over OpenTuner (geomean): "
          f"{result['geo_ratio']:.2f}x   [paper: 35x avg — see notes]")
    print(f"DSE time saving vs the 4-hour budget     : "
          f"{100 * result['mean_saving']:.0f}%   [paper: 52.5%]")
    print(f"mean S2FA termination                    : "
          f"{result['mean_term_hours']:.1f} h  [paper: ~1.9 h]")

    for name in ("S-W", "KMeans"):
        s2fa = s2fa_run(name, FIG3_SEEDS[-1])
        opentuner = opentuner_run(name, FIG3_SEEDS[-1])
        print()
        print(trace_chart(
            {
                "S2FA": [(p.minutes, p.best_qor)
                         for p in s2fa.trace.points],
                "OpenTuner": [(p.minutes, p.best_qor)
                              for p in opentuner.trace.points],
            },
            title=f"Fig. 3 panel: {name}"))

    # Shape assertions from the paper's discussion:
    # S2FA terminates before OpenTuner's fixed four hours on average.
    assert result["mean_term_hours"] < 4.0
    assert result["mean_saving"] > 0.10
    # S2FA's designs are at least as good as OpenTuner's on aggregate.
    assert result["geo_ratio"] >= 0.95
    benchmark.extra_info.update({
        "geo_qor_ratio": result["geo_ratio"],
        "mean_time_saving": result["mean_saving"],
        "mean_termination_hours": result["mean_term_hours"],
    })


def test_fig3_seed_first_point(benchmark):
    """The QoR difference of the first explored point illustrates seed
    generation: S2FA's area-driven seed is always feasible, while vanilla
    OpenTuner starts from a random point."""

    def run():
        outcomes = {}
        for name in APP_NAMES:
            s2fa_feasible = 0
            opentuner_feasible = 0
            for seed in FIG3_SEEDS:
                s2fa = s2fa_run(name, seed)
                opentuner = opentuner_run(name, seed)
                # S2FA's first *two* points per partition are the seeds;
                # the area seed guarantees an early feasible result.
                early = [p.best_qor for p in s2fa.trace.points[:20]]
                if any(math.isfinite(q) for q in early):
                    s2fa_feasible += 1
                early_ot = [p.best_qor
                            for p in opentuner.trace.points[:2]]
                if any(math.isfinite(q) for q in early_ot):
                    opentuner_feasible += 1
            outcomes[name] = (s2fa_feasible, opentuner_feasible)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        ["Kernel", "S2FA early-feasible runs", "OT early-feasible runs"],
        [[name, f"{a}/{len(FIG3_SEEDS)}", f"{b}/{len(FIG3_SEEDS)}"]
         for name, (a, b) in outcomes.items()],
        title="Seed generation: early feasibility per DSE run"))
    total_s2fa = sum(a for a, _ in outcomes.values())
    assert total_s2fa == len(APP_NAMES) * len(FIG3_SEEDS), (
        "the conservative seed must give S2FA an early feasible design "
        "in every run")
