"""Fig. 4: manual and S2FA-generated designs vs the JVM baseline.

For every kernel, measures (on the models):

* the single-threaded Spark/JVM executor time per task (bytecode
  interpreter with the calibrated cost model, sampled and extrapolated),
* the S2FA-generated design's end-to-end task time (kernel at achieved
  clock + PCIe + generated serialization),
* the expert manual design's task time.

Paper claims reproduced as shape: S2FA designs reach a large fraction of
manual performance (~85% average) except LR, where the manual pipeline
splitting beats the II=13 exp-bound automatic design; string kernels gain
orders of magnitude more than ML kernels; PR gains least.
"""

import math
import statistics

from common import (
    APP_NAMES,
    best_design,
    jvm_seconds_per_task,
    manual_design,
    speedup_over_jvm,
)

from repro.report import format_table, log_bar_chart, speedup_summary


def _collect() -> dict:
    from common import compiled

    data = {}
    for name in APP_NAMES:
        _, auto_hls = best_design(name)
        _, man_hls = manual_design(name)
        batch = compiled(name).batch_size
        data[name] = {
            "jvm_us": jvm_seconds_per_task(name) * 1e6,
            "s2fa": speedup_over_jvm(name, auto_hls),
            "manual": speedup_over_jvm(name, man_hls),
            # Kernel-only comparison ("system-level overhead is
            # transparent to Blaze", Section 5.2).
            "s2fa_kernel": auto_hls.normalized_cycles / batch,
            "manual_kernel": man_hls.normalized_cycles / batch,
            "s2fa_ii": auto_hls.ii_top,
            "manual_ii": man_hls.ii_top,
        }
    return data


def test_fig4_speedups(benchmark):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    fractions = []
    for name in APP_NAMES:
        d = data[name]
        fraction = d["s2fa"] / d["manual"] if d["manual"] else math.nan
        fractions.append(fraction)
        rows.append([
            name,
            f"{d['jvm_us']:.2f} us",
            f"{d['manual']:.1f}x",
            f"{d['s2fa']:.1f}x",
            f"{100 * fraction:.0f}%",
            f"{d['manual_kernel']:.1f} / {d['s2fa_kernel']:.1f}",
        ])
    print()
    print(format_table(
        ["Kernel", "JVM / task", "Manual speedup", "S2FA speedup",
         "S2FA/manual", "kernel cyc/task (man/S2FA)"],
        rows, title="Fig. 4: speedup over the single-thread JVM executor"))
    print()
    print(log_bar_chart(
        APP_NAMES,
        {"manual": [data[n]["manual"] for n in APP_NAMES],
         "S2FA": [data[n]["s2fa"] for n in APP_NAMES]},
        title="Fig. 4 (log scale)"))
    print()
    print(speedup_summary(APP_NAMES,
                          [data[n]["s2fa"] for n in APP_NAMES], "S2FA"))
    print(speedup_summary(APP_NAMES,
                          [data[n]["manual"] for n in APP_NAMES],
                          "manual"))
    ml = [data[n]["s2fa"] for n in ("KMeans", "KNN", "LR", "SVM", "LLS")]
    strings = [data[n]["s2fa"] for n in ("AES", "S-W")]
    print(f"ML kernels      : up to {max(ml):.1f}x   "
          f"[paper: up to 49.9x]")
    print(f"string kernels  : up to {max(strings):.1f}x   "
          f"[paper: up to ~1225x]")
    print(f"mean S2FA/manual: "
          f"{100 * statistics.mean(f for f in fractions if math.isfinite(f)):.0f}%"
          f"   [paper: ~85%]")

    # --- shape assertions -------------------------------------------------
    # String processing dwarfs machine learning; PR gains least.
    assert min(strings) > max(ml), (
        "string kernels must beat every ML kernel")
    assert data["PR"]["s2fa"] == min(d["s2fa"] for d in data.values()), (
        "PR should benefit least (bandwidth-bound, trivial compute)")
    # Everything still beats the JVM.
    assert all(d["s2fa"] > 1.0 for d in data.values())
    # Most S2FA designs are competitive with manual ones.
    competitive = [f for f in fractions if f >= 0.6]
    assert len(competitive) >= 5

    benchmark.extra_info["speedups"] = {
        n: {"s2fa": data[n]["s2fa"], "manual": data[n]["manual"]}
        for n in APP_NAMES}


def test_fig4_lr_stage_split_story(benchmark):
    """Section 5.2's LR discussion, as a controlled comparison.

    "The core computation of LR ... involves floating point
    multiplication and exponential calculation so the minimal initial
    interval is still 13.  The LR manual design splits the computation
    statement to multiple stages to form a highly efficient pipeline."

    Compare the same LR pipeline configuration with one compute unit,
    with and without the manual-only stage splitting: the automatic
    design is stuck at II = 13 (the exp core), the split pipeline
    accepts a task every couple of cycles.
    """
    from dataclasses import replace

    from common import compiled, manual_design

    from repro.hls import estimate
    from repro.merlin import DesignConfig, LoopConfig

    def run():
        ck = compiled("LR")
        base_config, _ = manual_design("LR")
        loops = dict(base_config.loops)
        loops["L0"] = LoopConfig(tile=loops["L0"].tile, parallel=1,
                                 pipeline="on")
        single_cu = DesignConfig(loops=loops,
                                 bitwidths=dict(base_config.bitwidths))
        auto = estimate(ck.kernel, single_cu)
        manual = DesignConfig(loops=loops,
                              bitwidths=dict(base_config.bitwidths),
                              stage_split=True)
        split = estimate(ck.kernel, manual)
        return auto, split

    auto, split = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"LR single-CU pipeline, automatic : II = {auto.ii_top}, "
          f"{auto.cycles} cycles/batch")
    print(f"LR single-CU pipeline, stage-split (manual-only): II = "
          f"{split.ii_top}, {split.cycles} cycles/batch")
    # The unsplit pipeline is held up by the sigmoid stage (>= the
    # 13-cycle exp core); splitting the statement brings the II down by
    # several times and the batch latency with it.
    assert auto.ii_top is not None and auto.ii_top >= 13, (
        f"the exp-bearing stage should pin the automatic II at >= 13, "
        f"got {auto.ii_top}")
    assert split.ii_top is not None and split.ii_top * 4 <= auto.ii_top
    assert split.cycles * 2 < auto.cycles
