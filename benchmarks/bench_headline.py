"""Headline claims: the abstract/conclusion numbers in one table.

"Evaluation results show that our generated FPGA designs achieve up to
49.9x performance improvement for several machine learning applications
compared to their corresponding implementations on the JVM ... our
generated FPGA kernels reach 1225.2x and 49.9x speedup for string
processing and machine learning applications respectively."

And the automation claim: "S2FA only requires a few hours including
bit-stream generation to finish a FPGA design" — the flow is one call,
with the DSE converging on its own.
"""

import math
import statistics

from common import (
    APP_NAMES,
    aggregate_stats,
    best_design,
    jvm_seconds_per_task,
    s2fa_run,
    speedup_over_jvm,
)

from repro.apps import get_app
from repro.report import evaluation_stats_table, format_table

ML = ("KMeans", "KNN", "LR", "SVM", "LLS")
STRINGS = ("AES", "S-W")


def test_headline_claims(benchmark):
    def run():
        speedups = {}
        for name in APP_NAMES:
            _, hls = best_design(name)
            speedups[name] = speedup_over_jvm(name, hls)
        return speedups

    speedups = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ["max ML speedup", "49.9x",
         f"{max(speedups[n] for n in ML):.1f}x"],
        ["max string-processing speedup", "~1225x",
         f"{max(speedups[n] for n in STRINGS):.1f}x"],
        ["every kernel compiled automatically", "8/8",
         f"{sum(1 for n in APP_NAMES if math.isfinite(speedups[n]))}/8"],
        ["every kernel beats the JVM", "8/8",
         f"{sum(1 for n in APP_NAMES if speedups[n] > 1)}/8"],
        ["DSE hours per kernel (virtual)", "~1.9 h",
         f"{statistics.mean(s2fa_run(n).termination_minutes for n in APP_NAMES) / 60:.1f} h"],
    ]
    print()
    print(format_table(["Claim", "Paper", "Measured"], rows,
                       title="Headline claims"))

    # The orderings the conclusions rest on.
    assert min(speedups[n] for n in STRINGS) \
        > max(speedups[n] for n in ML), \
        "string processing must dominate ML"
    assert all(speedups[n] > 1 for n in APP_NAMES)
    assert max(speedups[n] for n in ML) > 10, \
        "ML kernels should gain an order of magnitude"
    assert max(speedups[n] for n in STRINGS) > 100, \
        "string kernels should gain two orders of magnitude"

    # Automation: every kernel's flow ran end to end with zero
    # per-application pragma/interface engineering.
    for name in APP_NAMES:
        spec = get_app(name)
        assert spec.compile().loop_labels, f"{name} did not compile"

    stats = aggregate_stats()
    print()
    print(evaluation_stats_table(stats))

    benchmark.extra_info["speedups"] = {
        name: (value if math.isfinite(value) else None)
        for name, value in speedups.items()}
    benchmark.extra_info["evaluation"] = {
        key: stats[key] for key in ("jobs", "estimates", "memory_hits",
                                    "store_hits", "hit_rate",
                                    "worker_failures")}
