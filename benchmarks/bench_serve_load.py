"""Serving-layer load benchmark: latency, shed rate, and degradation.

Runs the deterministic multi-tenant load generator against a ServeCore
at three operating points — nominal, 10x overload, and nominal with
board faults injected mid-traffic — and reports the headline service
numbers (p50/p99 virtual latency, shed rate, board utilization,
degraded fraction) for each.  The run is entirely on the virtual clock,
so the numbers are bit-reproducible across machines.
"""

from repro.config import RuntimeConfig, ServeConfig
from repro.report import format_table
from repro.serve.loadgen import LoadProfile, run_profile

NOMINAL = LoadProfile(clients=100, tenants=4, requests_per_client=3,
                      mean_interarrival_s=0.05, n_tasks=6, seed=11)
OVERLOAD = LoadProfile(clients=100, tenants=4, requests_per_client=3,
                       mean_interarrival_s=0.005, n_tasks=6, seed=11)

SCENARIOS = [
    ("nominal", NOMINAL, ServeConfig(replicas=2)),
    ("overload 10x", OVERLOAD, ServeConfig(replicas=1, queue_depth=8)),
    ("faults mid-run", NOMINAL,
     ServeConfig(replicas=2, runtime=RuntimeConfig(
         fault_plan="transient=0.2,lose_after=15", fault_seed=3))),
]


def test_serve_load_profiles(benchmark):
    def run():
        out = {}
        for name, profile, config in SCENARIOS:
            _, report = run_profile(profile, config, verify=True)
            assert report.lost == 0, name
            assert report.duplicates == 0, name
            assert report.mismatches == 0, name
            out[name] = report
        return out

    reports = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, r in reports.items():
        shed_rate = r.shed / r.submitted if r.submitted else 0.0
        degraded_rate = r.degraded / max(r.completed, 1)
        rows.append([
            name, str(r.submitted), str(r.completed),
            f"{shed_rate:.1%}",
            f"{r.p50_latency_s * 1e3:.2f}",
            f"{r.p99_latency_s * 1e3:.2f}",
            f"{r.utilization:.1%}",
            f"{degraded_rate:.1%}",
        ])
    print()
    print(format_table(
        ["Scenario", "submitted", "completed", "shed",
         "p50 (vms)", "p99 (vms)", "util", "degraded"],
        rows,
        title="s2fa serve: deterministic load profiles "
              "(virtual-clock latencies)"))
    nominal = reports["nominal"]
    overload = reports["overload 10x"]
    assert nominal.shed == 0                    # no shedding at nominal
    assert overload.shed > 0                    # overload sheds...
    assert overload.completed > 0               # ...but never collapses
    assert reports["faults mid-run"].degraded > 0
