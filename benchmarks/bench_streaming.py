#!/usr/bin/env python
"""Streaming engine benchmark: throughput, latency, fault recovery.

Runs every registered streaming app through three scenarios on the
virtual clock and writes the result as JSON (``BENCH_streaming.json``
at the repo root is the committed snapshot):

* **clean** — fault-free, source-saturated (tiny interval): sustained
  records per virtual second and p50/p99 micro-batch latency;
* **faulted** — transient aborts, hangs, and a late board loss: the
  sink rows must stay bit-identical to the clean run (content-time
  separation) while throughput degrades;
* **recovery** — every board hangs and is lost at the start: the
  stream enters LAGGING, falls back to the JVM, and must catch back up
  to its schedule; the report records how many batches the drain took.

Determinism is part of the contract: all three scenarios must produce
the same sink-row digest per app.  ``--floor`` / ``--p99-ceiling`` /
``--recovery-ceiling`` turn the report into a CI gate.

Usage::

    PYTHONPATH=src python benchmarks/bench_streaming.py --json BENCH_streaming.json
    PYTHONPATH=src python benchmarks/bench_streaming.py --floor 20000  # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import RuntimeConfig, S2FASession, StreamConfig
from repro.apps import STREAM_APPS
from repro.streaming import fingerprint

APP_NAMES = [spec.name for spec in STREAM_APPS]

#: Records / micro-batch geometry shared by every scenario.
TOTAL_RECORDS = 2048
BATCH_RECORDS = 32
PARTITIONS = 2

#: Clean/faulted runs are source-saturated: the interval is far below
#: the per-batch compute cost's scale, so throughput measures the
#: pipeline, not the admission schedule.
SATURATED_INTERVAL = 0.001

#: The recovery run leaves headroom (interval above the JVM-fallback
#: batch cost) so a lagging stream *can* catch back up.
RECOVERY_INTERVAL = 0.005

#: Mixed fault schedule for the degradation scenario: enough noise to
#: exercise retries and quarantine, plus a late permanent board loss.
FAULT_PLAN = "transient=0.2,hang=0.1,lose_after=24"
#: Worst-case schedule for the recovery scenario: every invocation
#: hangs until the board is declared lost almost immediately.
LOSS_PLAN = "hang=1.0,lose_after=2"
FAULT_SEED = 11


def _run(app: str, *, interval: float, plan: str | None = None,
         max_lag_intervals: float = 2.0):
    cfg = StreamConfig(
        total_records=TOTAL_RECORDS, batch_records=BATCH_RECORDS,
        interval_seconds=interval, max_lag_intervals=max_lag_intervals,
        runtime=RuntimeConfig(partitions=PARTITIONS, fault_plan=plan,
                              fault_seed=FAULT_SEED))
    start = time.perf_counter()
    outcome = S2FASession().stream(app, cfg)
    wall = time.perf_counter() - start
    return outcome, wall


def _percentile(latencies: list, q: float) -> float:
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def _bench_app(name: str) -> dict:
    row: dict = {"records": TOTAL_RECORDS, "batch_records": BATCH_RECORDS}

    clean, wall = _run(name, interval=SATURATED_INTERVAL)
    digest = fingerprint(clean.sink.rows)
    row["clean"] = {
        "throughput_rps": clean.throughput_rps,
        "wall_rps": clean.records_in / wall if wall > 0 else 0.0,
        "p50_ms": _percentile(clean.batch_latencies, 0.50) * 1e3,
        "p99_ms": _percentile(clean.batch_latencies, 0.99) * 1e3,
        "rows_emitted": clean.rows_emitted,
        "digest": digest,
    }

    faulted, _ = _run(name, interval=SATURATED_INTERVAL, plan=FAULT_PLAN)
    row["faulted"] = {
        "throughput_rps": faulted.throughput_rps,
        "p99_ms": _percentile(faulted.batch_latencies, 0.99) * 1e3,
        "transient_faults": faulted.metrics.transient_faults,
        "timeouts": faulted.metrics.timeouts,
        "devices_lost": faulted.metrics.devices_lost,
        "bit_identical": fingerprint(faulted.sink.rows) == digest,
    }

    lost, _ = _run(name, interval=RECOVERY_INTERVAL, plan=LOSS_PLAN)
    lagging = [s for s in lost.signals if s.state == "LAGGING"]
    ok = [s for s in lost.signals if s.state == "OK"]
    row["recovery"] = {
        "recovered": bool(lost.recovery_seconds),
        "recovery_seconds": (lost.recovery_seconds[0]
                             if lost.recovery_seconds else None),
        "recovery_batches": (ok[0].batch_id - lagging[0].batch_id
                             if lagging and ok else None),
        "lagging_batches": lost.lagging_batches,
        "devices_lost": lost.metrics.devices_lost,
        "bit_identical": fingerprint(lost.sink.rows) == digest,
    }
    return row


def run_benchmark() -> dict:
    report: dict = {
        "benchmark": "micro-batched streaming (throughput/latency/recovery)",
        "total_records": TOTAL_RECORDS,
        "batch_records": BATCH_RECORDS,
        "partitions": PARTITIONS,
        "saturated_interval_seconds": SATURATED_INTERVAL,
        "recovery_interval_seconds": RECOVERY_INTERVAL,
        "fault_plan": FAULT_PLAN,
        "loss_plan": LOSS_PLAN,
        "fault_seed": FAULT_SEED,
        "apps": {},
    }
    for name in APP_NAMES:
        report["apps"][name] = _bench_app(name)
    apps = report["apps"]
    report["summary"] = {
        "min_throughput_rps": min(
            r["clean"]["throughput_rps"] for r in apps.values()),
        "max_p99_ms": max(r["clean"]["p99_ms"] for r in apps.values()),
        "max_recovery_batches": max(
            r["recovery"]["recovery_batches"] or 10**9
            for r in apps.values()),
        "all_recovered": all(
            r["recovery"]["recovered"] for r in apps.values()),
        "deterministic": all(
            r["faulted"]["bit_identical"]
            and r["recovery"]["bit_identical"] for r in apps.values()),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail if the minimum clean throughput "
                             "drops below this records/s")
    parser.add_argument("--p99-ceiling", type=float, default=None,
                        help="fail if any app's clean p99 batch latency "
                             "exceeds this many milliseconds")
    parser.add_argument("--recovery-ceiling", type=int, default=None,
                        help="fail if catching up after total board "
                             "loss takes more than this many batches")
    args = parser.parse_args(argv)

    report = run_benchmark()
    summary = report["summary"]

    header = f"{'app':>12} {'clean rps':>11} {'p50 ms':>8} {'p99 ms':>8} " \
             f"{'fault rps':>11} {'recover':>8}"
    print(header)
    print("-" * len(header))
    for name in APP_NAMES:
        row = report["apps"][name]
        print(f"{name:>12} {row['clean']['throughput_rps']:>11.0f} "
              f"{row['clean']['p50_ms']:>8.3f} "
              f"{row['clean']['p99_ms']:>8.3f} "
              f"{row['faulted']['throughput_rps']:>11.0f} "
              f"{row['recovery']['recovery_batches'] or '-':>7} b")
    print(f"\nmin clean throughput "
          f"{summary['min_throughput_rps']:.0f} records/s, "
          f"max recovery {summary['max_recovery_batches']} batches, "
          f"deterministic={summary['deterministic']}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json}")

    failed = False
    if not summary["deterministic"]:
        print("FAIL: faulted/recovery sink rows diverge from the "
              "fault-free run", file=sys.stderr)
        failed = True
    if not summary["all_recovered"]:
        print("FAIL: a stream never caught back up after board loss",
              file=sys.stderr)
        failed = True
    if args.floor is not None \
            and summary["min_throughput_rps"] < args.floor:
        print(f"FAIL: min clean throughput "
              f"{summary['min_throughput_rps']:.0f} records/s below "
              f"the pinned floor {args.floor:.0f}", file=sys.stderr)
        failed = True
    if args.p99_ceiling is not None \
            and summary["max_p99_ms"] > args.p99_ceiling:
        print(f"FAIL: clean p99 latency {summary['max_p99_ms']:.3f} ms "
              f"above the pinned ceiling {args.p99_ceiling} ms",
              file=sys.stderr)
        failed = True
    if args.recovery_ceiling is not None \
            and summary["max_recovery_batches"] > args.recovery_ceiling:
        print(f"FAIL: board-loss recovery took "
              f"{summary['max_recovery_batches']} batches, above the "
              f"pinned ceiling {args.recovery_ceiling}", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
