#!/usr/bin/env python
"""Surrogate-pruned DSE throughput vs the plain Fig. 3 engine.

Trains a GBDT surrogate on a seeded dataset swept over the registered
apps (the ``s2fa dataset build`` pipeline, in a temp directory unless
``--dataset`` points at an existing JSONL), then replays the Fig. 3
DSE bench (every app x seeds 1-5) twice per run: once plain, once with
surrogate-guided pruning.  The report compares *points per virtual
hour* — unique design points assessed per hour of modeled synthesis
time — and checks that the pruned search still lands on the identical
final best design per app (best across seeds, the same aggregation
Table 2 uses; five seeds instead of the Fig. 3 three so the *plain*
baseline is converged too — with fewer seeds the comparison fails in
the surrogate's favor, because the pruned search assesses ~2x more
points within the same entropy-stopping patience and keeps finding
strictly better designs than the baseline).

Accounting is strictly symmetric: for the pruned run the numerator is
unique analytical evaluations plus unique surrogate-pruned points (a
point revalidated at finalize counts once), and the denominator adds
the finalize revalidation minutes to the termination time.  The
surrogate's fidelity report (Spearman, top-k recall on held-out
points) is embedded so the committed snapshot records how good the
model backing the speedup was.

``BENCH_surrogate.json`` at the repo root is the committed snapshot.

Usage::

    PYTHONPATH=src python benchmarks/bench_surrogate.py \
        --json BENCH_surrogate.json
    PYTHONPATH=src python benchmarks/bench_surrogate.py --floor 2.0
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
from pathlib import Path

from common import APP_NAMES, s2fa_run

from repro.config import DatasetConfig
from repro.dataset import build_dataset, read_records, train_surrogate

#: Fraction of each round's cache-miss batch answered by the surrogate.
PRUNE_FRACTION = 0.5
#: One DSE run per seed per app per arm; the final design is the best
#: across seeds.  Five seeds (vs the Fig. 3 three) converge the plain
#: baseline: best-of-3 still moves on the larger spaces, best-of-5 is
#: stable for both arms on every registered app.
BENCH_SEEDS = (1, 2, 3, 4, 5)
#: Config samples per kernel when the bench builds its own dataset.
DATASET_CONFIGS = 96
#: Seed for the dataset sweep (the DSE seeds stay BENCH_SEEDS).
DATASET_SEED = 11
#: Virtual synthesis budget per run, both arms (the Fig. 3 default;
#: the searches usually stop earlier via the entropy criterion).
TIME_LIMIT_MINUTES = 240.0


def _points_per_hour(run) -> float:
    stats = run.surrogate_stats
    points = run.evaluations
    minutes = run.termination_minutes
    if stats is not None:
        points += stats["pruned_distinct"] - stats["revalidated"]
        minutes += stats["revalidation_minutes"]
    return points / (minutes / 60.0) if minutes > 0 else 0.0


def _train(dataset: str | None, configs: int) -> tuple:
    if dataset is not None:
        records, skipped = read_records(dataset)
        if skipped:
            print(f"warning: skipped {skipped} corrupt dataset records",
                  file=sys.stderr)
    else:
        with tempfile.TemporaryDirectory(
                prefix="bench-surrogate-") as tmp:
            cfg = DatasetConfig(out=str(Path(tmp) / "apps.jsonl"),
                                seed=DATASET_SEED, kernels=0,
                                apps=True, configs=configs)
            build_dataset(cfg)
            records, _ = read_records(cfg.out)
    surrogate, fidelity = train_surrogate(records, model="gbdt")
    return surrogate, fidelity, len(records)


def _best_of(runs) -> "object":
    return min(runs, key=lambda run: run.best_qor)


def run_benchmark(apps, dataset, configs, prune_fraction,
                  time_limit) -> dict:
    surrogate, fidelity, n_records = _train(dataset, configs)
    report: dict = {
        "benchmark": "surrogate-pruned DSE points/hour (fig3 bench)",
        "seeds": list(BENCH_SEEDS),
        "time_limit_minutes": time_limit,
        "prune_fraction": prune_fraction,
        "dataset": {"configs_per_kernel": configs,
                    "seed": DATASET_SEED,
                    "records": n_records,
                    "source": dataset or "built in-process over apps"},
        "surrogate": {"identity": surrogate.identity(),
                      "fidelity": fidelity.to_dict()},
        "apps": {},
    }
    for name in apps:
        plain_runs, pruned_runs = [], []
        rows = []
        for seed in BENCH_SEEDS:
            plain = s2fa_run(name, seed,
                             time_limit_minutes=time_limit)
            pruned = s2fa_run(name, seed, surrogate=surrogate,
                              prune_fraction=prune_fraction,
                              time_limit_minutes=time_limit)
            plain_runs.append(plain)
            pruned_runs.append(pruned)
            stats = pruned.surrogate_stats
            rows.append({
                "seed": seed,
                "plain": {
                    "evaluations": plain.evaluations,
                    "termination_minutes": plain.termination_minutes,
                    "best_qor": plain.best_qor,
                    "points_per_hour": _points_per_hour(plain),
                },
                "pruned": {
                    "evaluations": pruned.evaluations,
                    "termination_minutes": pruned.termination_minutes,
                    "pruned": stats["pruned"],
                    "pruned_distinct": stats["pruned_distinct"],
                    "revalidated": stats["revalidated"],
                    "revalidation_minutes": stats["revalidation_minutes"],
                    "promoted": stats["promoted"],
                    "best_qor": pruned.best_qor,
                    "points_per_hour": _points_per_hour(pruned),
                },
            })
        best_plain = _best_of(plain_runs)
        best_pruned = _best_of(pruned_runs)
        pph_plain = [r["plain"]["points_per_hour"] for r in rows]
        pph_pruned = [r["pruned"]["points_per_hour"] for r in rows]
        speedup = (sum(pph_pruned) / len(pph_pruned)) \
            / (sum(pph_plain) / len(pph_plain))
        report["apps"][name] = {
            "runs": rows,
            "points_per_hour_plain": sum(pph_plain) / len(pph_plain),
            "points_per_hour_pruned": sum(pph_pruned) / len(pph_pruned),
            "speedup": speedup,
            "best_design_plain": best_plain.best_point,
            "best_design_pruned": best_pruned.best_point,
            "best_qor_plain": best_plain.best_qor,
            "best_qor_pruned": best_pruned.best_qor,
            "identical_best_design": (
                best_plain.best_point == best_pruned.best_point
                and best_plain.best_qor == best_pruned.best_qor),
        }
    rows = report["apps"].values()
    report["summary"] = {
        "min_speedup": min(r["speedup"] for r in rows),
        "geomean_speedup": math.exp(
            sum(math.log(r["speedup"]) for r in rows) / len(rows)),
        "identical_best_design": all(
            r["identical_best_design"] for r in rows),
        "spearman": fidelity.spearman,
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--apps", nargs="*", default=APP_NAMES,
                        help="subset of apps to bench")
    parser.add_argument("--dataset", metavar="DS.jsonl", default=None,
                        help="train on an existing dataset instead of "
                             "building one in-process")
    parser.add_argument("--configs", type=int, default=DATASET_CONFIGS,
                        help="config samples per kernel for the "
                             "in-process dataset build")
    parser.add_argument("--prune-fraction", type=float,
                        default=PRUNE_FRACTION)
    parser.add_argument("--time-limit", type=float,
                        default=TIME_LIMIT_MINUTES,
                        help="virtual synthesis budget per run "
                             "(minutes, both arms)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail if the geomean points/hour speedup "
                             "drops below this ratio, or if any app's "
                             "final best design diverges")
    args = parser.parse_args(argv)

    report = run_benchmark(args.apps, args.dataset, args.configs,
                           args.prune_fraction, args.time_limit)
    summary = report["summary"]

    header = f"{'app':>8} {'plain pts/h':>12} {'pruned pts/h':>13} " \
             f"{'speedup':>8} {'same best':>10}"
    print(header)
    print("-" * len(header))
    for name in args.apps:
        row = report["apps"][name]
        print(f"{name:>8} {row['points_per_hour_plain']:>12.1f} "
              f"{row['points_per_hour_pruned']:>13.1f} "
              f"{row['speedup']:>7.2f}x "
              f"{str(row['identical_best_design']):>10}")
    print(f"\ngeomean {summary['geomean_speedup']:.2f}x "
          f"(min {summary['min_speedup']:.2f}x), "
          f"identical best design={summary['identical_best_design']}, "
          f"surrogate spearman {summary['spearman']:.3f}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json}")

    failed = False
    if not summary["identical_best_design"]:
        print("FAIL: pruned DSE diverged from the plain final best "
              "design", file=sys.stderr)
        failed = True
    if args.floor is not None \
            and summary["geomean_speedup"] < args.floor:
        print(f"FAIL: geomean points/hour speedup "
              f"{summary['geomean_speedup']:.2f}x below the pinned "
              f"floor {args.floor}x", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
