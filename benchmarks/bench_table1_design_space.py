"""Table 1: the identified design space, per kernel.

Regenerates the Table 1 factor inventory and the per-application space
sizes the paper quotes ("the design space of the S-W example contains
more than a thousand trillion design points" — sizes depend on loop
structure; the harness prints the factor breakdown so the magnitudes can
be compared).
"""

from common import APP_NAMES, compiled, design_space

from repro.report import format_table


def _space_report() -> str:
    rows = []
    for name in APP_NAMES:
        space = design_space(name)
        by_kind: dict[str, int] = {}
        for p in space.parameters:
            by_kind[p.kind] = by_kind.get(p.kind, 0) + 1
        loops = by_kind.get("pipeline", 0)
        rows.append([
            name,
            loops,
            by_kind.get("tile", 0),
            by_kind.get("parallel", 0),
            by_kind.get("bitwidth", 0),
            len(space.parameters),
            f"{space.size():.3e}",
        ])
    return format_table(
        ["Kernel", "Loops", "Tile", "Parallel", "Bit-width",
         "Factors", "Space size"],
        rows,
        title="Table 1 (instantiated): design-space factors per kernel",
    )


def test_table1_design_space(benchmark):
    report = {}

    def run():
        for name in APP_NAMES:
            report[name] = design_space(name).size()
        return report

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(_space_report())
    factor_table = format_table(
        ["Factor", "Values"],
        [
            ["Buffer bit-width",
             "powers of two, element width .. 512"],
            ["Loop tiling", "powers of two, 1 .. trip count"],
            ["Loop parallel (coarse/fine)",
             "powers of two, 1 .. min(trip count, 256)"],
            ["Loop pipeline (coarse/fine)", "off / on / flatten"],
        ],
        title="\nTable 1 (factors)",
    )
    print(factor_table)

    # The S-W space must dwarf the simple kernels' spaces, as the paper
    # highlights for its motivating example.
    assert result["S-W"] > 1e11
    assert result["S-W"] > 100 * result["PR"]
    # Every space is too large for exhaustive search.
    assert all(size > 1e5 for size in result.values())
    benchmark.extra_info["space_sizes"] = {
        name: float(size) for name, size in result.items()}


def test_design_space_matches_loop_structure(benchmark):
    """Factor counts follow the kernel's loop tree (3 factors per loop,
    1 per interface buffer)."""

    def run():
        checks = {}
        for name in APP_NAMES:
            ck = compiled(name)
            space = design_space(name)
            loops = len(ck.loop_labels)
            buffers = len(ck.layout.leaves)
            checks[name] = (loops, buffers, len(space.parameters))
        return checks

    checks = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (loops, buffers, params) in checks.items():
        assert params == 3 * loops + buffers, (
            f"{name}: {params} parameters for {loops} loops and "
            f"{buffers} buffers")
