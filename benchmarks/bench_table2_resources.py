"""Table 2: resource utilization and clock frequency per generated design.

Estimates the DSE-chosen design of every kernel on the VU9P model and
prints our BRAM/DSP/FF/LUT percentages and achieved frequency next to the
paper's Table 2 numbers.  Exact percentages depend on the authors' RTL
and our operator models; the shape claims asserted below are the ones the
paper's discussion leans on:

* utilization never exceeds the 75% usable envelope,
* bandwidth-bound kernels (AES, PR) leave compute resources idle,
* S-W's placed design misses the 250 MHz target by the widest margin.
"""

from common import APP_NAMES, best_design, compiled

from repro.apps import get_app
from repro.report import format_table


def _collect() -> dict:
    table = {}
    for name in APP_NAMES:
        config, hls = best_design(name)
        table[name] = hls
    return table


def test_table2_resources(benchmark):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)

    rows = []
    for name in APP_NAMES:
        spec = get_app(name)
        hls = results[name]
        paper = spec.table2
        rows.append([
            name,
            spec.kind,
            f"{hls.utilization_percent('bram')}% ({paper['bram']}%)",
            f"{hls.utilization_percent('dsp')}% ({paper['dsp']}%)",
            f"{hls.utilization_percent('ff')}% ({paper['ff']}%)",
            f"{hls.utilization_percent('lut')}% ({paper['lut']}%)",
            f"{hls.freq_mhz:.0f} ({paper['freq']})",
            "yes" if hls.memory_bound else "no",
        ])
    print()
    print(format_table(
        ["Kernel", "Type", "BRAM", "DSP", "FF", "LUT",
         "Freq MHz", "BW-bound"],
        rows,
        title="Table 2: ours (paper's value in parentheses), "
              "DSE-selected designs"))

    # 75% usable-envelope cap (footnote 5): every deployed design fits.
    for name, hls in results.items():
        assert hls.feasible, f"{name} design infeasible"
        for kind in ("bram", "dsp", "ff", "lut"):
            assert hls.utilization[kind] <= 1.0, (
                f"{name} exceeds the usable {kind.upper()} envelope")

    # Frequency: designs miss the 250 MHz target when big; S-W worst.
    freqs = {name: hls.freq_mhz for name, hls in results.items()}
    assert min(freqs.values()) == freqs["S-W"], (
        f"S-W should have the lowest clock, got {freqs}")
    assert freqs["S-W"] <= 160

    # Bandwidth-bound kernels do not saturate compute resources.
    for name in ("PR", "AES"):
        hls = results[name]
        assert hls.memory_bound, f"{name} should be bandwidth-bound"

    benchmark.extra_info["frequencies"] = freqs
