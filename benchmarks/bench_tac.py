#!/usr/bin/env python
"""Engine shootout: flattened engines vs the original walkers.

Measures wall-clock per-task for the two JVM engines (``tac`` register
IR vs ``stack`` bytecode walker) and the two C executors (``flat``
closure-compiled vs ``tree`` AST walker) on every registered app, and
writes the result as JSON (``BENCH_tac.json`` at the repo root is the
committed snapshot).

Determinism is part of the contract: for each app the two engines of a
pair must produce bit-identical outputs (hashed into the report), and
the TAC engine's cost-model instruction count must equal the stack
engine's.  ``--floor`` turns the report into a CI gate: the job fails
if the minimum tac/stack speedup over the *interpreter-bound* apps
drops below the pinned ratio, or if determinism breaks.

Usage::

    PYTHONPATH=src python benchmarks/bench_tac.py --json BENCH_tac.json
    PYTHONPATH=src python benchmarks/bench_tac.py --floor 3.0  # CI gate
"""

from __future__ import annotations

import argparse
import hashlib
import json
import math
import sys
import time

from repro.apps import ALL_APPS, get_app
from repro.blaze import make_serializer
from repro.blaze.runtime import _JVMTaskRunner
from repro.fpga.executor import KernelExecutor
from repro.fpga.flat import FlatKernelExecutor
from repro.fuzz.oracle import bits_equal

APP_NAMES = [spec.name for spec in ALL_APPS]

#: Apps whose runtime is dominated by kernel interpretation (little
#: host-side bridging); these carry the headline speedup claim and the
#: CI floor.  The bridging-heavy apps (large tuple/array marshalling
#: per task) still must speed up, but their ratio is capped by
#: serialization work the engine swap cannot touch.
INTERPRETER_BOUND = ("KMeans", "KNN", "LLS", "AES", "S-W")

#: JVM tasks timed per app (per engine, per repeat).
JVM_TASKS = 24
#: C-executor tasks per batch.
C_TASKS = 8


def _digest(outputs) -> str:
    """Order-stable bit-exact hash of a list of outputs."""
    def shadow(value):
        if isinstance(value, (tuple, list)):
            return [shadow(v) for v in value]
        if isinstance(value, float):
            if math.isnan(value):
                return "nan"
            return f"f{value.hex()}"
        return f"{type(value).__name__}:{value!r}"
    text = json.dumps(shadow(list(outputs)), separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def _bench_jvm(name: str, repeats: int) -> dict:
    spec = get_app(name)
    compiled = spec.compile()
    tasks = spec.workload(min(spec.jvm_sample, JVM_TASKS), seed=17)
    row: dict = {"tasks": len(tasks)}
    outputs: dict = {}
    instructions: dict = {}
    for engine in ("stack", "tac"):
        # Determinism pass on a cold runner (also warms the lowering
        # cache); timing is then steady-state, matching production use
        # where one engine serves a whole batch/campaign.
        runner = _JVMTaskRunner(compiled, engine=engine)
        outputs[engine] = [runner.call(task) for task in tasks]
        instructions[engine] = runner.cost.instructions
        best = math.inf
        for _ in range(repeats):
            start = time.perf_counter()
            for task in tasks:
                runner.call(task)
            best = min(best, time.perf_counter() - start)
        row[f"{engine}_us_per_task"] = best / len(tasks) * 1e6
    row["speedup"] = (row["stack_us_per_task"]
                      / row["tac_us_per_task"])
    row["bit_identical"] = bits_equal(outputs["stack"], outputs["tac"])
    row["instructions_match"] = (instructions["stack"]
                                 == instructions["tac"])
    row["digest"] = _digest(outputs["tac"])
    return row


def _bench_c(name: str, repeats: int) -> dict:
    spec = get_app(name)
    compiled = spec.functional_compile()
    tasks = spec.functional_tasks_for(C_TASKS, seed=23)
    serialize = make_serializer(compiled.layout)
    row: dict = {"tasks": len(tasks)}
    buffers: dict = {}
    for engine, cls in (("tree", KernelExecutor),
                        ("flat", FlatKernelExecutor)):
        # One executor per engine (production reuses it per batch);
        # the first run doubles as determinism pass + closure warmup.
        executor = cls(compiled.kernel)
        bufs = serialize(tasks)
        executor.run(bufs, len(tasks))
        buffers[engine] = bufs
        best = math.inf
        for _ in range(repeats):
            timed = serialize(tasks)
            start = time.perf_counter()
            executor.run(timed, len(tasks))
            best = min(best, time.perf_counter() - start)
        row[f"{engine}_us_per_task"] = best / len(tasks) * 1e6
    row["speedup"] = row["tree_us_per_task"] / row["flat_us_per_task"]
    row["bit_identical"] = all(
        bits_equal(buffers["tree"][k], buffers["flat"][k])
        for k in buffers["tree"])
    row["digest"] = _digest(
        v for k in sorted(buffers["flat"]) for v in buffers["flat"][k])
    return row


def run_benchmark(repeats: int) -> dict:
    report: dict = {
        "benchmark": "engine shootout (tac/flat vs stack/tree)",
        "interpreter_bound": list(INTERPRETER_BOUND),
        "jvm_tasks": JVM_TASKS,
        "c_tasks": C_TASKS,
        "repeats": repeats,
        "jvm": {},
        "c": {},
    }
    for name in APP_NAMES:
        report["jvm"][name] = _bench_jvm(name, repeats)
        report["c"][name] = _bench_c(name, repeats)
    jvm = report["jvm"]
    report["summary"] = {
        "jvm_min_speedup": min(r["speedup"] for r in jvm.values()),
        "jvm_min_interpreter_bound_speedup": min(
            jvm[n]["speedup"] for n in INTERPRETER_BOUND),
        "jvm_geomean_speedup": math.exp(sum(
            math.log(r["speedup"]) for r in jvm.values()) / len(jvm)),
        "c_geomean_speedup": math.exp(sum(
            math.log(r["speedup"]) for r in report["c"].values())
            / len(report["c"])),
        "deterministic": all(
            r["bit_identical"] for r in jvm.values())
        and all(r["instructions_match"] for r in jvm.values())
        and all(r["bit_identical"] for r in report["c"].values()),
    }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per engine (best-of)")
    parser.add_argument("--json", metavar="PATH",
                        help="write the full report as JSON")
    parser.add_argument("--floor", type=float, default=None,
                        help="fail if min interpreter-bound tac/stack "
                             "speedup drops below this ratio")
    parser.add_argument("--c-floor", type=float, default=None,
                        help="fail if the flat/tree geomean speedup "
                             "drops below this ratio")
    args = parser.parse_args(argv)

    report = run_benchmark(args.repeats)
    summary = report["summary"]

    header = f"{'app':>8} {'stack us':>10} {'tac us':>10} {'jvm x':>7} " \
             f"{'tree us':>10} {'flat us':>10} {'c x':>7}"
    print(header)
    print("-" * len(header))
    for name in APP_NAMES:
        j, c = report["jvm"][name], report["c"][name]
        print(f"{name:>8} {j['stack_us_per_task']:>10.1f} "
              f"{j['tac_us_per_task']:>10.1f} {j['speedup']:>6.1f}x "
              f"{c['tree_us_per_task']:>10.1f} "
              f"{c['flat_us_per_task']:>10.1f} {c['speedup']:>6.1f}x")
    print(f"\njvm geomean {summary['jvm_geomean_speedup']:.2f}x "
          f"(interpreter-bound min "
          f"{summary['jvm_min_interpreter_bound_speedup']:.2f}x), "
          f"c geomean {summary['c_geomean_speedup']:.2f}x, "
          f"deterministic={summary['deterministic']}")

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json}")

    failed = False
    if not summary["deterministic"]:
        print("FAIL: engines are not bit-identical / cost-identical",
              file=sys.stderr)
        failed = True
    if args.floor is not None \
            and summary["jvm_min_interpreter_bound_speedup"] < args.floor:
        print(f"FAIL: interpreter-bound tac/stack speedup "
              f"{summary['jvm_min_interpreter_bound_speedup']:.2f}x "
              f"below the pinned floor {args.floor}x", file=sys.stderr)
        failed = True
    if args.c_floor is not None \
            and summary["c_geomean_speedup"] < args.c_floor:
        print(f"FAIL: flat/tree geomean speedup "
              f"{summary['c_geomean_speedup']:.2f}x below the pinned "
              f"floor {args.c_floor}x", file=sys.stderr)
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
