"""Shared helpers for the benchmark harness.

Everything expensive (kernel compilation, DSE runs, JVM baseline timing)
is cached per (app, seed) so the Table 2 / Fig. 3 / Fig. 4 benches can
share results instead of re-exploring.

Two environment knobs (also settable as ``--jobs`` / ``--cache-dir``
pytest options, see ``conftest.py``) control the evaluation backend
without touching the science:

* ``S2FA_JOBS`` — process-pool width for HLS estimation (default 1);
* ``S2FA_CACHE_DIR`` — persistent evaluation cache directory, so a
  second benchmark run skips re-estimation entirely.
"""

from __future__ import annotations

import atexit
import os
from functools import lru_cache

from repro.apps import ALL_APPS, get_app
from repro.blaze.runtime import _JVMTaskRunner
from repro.dse import (
    CacheStore,
    DSERun,
    OpenTunerRuntime,
    ParallelEvaluator,
    S2FAEngine,
    build_space,
)
from repro.fpga.board import offload_seconds_per_task
from repro.hls import estimate
from repro.hls.result import HLSResult
from repro.merlin import DesignConfig

#: Seeds used by the Fig. 3 aggregate (one run per seed per app).
FIG3_SEEDS = (1, 2, 3)

#: Seed used wherever a single representative DSE run is needed.
DEFAULT_SEED = 1

APP_NAMES = [spec.name for spec in ALL_APPS]

#: Every evaluator built this process (for pool shutdown + stats).
EVALUATORS: list[ParallelEvaluator] = []


def dse_jobs() -> int:
    return max(1, int(os.environ.get("S2FA_JOBS", "1") or "1"))


@lru_cache(maxsize=None)
def cache_store() -> CacheStore | None:
    directory = os.environ.get("S2FA_CACHE_DIR")
    return CacheStore(directory) if directory else None


def make_evaluator(name: str,
                   frequency_aware: bool = True) -> ParallelEvaluator:
    """Evaluation backend honouring ``S2FA_JOBS``/``S2FA_CACHE_DIR``."""
    evaluator = ParallelEvaluator(compiled(name), store=cache_store(),
                                  frequency_aware=frequency_aware,
                                  jobs=dse_jobs())
    EVALUATORS.append(evaluator)
    return evaluator


@atexit.register
def _close_evaluators() -> None:
    for evaluator in EVALUATORS:
        evaluator.close()


def aggregate_stats() -> dict:
    """Sum of the per-run backend stats (for the bench reports)."""
    total = {"jobs": dse_jobs(), "unique_points": 0, "estimates": 0,
             "memory_hits": 0, "store_hits": 0, "batches": 0,
             "mean_batch": 0.0, "max_batch": 0, "worker_failures": 0,
             "degraded": False, "hit_rate": 0.0}
    points = 0
    for evaluator in EVALUATORS:
        stats = evaluator.stats()
        for key in ("unique_points", "estimates", "memory_hits",
                    "store_hits", "batches", "worker_failures"):
            total[key] += stats[key]
        total["max_batch"] = max(total["max_batch"], stats["max_batch"])
        total["degraded"] = total["degraded"] or stats["degraded"]
        points += stats["batches"] * stats["mean_batch"]
    if total["batches"]:
        total["mean_batch"] = points / total["batches"]
    probes = (total["estimates"] + total["memory_hits"]
              + total["store_hits"])
    if probes:
        total["hit_rate"] = (total["memory_hits"]
                             + total["store_hits"]) / probes
    store = cache_store()
    if store is not None:
        total["store"] = store.stats()
    return total


@lru_cache(maxsize=None)
def compiled(name: str):
    return get_app(name).compile()


@lru_cache(maxsize=None)
def design_space(name: str):
    return build_space(compiled(name))


@lru_cache(maxsize=None)
def s2fa_run(name: str, seed: int = DEFAULT_SEED, **kwargs) -> DSERun:
    engine = S2FAEngine(make_evaluator(name), design_space(name),
                        seed=seed, **kwargs)
    return engine.run()


@lru_cache(maxsize=None)
def opentuner_run(name: str, seed: int = DEFAULT_SEED) -> DSERun:
    runtime = OpenTunerRuntime(make_evaluator(name),
                               design_space(name), seed=seed)
    return runtime.run()


@lru_cache(maxsize=None)
def best_design(name: str) -> tuple[DesignConfig, HLSResult]:
    """The best S2FA-chosen design across the Fig. 3 DSE runs.

    Table 2 reports "the best configurations from the DSE"; taking the
    best of the per-seed runs matches that (the paper runs one long DSE,
    we run several shorter seeded ones for the aggregate statistics).
    """
    best_run = min((s2fa_run(name, seed) for seed in FIG3_SEEDS),
                   key=lambda run: run.best_qor)
    config = DesignConfig.from_point(best_run.best_point)
    return config, estimate(compiled(name).kernel, config)


@lru_cache(maxsize=None)
def manual_design(name: str) -> tuple[DesignConfig, HLSResult]:
    spec = get_app(name)
    config = spec.manual_config(compiled(name))
    return config, estimate(compiled(name).kernel, config)


@lru_cache(maxsize=None)
def jvm_seconds_per_task(name: str) -> float:
    """Sampled single-thread JVM executor time per task."""
    spec = get_app(name)
    ck = compiled(name)
    runner = _JVMTaskRunner(ck)
    sample = max(1, min(spec.jvm_sample, 64))
    tasks = spec.workload(sample, seed=17)
    for task in tasks:
        runner.call(task)
    return runner.seconds / len(tasks)


def fpga_seconds_per_task(name: str, hls: HLSResult) -> float:
    ck = compiled(name)
    bytes_per_task = (ck.kernel.metadata["bytes_in_per_task"]
                      + ck.kernel.metadata["bytes_out_per_task"])
    return offload_seconds_per_task(hls, ck.batch_size, bytes_per_task)


def speedup_over_jvm(name: str, hls: HLSResult) -> float:
    if not hls.feasible:
        return float("nan")
    return jvm_seconds_per_task(name) / fpga_seconds_per_task(name, hls)
