"""Benchmark-harness options for the evaluation backend.

``--jobs N`` fans HLS estimation out over a process pool of N workers;
``--cache-dir DIR`` persists every estimate to DIR so a second benchmark
run against the same cache skips re-estimation.  Both are forwarded to
``common.make_evaluator`` through environment variables so the
``lru_cache``-memoized helpers observe them before any evaluator is
built.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# The benches import each other via plain ``from common import ...``.
sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_addoption(parser):
    group = parser.getgroup("s2fa")
    group.addoption(
        "--jobs", type=int, default=None, metavar="N",
        help="process-pool width for HLS estimation "
             "(results are identical at any value)")
    group.addoption(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent evaluation cache directory")


def pytest_configure(config):
    jobs = config.getoption("--jobs", default=None)
    cache_dir = config.getoption("--cache-dir", default=None)
    if jobs is not None:
        os.environ["S2FA_JOBS"] = str(jobs)
    if cache_dir is not None:
        os.environ["S2FA_CACHE_DIR"] = cache_dir
