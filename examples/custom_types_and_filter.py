#!/usr/bin/env python
"""Extensions demo: custom composite classes + the filter operator.

The paper's Section 3.3 limits kernels to primitives and the composite
classes S2FA ships, leaving "other classes" to a user-provided class
template, and its future work asks for "more object-oriented constructs"
and more RDD operators.  This example exercises both extensions:

* a record class ``Reading(sensor: Int, value: Float, weight: Float)``
  flattened automatically to per-field accelerator ports,
* a ``filter`` kernel offloaded through Blaze (the device computes
  keep-flags; the host keeps the surviving objects).

Run:  python examples/custom_types_and_filter.py
"""

from repro import generate_hls_c
from repro.blaze import BlazeRuntime
from repro.compiler import compile_kernel
from repro.merlin import DesignConfig, LoopConfig
from repro.spark import SparkContext

KERNEL = """
class Reading(sensor: Int, value: Float, weight: Float)

class Anomaly extends Accelerator[Reading, Boolean] {
  val id: String = "anomaly"
  val threshold: Float = 4.0f
  def call(in: Reading): Boolean = {
    val score = in.value * in.weight
    val bounded = math.min(math.abs(score), 100.0f)
    bounded > threshold && in.sensor >= 0
  }
}
"""


def main() -> None:
    print("=" * 72)
    print("Generated HLS C: the Reading record flattened to three ports")
    print("=" * 72)
    print(generate_hls_c(KERNEL, pattern="filter"))

    compiled = compile_kernel(KERNEL, pattern="filter", batch_size=1024)
    config = DesignConfig(
        loops={"L0": LoopConfig(pipeline="on", parallel=4)},
        bitwidths={leaf.name: 128 for leaf in compiled.layout.leaves})

    sc = SparkContext(default_parallelism=4)
    blaze = BlazeRuntime(sc)
    blaze.register(compiled, config)

    import random
    rng = random.Random(42)
    readings = [(rng.randrange(-2, 40), rng.uniform(-10, 10),
                 rng.uniform(0.1, 2.0)) for _ in range(5000)]

    anomalies = blaze.wrap(sc.parallelize(readings)).filter_acc(
        "anomaly").collect()

    expected = [r for r in readings
                if min(abs(r[1] * r[2]), 100.0) > 4.0 and r[0] >= 0]
    assert anomalies == expected, "offloaded filter disagrees with host"

    print("=" * 72)
    print(f"{len(readings)} readings -> {len(anomalies)} anomalies "
          f"({blaze.metrics.accel_tasks} tasks on the accelerator, "
          f"{blaze.metrics.accel_seconds * 1e3:.3f} ms modelled)")
    sample = ", ".join(
        f"(s{r[0]}, {r[1]:.2f}, w{r[2]:.2f})" for r in anomalies[:3])
    print(f"first anomalies: {sample}")


if __name__ == "__main__":
    main()
