#!/usr/bin/env python
"""S2FA DSE vs vanilla OpenTuner on one kernel (a single Fig. 3 panel).

Runs both explorers on the LR kernel with the same virtual 8-core budget
and draws their best-QoR-over-time trajectories, annotating the three
S2FA optimizations (seeds, partitioning, entropy stopping).

Run:  python examples/dse_comparison.py [app-name]
"""

import sys

from repro.apps import get_app
from repro.dse import Evaluator, OpenTunerRuntime, S2FAEngine, build_space
from repro.report import trace_chart


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "LR"
    spec = get_app(name)
    compiled = spec.compile()
    space = build_space(compiled)
    print(f"{name}: design space of {space.size():,} points, "
          f"{len(space.parameters)} factors")

    s2fa = S2FAEngine(Evaluator(compiled), space, seed=2).run()
    opentuner = OpenTunerRuntime(Evaluator(compiled), space, seed=2).run()

    print(trace_chart(
        {
            "S2FA": [(p.minutes, p.best_qor) for p in s2fa.trace.points],
            "OpenTuner": [(p.minutes, p.best_qor)
                          for p in opentuner.trace.points],
        },
        title=f"Fig.3-style DSE trajectory: {name} "
              f"(y: normalized cycles, log scale)",
    ))
    print()
    print(f"S2FA      : best {s2fa.best_qor:12.0f}, terminated at "
          f"{s2fa.termination_minutes:.0f} min "
          f"({s2fa.evaluations} HLS runs, first point "
          f"{s2fa.first_qor:.2e})")
    print(f"OpenTuner : best {opentuner.best_qor:12.0f}, terminated at "
          f"{opentuner.termination_minutes:.0f} min "
          f"({opentuner.evaluations} HLS runs, first point "
          f"{opentuner.first_qor:.2e})")
    print()
    print("S2FA partitions (decision-tree rules, FCFS on 8 workers):")
    for p in s2fa.partitions:
        flag = "entropy-stop" if p.stopped_early else "time-limit"
        print(f"  #{p.index}: {p.evaluations:3d} evals, best "
              f"{p.best_qor:12.0f}, {p.start_minutes:5.0f}->"
              f"{p.end_minutes:5.0f} min [{flag}]")
        print(f"      {p.description}")


if __name__ == "__main__":
    main()
