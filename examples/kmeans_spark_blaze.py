#!/usr/bin/env python
"""KMeans on Spark with Blaze FPGA offload (the paper's Code 1 pattern).

Builds the KMeans accelerator with the full S2FA flow, registers it with
the Blaze runtime, and runs a Spark job twice: on the accelerator and on
the JVM software fallback — checking the results agree and reporting the
modelled speedup.

Run:  python examples/kmeans_spark_blaze.py
"""

from repro.apps import get_app
from repro.blaze import BlazeRuntime
from repro.dse import Evaluator, S2FAEngine, build_space
from repro.merlin import DesignConfig
from repro.spark import SparkContext


def main() -> None:
    spec = get_app("KMeans")
    compiled = spec.compile()

    print("Exploring the design space (virtual clock)...")
    run = S2FAEngine(Evaluator(compiled), build_space(compiled),
                     seed=3).run()
    config = DesignConfig.from_point(run.best_point)
    print(f"  best design after {run.evaluations} HLS evaluations "
          f"({run.termination_minutes:.0f} virtual minutes): "
          f"{run.best_qor:.0f} normalized cycles")

    sc = SparkContext("kmeans-blaze", default_parallelism=4)
    points = spec.workload(8192, seed=1)
    rdd = sc.parallelize(points).cache()

    # Accelerated path: blaze.wrap(rdd).map(new KMeans()).
    accel = BlazeRuntime(sc)
    accel.register(compiled, config)
    assignments = accel.wrap(rdd).map_acc(compiled.accel_id).collect()

    # Software fallback path (no bitstream registered).
    soft = BlazeRuntime(sc)
    soft.register(spec.compile(force=True))
    expected = soft.wrap(rdd).map_acc(compiled.accel_id).collect()

    assert assignments == expected, "FPGA and JVM paths disagree!"
    print(f"  {len(points)} points clustered; FPGA and JVM agree")

    fpga_s = accel.metrics.accel_seconds
    jvm_s = soft.metrics.fallback_seconds
    print(f"  accelerator time : {fpga_s * 1e3:8.3f} ms")
    print(f"  JVM executor time: {jvm_s * 1e3:8.3f} ms")
    print(f"  kernel speedup   : {jvm_s / fpga_s:.1f}x")

    counts: dict[int, int] = {}
    for assignment in assignments:
        counts[assignment] = counts.get(assignment, 0) + 1
    print("  cluster histogram:", dict(sorted(counts.items())))


if __name__ == "__main__":
    main()
