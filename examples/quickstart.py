#!/usr/bin/env python
"""Quickstart: Scala kernel in, optimized FPGA accelerator design out.

Runs the complete S2FA flow of the paper's Fig. 1 on a small vector-scale
kernel: mini-Scala -> JVM bytecode -> HLS C -> design space exploration ->
chosen configuration + HLS report, all on the simulated toolchain —
driven through the `S2FASession` facade, with a span trace of the whole
pipeline summarized at the end.

Run:  python examples/quickstart.py
"""

from repro import ExploreConfig, S2FASession
from repro.compiler import LayoutConfig

KERNEL = """
class Saxpy extends Accelerator[(Float, Array[Float]), Array[Float]] {
  val id: String = "saxpy"
  val alpha: Float = 2.5f
  def call(in: (Float, Array[Float])): Array[Float] = {
    val bias = in._1
    val x = in._2
    val out = new Array[Float](32)
    for (i <- 0 until 32) {
      out(i) = alpha * x(i) + bias
    }
    out
  }
}
"""


def main() -> None:
    layout = LayoutConfig(lengths={"in._2": 32, "out": 32})
    session = S2FASession(explore=ExploreConfig(seed=7), trace=True)

    print("=" * 72)
    print("Step 1: bytecode-to-C compilation (no optimization yet)")
    print("=" * 72)
    print(session.hls_c(KERNEL, layout_config=layout, batch_size=2048))

    print("=" * 72)
    print("Step 2: learning-based design space exploration")
    print("=" * 72)
    build = session.explore(KERNEL, layout_config=layout,
                            batch_size=2048)
    run = build.dse
    print(f"design space size : {build.space.size():,} points")
    print(f"points evaluated  : {run.evaluations} "
          f"(virtual {run.termination_minutes:.0f} minutes on 8 workers)")
    print(f"partitions        : {len(run.partitions)}")
    print(f"best design       : {build.config.describe()}")

    print()
    print("=" * 72)
    print("Step 3: the chosen design (Merlin pragmas inserted)")
    print("=" * 72)
    print(build.hls_c_source())

    hls = build.hls
    print("=" * 72)
    print("HLS report")
    print("=" * 72)
    print(f"cycles / {build.compiled.batch_size}-task batch : {hls.cycles}")
    print(f"clock             : {hls.freq_mhz:.0f} MHz")
    print(f"utilization       : "
          + ", ".join(f"{k.upper()} {hls.utilization_percent(k)}%"
                      for k in ("bram", "dsp", "ff", "lut")))
    print(f"memory bound      : {hls.memory_bound}")

    print()
    print("=" * 72)
    print("Where the time went (span trace)")
    print("=" * 72)
    print(session.trace_summary(top=5, flame=False))


if __name__ == "__main__":
    main()
