#!/usr/bin/env python
"""The reduce operator: offloading an RDD fold to the accelerator.

Spark's ``rdd.map(sq).reduce(_ + _)`` becomes two accelerators: a map
kernel squaring each element and a reduce kernel folding the partial
stream on chip (Section 3.2's template machinery covers both operator
kinds).

Run:  python examples/reduce_sum_of_squares.py
"""

from repro.blaze import BlazeRuntime
from repro.compiler import compile_kernel
from repro.merlin import DesignConfig, LoopConfig
from repro.spark import SparkContext

SQUARE = """
class Square extends Accelerator[Double, Double] {
  val id: String = "square"
  def call(in: Double): Double = in * in
}
"""

ADD = """
class Add extends Accelerator[Double, Double] {
  val id: String = "add"
  def call(a: Double, b: Double): Double = a + b
}
"""


def main() -> None:
    sc = SparkContext(default_parallelism=4)
    blaze = BlazeRuntime(sc)

    square = compile_kernel(SQUARE, batch_size=4096)
    add = compile_kernel(ADD, pattern="reduce", batch_size=4096)
    for compiled in (square, add):
        blaze.register(compiled, DesignConfig(
            loops={"L0": LoopConfig(pipeline="on", parallel=4)},
            bitwidths={leaf.name: 512
                       for leaf in compiled.layout.leaves}))

    values = [v / 16.0 for v in range(4096)]
    rdd = sc.parallelize(values).cache()

    squared = blaze.wrap(rdd).map_acc("square")
    total = blaze.wrap(squared).reduce_acc("add")

    expected = sum(v * v for v in values)
    print(f"sum of squares (accelerated): {total:.6f}")
    print(f"sum of squares (host)       : {expected:.6f}")
    assert abs(total - expected) < 1e-6 * max(1.0, expected)
    print(f"offloaded tasks: {blaze.metrics.accel_tasks}, modelled time "
          f"{blaze.metrics.accel_seconds * 1e3:.3f} ms")

    from repro import generate_hls_c
    print()
    print("Generated reduce kernel:")
    print(generate_hls_c(ADD, pattern="reduce"))


if __name__ == "__main__":
    main()
