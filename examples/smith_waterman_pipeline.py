#!/usr/bin/env python
"""The paper's motivating example end to end (Codes 1-3, Smith-Waterman).

Shows every stage the paper walks through in Section 3:

* the user-written Scala kernel with its ``(String, String)`` tuple input
  (Code 2),
* its JVM bytecode (what S2FA actually consumes),
* the flattened C kernel with the inserted ``map`` template (Code 3),
* a Merlin transformation applied physically (loop tiling),
* the DSE-chosen design vs the expert manual design.

Run:  python examples/smith_waterman_pipeline.py
"""

from repro.apps import get_app
from repro.dse import Evaluator, S2FAEngine, build_space
from repro.hls import estimate
from repro.hlsc import kernel_to_c
from repro.jvm import disassemble_method
from repro.merlin import DesignConfig, apply_config, tile_loop


def main() -> None:
    spec = get_app("S-W")
    compiled = spec.compile()

    print("=" * 72)
    print("Scala kernel (Code 2)")
    print("=" * 72)
    print(spec.scala_source.strip())

    print()
    print("=" * 72)
    print("JVM bytecode of call() — first 24 instructions")
    print("=" * 72)
    jclass = compiled.registry.lookup("SW")
    listing = disassemble_method(jclass.method("call")).splitlines()
    print("\n".join(listing[:25]))
    print(f"    ... ({len(listing) - 25} more lines)")

    print()
    print("=" * 72)
    print("Generated HLS C (Code 3): flattened tuples + map template")
    print("=" * 72)
    print(kernel_to_c(compiled.kernel))

    print("=" * 72)
    print("A Merlin physical transform: tiling the task loop by 8")
    print("=" * 72)
    demo = compiled.kernel.clone()
    tile_loop(demo.top_function, "L0", 8)
    print(kernel_to_c(demo).split("void kernel")[1].join(["void kernel", ""]))

    print("=" * 72)
    print("DSE vs manual design")
    print("=" * 72)
    run = S2FAEngine(Evaluator(compiled), build_space(compiled),
                     seed=3).run()
    auto_config = DesignConfig.from_point(run.best_point)
    auto = estimate(compiled.kernel, auto_config)
    manual = estimate(compiled.kernel, spec.manual_config(compiled))
    print(f"S2FA design : {auto.cycles:>9} cycles/batch @ "
          f"{auto.freq_mhz:.0f} MHz  ({auto_config.describe()})")
    print(f"manual      : {manual.cycles:>9} cycles/batch @ "
          f"{manual.freq_mhz:.0f} MHz")
    ratio = (manual.normalized_cycles / auto.normalized_cycles
             if auto.feasible else float("nan"))
    print(f"S2FA achieves {100 * ratio:.0f}% of the expert design's "
          f"performance")

    print()
    print("Chosen design with pragmas:")
    annotated = apply_config(compiled.kernel, auto_config)
    source = kernel_to_c(annotated)
    call_part = source.split("void kernel")[0]
    tail = [line for line in call_part.splitlines() if line][-30:]
    print("\n".join(tail))


if __name__ == "__main__":
    main()
