"""S2FA reproduction: Spark-to-FPGA-Accelerator automation framework.

The package mirrors the paper's architecture (Fig. 1):

* :mod:`repro.scala` — mini-Scala frontend producing JVM bytecode.
* :mod:`repro.jvm` — JVM classfile/bytecode substrate and interpreter.
* :mod:`repro.compiler` — the bytecode-to-C compiler (APARAPI-derived stage).
* :mod:`repro.hlsc` — the HLS-C intermediate representation.
* :mod:`repro.merlin` — Merlin-style source-to-source transformation library.
* :mod:`repro.hls` — simulated Xilinx SDx HLS estimation backend.
* :mod:`repro.cost` — pluggable cost models (analytical estimator +
  learned surrogate) behind one ``CostModel`` protocol.
* :mod:`repro.dataset` — QoR dataset factory and surrogate trainer.
* :mod:`repro.dse` — learning-based parallel design space exploration.
* :mod:`repro.spark` / :mod:`repro.blaze` / :mod:`repro.fpga` — the runtime
  integration substrate (RDDs, accelerator service, device simulator).
* :mod:`repro.apps` — the eight evaluation kernels of Section 5.
* :mod:`repro.obs` — span tracing + metrics observability layer.

The public entry point is :class:`repro.S2FASession`: one object owning
the run configuration (:class:`ExploreConfig` / :class:`RuntimeConfig`),
the tracer, and a compile cache, with ``compile``/``explore``/``run``
verbs over built-in application names, specs, or raw Scala source.
:func:`build_accelerator` and :func:`generate_hls_c` are deprecated
one-shot shims kept for compatibility.
"""

__version__ = "1.1.0"

from .config import DatasetConfig, ExploreConfig, RuntimeConfig, StreamConfig
from .errors import S2FAError, UnknownDeviceError
from .hls.device import Device, DeviceRegistry, device_names, get_device
from .s2fa import (
    AcceleratorBuild,
    DeviceSweep,
    RunOutcome,
    S2FASession,
    build_accelerator,
    generate_hls_c,
)

__all__ = [
    "AcceleratorBuild",
    "DatasetConfig",
    "Device",
    "DeviceRegistry",
    "DeviceSweep",
    "ExploreConfig",
    "RunOutcome",
    "RuntimeConfig",
    "S2FAError",
    "S2FASession",
    "StreamConfig",
    "UnknownDeviceError",
    "build_accelerator",
    "generate_hls_c",
    "device_names",
    "get_device",
    "__version__",
]
