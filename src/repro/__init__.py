"""S2FA reproduction: Spark-to-FPGA-Accelerator automation framework.

The package mirrors the paper's architecture (Fig. 1):

* :mod:`repro.scala` — mini-Scala frontend producing JVM bytecode.
* :mod:`repro.jvm` — JVM classfile/bytecode substrate and interpreter.
* :mod:`repro.compiler` — the bytecode-to-C compiler (APARAPI-derived stage).
* :mod:`repro.hlsc` — the HLS-C intermediate representation.
* :mod:`repro.merlin` — Merlin-style source-to-source transformation library.
* :mod:`repro.hls` — simulated Xilinx SDx HLS estimation backend.
* :mod:`repro.dse` — learning-based parallel design space exploration.
* :mod:`repro.spark` / :mod:`repro.blaze` / :mod:`repro.fpga` — the runtime
  integration substrate (RDDs, accelerator service, device simulator).
* :mod:`repro.apps` — the eight evaluation kernels of Section 5.

The top-level convenience entry point is :func:`repro.s2fa.compile_kernel`
(exported here as :func:`compile_kernel`), which runs the complete
Scala-source-to-optimized-accelerator flow.
"""

__version__ = "1.0.0"

from .errors import S2FAError  # noqa: F401
from .s2fa import AcceleratorBuild, build_accelerator, generate_hls_c  # noqa: F401,E501
