"""The evaluation applications of the paper (Table 2 / Fig. 3 / Fig. 4)."""

from .base import AppSpec  # noqa: F401
from .registry import ALL_APPS, APPS_BY_NAME, get_app  # noqa: F401
