"""The evaluation applications of the paper (Table 2 / Fig. 3 / Fig. 4)."""

from .base import AppSpec  # noqa: F401
from .registry import (  # noqa: F401
    ALL_APPS,
    APPS_BY_NAME,
    STREAM_APPS,
    STREAM_APPS_BY_NAME,
    get_app,
    get_stream_app,
)
from .streaming import StreamAppSpec  # noqa: F401
