"""AES-128 ECB encryption (Table 2: string processing).

Real FIPS-197 AES: baked S-box and expanded round keys, 10 rounds of
SubBytes/ShiftRows/MixColumns/AddRoundKey per 16-byte block.  All integer
xor/shift/table work — a *simple computational pattern* in the paper's
sense, which is why very large coarse-grained parallel factors remain
routable for AES (the Section 4.3.2 argument against heuristic pruning),
yet the design stays bandwidth-bound end to end (Table 2).
"""

from __future__ import annotations

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import random_blocks
from .base import AppSpec

SBOX = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5,
    0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc,
    0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a,
    0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b,
    0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85,
    0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17,
    0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88,
    0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9,
    0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6,
    0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94,
    0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68,
    0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
]

#: Fixed AES-128 key (the FIPS-197 example key).
KEY = list(range(16))


def _xtime(b: int) -> int:
    return ((b << 1) ^ (0x1B if b & 0x80 else 0)) & 0xFF


def expand_key(key: list[int]) -> list[int]:
    """FIPS-197 key schedule: 16-byte key -> 176 round-key bytes."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    w = list(key)
    rcon = 1
    for i in range(16, 176, 4):
        t = w[i - 4:i]
        if i % 16 == 0:
            t = [SBOX[t[1]] ^ rcon, SBOX[t[2]], SBOX[t[3]], SBOX[t[0]]]
            rcon = _xtime(rcon)
        w += [w[i - 16 + j] ^ t[j] for j in range(4)]
    return w


ROUND_KEYS = expand_key(KEY)


def encrypt_block(block: list[int]) -> list[int]:
    """Reference AES-128 ECB single-block encryption (column-major
    state: ``s[4c + r]`` is row r of column c)."""
    s = [(block[i] ^ ROUND_KEYS[i]) & 0xFF for i in range(16)]
    for rnd in range(1, 10):
        t = [0] * 16
        for c in range(4):
            for r in range(4):
                t[c * 4 + r] = SBOX[s[((c + r) % 4) * 4 + r]]
        for c in range(4):
            a0, a1, a2, a3 = t[c * 4:c * 4 + 4]
            k = rnd * 16 + c * 4
            s[c * 4 + 0] = (_xtime(a0) ^ (_xtime(a1) ^ a1) ^ a2 ^ a3
                            ^ ROUND_KEYS[k + 0]) & 0xFF
            s[c * 4 + 1] = (a0 ^ _xtime(a1) ^ (_xtime(a2) ^ a2) ^ a3
                            ^ ROUND_KEYS[k + 1]) & 0xFF
            s[c * 4 + 2] = (a0 ^ a1 ^ _xtime(a2) ^ (_xtime(a3) ^ a3)
                            ^ ROUND_KEYS[k + 2]) & 0xFF
            s[c * 4 + 3] = ((_xtime(a0) ^ a0) ^ a1 ^ a2 ^ _xtime(a3)
                            ^ ROUND_KEYS[k + 3]) & 0xFF
    out = [0] * 16
    for c in range(4):
        for r in range(4):
            out[c * 4 + r] = (SBOX[s[((c + r) % 4) * 4 + r]]
                              ^ ROUND_KEYS[160 + c * 4 + r]) & 0xFF
    return out


def _scala_source() -> str:
    sbox_lits = ", ".join(str(v) for v in SBOX)
    rk_lits = ", ".join(str(v) for v in ROUND_KEYS)
    return f"""
class AES extends Accelerator[Array[Int], Array[Int]] {{
  val id: String = "AES"
  val sbox: Array[Int] = Array({sbox_lits})
  val rk: Array[Int] = Array({rk_lits})
  def xtime(b: Int): Int = ((b << 1) ^ (if ((b & 128) != 0) 27 else 0)) & 255
  def call(in: Array[Int]): Array[Int] = {{
    val s = new Array[Int](16)
    for (i <- 0 until 16) {{
      s(i) = (in(i) ^ rk(i)) & 255
    }}
    for (round <- 1 to 9) {{
      val t = new Array[Int](16)
      for (c <- 0 until 4) {{
        for (r <- 0 until 4) {{
          t(c * 4 + r) = sbox(s(((c + r) % 4) * 4 + r))
        }}
      }}
      for (c <- 0 until 4) {{
        val a0 = t(c * 4)
        val a1 = t(c * 4 + 1)
        val a2 = t(c * 4 + 2)
        val a3 = t(c * 4 + 3)
        s(c * 4)     = (xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3 ^ rk(round * 16 + c * 4)) & 255
        s(c * 4 + 1) = (a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3 ^ rk(round * 16 + c * 4 + 1)) & 255
        s(c * 4 + 2) = (a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3) ^ rk(round * 16 + c * 4 + 2)) & 255
        s(c * 4 + 3) = ((xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3) ^ rk(round * 16 + c * 4 + 3)) & 255
      }}
    }}
    val outArr = new Array[Int](16)
    for (c <- 0 until 4) {{
      for (r <- 0 until 4) {{
        outArr(c * 4 + r) = (sbox(s(((c + r) % 4) * 4 + r)) ^ rk(160 + c * 4 + r)) & 255
      }}
    }}
    outArr
  }}
}}
"""


def reference(block: list[int]) -> list[int]:
    return encrypt_block(block)


def workload(n: int, seed: int = 0) -> list[list[int]]:
    return random_blocks(n, 16, seed=seed)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    """Expert design: many block engines, streaming ports — bandwidth
    does the rest."""
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=64, parallel=32, pipeline="on"),
            "call_L1": LoopConfig(pipeline="flatten"),
            "call_L0": LoopConfig(parallel=16, pipeline="on"),
            "call_L2": LoopConfig(pipeline="flatten"),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
    )


SPEC = AppSpec(
    name="AES",
    kind="string proc.",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(lengths={"in": 16, "out": 16}),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=8192,
    fig4_tasks=1 << 20,
    jvm_sample=24,
    functional_tasks=8,
    table2={"bram": 36, "dsp": 0, "ff": 3, "lut": 6, "freq": 250},
)
