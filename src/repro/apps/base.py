"""Application specification shared by the eight evaluation kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..compiler.driver import CompiledKernel, compile_kernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig


@dataclass
class AppSpec:
    """Everything the benches and tests need about one application.

    * ``scala_source`` — the user-written Spark kernel (mini-Scala),
    * ``layout_config`` / ``batch_size`` — interface capacities,
    * ``workload`` — ``workload(n, seed)`` produces task objects,
    * ``reference`` — a pure-Python oracle per task (functional tests),
    * ``manual_config`` — the expert HLS design of Fig. 4 as a
      :class:`DesignConfig` (``stage_split`` marks manual-only pipeline
      restructuring, like LR's),
    * ``table2`` — the paper's Table 2 row (for side-by-side reports),
    * ``fig4_tasks`` / ``jvm_sample`` — workload size used for the
      speedup benches and how many tasks to actually interpret on the
      JVM before extrapolating.
    """

    name: str
    kind: str                       # Table 2 "Type" column
    scala_source: str
    layout_config: LayoutConfig
    workload: Callable[[int, int], list]
    reference: Callable[[object], object]
    manual_config: Callable[[CompiledKernel], DesignConfig]
    batch_size: int = 1024
    pattern: str = "map"
    fig4_tasks: int = 65536
    jvm_sample: int = 64
    functional_tasks: int = 24      # tasks for JVM-vs-FPGA equivalence
    table2: dict = field(default_factory=dict)
    #: paper-reported speedups (for EXPERIMENTS.md comparisons)
    paper_speedup_s2fa: Optional[float] = None
    paper_speedup_manual: Optional[float] = None
    _compiled: Optional[CompiledKernel] = None

    def compile(self, force: bool = False) -> CompiledKernel:
        """Compile (once) through the full S2FA frontend."""
        if self._compiled is None or force:
            self._compiled = compile_kernel(
                self.scala_source,
                layout_config=self.layout_config,
                pattern=self.pattern,
                batch_size=self.batch_size)
        return self._compiled
