"""Application specification shared by the eight evaluation kernels."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..compiler.driver import CompiledKernel, compile_kernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig


@dataclass
class AppSpec:
    """Everything the benches and tests need about one application.

    * ``scala_source`` — the user-written Spark kernel (mini-Scala),
    * ``layout_config`` / ``batch_size`` — interface capacities,
    * ``workload`` — ``workload(n, seed)`` produces task objects,
    * ``reference`` — a pure-Python oracle per task (functional tests),
    * ``manual_config`` — the expert HLS design of Fig. 4 as a
      :class:`DesignConfig` (``stage_split`` marks manual-only pipeline
      restructuring, like LR's),
    * ``table2`` — the paper's Table 2 row (for side-by-side reports),
    * ``fig4_tasks`` / ``jvm_sample`` — workload size used for the
      speedup benches and how many tasks to actually interpret on the
      JVM before extrapolating,
    * ``functional_layout`` / ``functional_workload`` /
      ``functional_task_cap`` / ``differential_tasks`` — optional
      functional-check variants (bounded capacities, shorter inputs)
      exercising the identical code path in test time; harnesses read
      these instead of special-casing individual apps.
    """

    name: str
    kind: str                       # Table 2 "Type" column
    scala_source: str
    layout_config: LayoutConfig
    workload: Callable[[int, int], list]
    reference: Callable[[object], object]
    manual_config: Callable[[CompiledKernel], DesignConfig]
    batch_size: int = 1024
    pattern: str = "map"
    fig4_tasks: int = 65536
    jvm_sample: int = 64
    functional_tasks: int = 24      # tasks for JVM-vs-FPGA equivalence
    differential_tasks: int = 8     # tasks per seed, differential harness
    #: bounded-capacity layout for functional/differential checks
    #: (``layout_config`` when None)
    functional_layout: Optional[LayoutConfig] = None
    #: ``workload(n, seed)`` variant sized for functional checks (the
    #: deploy workload when None)
    functional_workload: Optional[Callable[[int, int], list]] = None
    #: cap on functionally executed tasks per run (None: no cap)
    functional_task_cap: Optional[int] = None
    table2: dict = field(default_factory=dict)
    #: paper-reported speedups (for EXPERIMENTS.md comparisons)
    paper_speedup_s2fa: Optional[float] = None
    paper_speedup_manual: Optional[float] = None
    _compiled: Optional[CompiledKernel] = None
    _functional_compiled: Optional[CompiledKernel] = None

    def compile(self, force: bool = False) -> CompiledKernel:
        """Compile (once) through the full S2FA frontend."""
        if self._compiled is None or force:
            self._compiled = compile_kernel(
                self.scala_source,
                layout_config=self.layout_config,
                pattern=self.pattern,
                batch_size=self.batch_size)
        return self._compiled

    def functional_compile(self, force: bool = False) -> CompiledKernel:
        """Compile (once) with the functional layout, when one exists."""
        if self.functional_layout is None:
            return self.compile(force)
        if self._functional_compiled is None or force:
            self._functional_compiled = compile_kernel(
                self.scala_source,
                layout_config=self.functional_layout,
                pattern=self.pattern,
                batch_size=self.batch_size)
        return self._functional_compiled

    def functional_tasks_for(self, n: int, seed: int = 0) -> list:
        """``n`` functional-check tasks (capped, functional workload)."""
        if self.functional_task_cap is not None:
            n = min(n, self.functional_task_cap)
        workload = self.functional_workload or self.workload
        return workload(n, seed=seed)
