"""KMeans: nearest-centroid assignment (Table 2: classification).

The Spark driver broadcasts the current centroids each iteration; S2FA
bakes the broadcast into the accelerator as an on-chip constant table and
the map assigns each point to its nearest centroid.
"""

from __future__ import annotations

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import cluster_centers, clustered_points
from .base import AppSpec

DIMS = 16
CLUSTERS = 8

#: The broadcast centroids baked into the kernel (deterministic).
CENTERS = cluster_centers(DIMS, CLUSTERS, seed=7)


def _scala_source() -> str:
    flat = [c for center in CENTERS for c in center]
    literals = ", ".join(f"{value!r}f" for value in flat)
    return f"""
class KMeans extends Accelerator[Array[Float], Int] {{
  val id: String = "KMeans"
  val centers: Array[Float] = Array({literals})
  def call(in: Array[Float]): Int = {{
    var bestId = 0
    var bestDist = 3.0e38f
    for (k <- 0 until {CLUSTERS}) {{
      var dist = 0.0f
      for (j <- 0 until {DIMS}) {{
        val d = in(j) - centers(k * {DIMS} + j)
        dist = dist + d * d
      }}
      if (dist < bestDist) {{
        bestDist = dist
        bestId = k
      }}
    }}
    bestId
  }}
}}
"""


def reference(point: list[float]) -> int:
    """Pure-Python oracle with the same operation order as the kernel."""
    best_id = 0
    best_dist = 3.0e38
    for k in range(CLUSTERS):
        dist = 0.0
        for j in range(DIMS):
            d = point[j] - CENTERS[k][j]
            dist = dist + d * d
        if dist < best_dist:
            best_dist = dist
            best_id = k
    return best_id


def workload(n: int, seed: int = 0) -> list[list[float]]:
    return clustered_points(n, DIMS, CLUSTERS, seed=seed)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    """Expert design: flatten the distance nest, 8 compute units, double
    buffering on the task loop, widest ports."""
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=16, parallel=8, pipeline="on"),
            "call_L0": LoopConfig(pipeline="flatten"),
            "call_L0_0": LoopConfig(parallel=DIMS),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
    )


SPEC = AppSpec(
    name="KMeans",
    kind="classification",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(lengths={"in": DIMS}),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=4096,
    fig4_tasks=262144,
    jvm_sample=128,
    table2={"bram": 73, "dsp": 6, "ff": 10, "lut": 14, "freq": 230},
)
