"""KNN: nearest-neighbor classification (Table 2: classification).

The (small) training set is broadcast and baked on chip; each task scans
all training points and returns the label of the closest one.
"""

from __future__ import annotations

import random

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import clustered_points
from .base import AppSpec

DIMS = 8
TRAIN = 64
CLASSES = 4


def _training_set() -> tuple[list[list[float]], list[int]]:
    rng = random.Random(0xC1A55)
    points = clustered_points(TRAIN, DIMS, CLASSES, seed=0xC1A55)
    labels = [rng.randrange(CLASSES) for _ in range(TRAIN)]
    return points, labels


TRAIN_POINTS, TRAIN_LABELS = _training_set()


def _scala_source() -> str:
    flat = [c for p in TRAIN_POINTS for c in p]
    train_lits = ", ".join(f"{v!r}f" for v in flat)
    label_lits = ", ".join(str(v) for v in TRAIN_LABELS)
    return f"""
class KNN extends Accelerator[Array[Float], Int] {{
  val id: String = "KNN"
  val train: Array[Float] = Array({train_lits})
  val labels: Array[Int] = Array({label_lits})
  def call(in: Array[Float]): Int = {{
    var best = 3.0e38f
    var bestLabel = 0
    for (t <- 0 until {TRAIN}) {{
      var dist = 0.0f
      for (j <- 0 until {DIMS}) {{
        val d = in(j) - train(t * {DIMS} + j)
        dist = dist + d * d
      }}
      if (dist < best) {{
        best = dist
        bestLabel = labels(t)
      }}
    }}
    bestLabel
  }}
}}
"""


def reference(point: list[float]) -> int:
    best = 3.0e38
    best_label = 0
    for t in range(TRAIN):
        dist = 0.0
        for j in range(DIMS):
            d = point[j] - TRAIN_POINTS[t][j]
            dist = dist + d * d
        if dist < best:
            best = dist
            best_label = TRAIN_LABELS[t]
    return best_label


def workload(n: int, seed: int = 0) -> list[list[float]]:
    return clustered_points(n, DIMS, CLASSES, seed=seed + 1)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    """Expert design: pipeline the training scan with a wide unrolled
    distance computation."""
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=16, parallel=4, pipeline="on"),
            "call_L0": LoopConfig(pipeline="flatten"),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
    )


SPEC = AppSpec(
    name="KNN",
    kind="classification",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(lengths={"in": DIMS}),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=4096,
    fig4_tasks=131072,
    jvm_sample=64,
    table2={"bram": 75, "dsp": 6, "ff": 50, "lut": 50, "freq": 240},
)
