"""LLS: least linear squares gradient (Table 2: regression)."""

from __future__ import annotations

import random

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import labeled_points
from .base import AppSpec

DIMS = 16


def _weights() -> list[float]:
    rng = random.Random(0x115)
    return [rng.uniform(-1.0, 1.0) for _ in range(DIMS)]


WEIGHTS = _weights()


def _scala_source() -> str:
    literals = ", ".join(f"{v!r}f" for v in WEIGHTS)
    return f"""
class LLS extends Accelerator[(Float, Array[Float]), Array[Float]] {{
  val id: String = "LLS"
  val w: Array[Float] = Array({literals})
  def call(in: (Float, Array[Float])): Array[Float] = {{
    val y = in._1
    val x = in._2
    val out = new Array[Float]({DIMS})
    var dot = 0.0f
    for (j <- 0 until {DIMS}) {{
      dot = dot + w(j) * x(j)
    }}
    val err = dot - y
    for (j <- 0 until {DIMS}) {{
      out(j) = err * x(j)
    }}
    out
  }}
}}
"""


def reference(task: tuple[float, list[float]]) -> list[float]:
    y, x = task
    dot = 0.0
    for j in range(DIMS):
        dot = dot + WEIGHTS[j] * x[j]
    err = dot - y
    return [err * x[j] for j in range(DIMS)]


def workload(n: int, seed: int = 0) -> list[tuple[float, list[float]]]:
    return labeled_points(n, DIMS, seed=seed + 23)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=16, parallel=8, pipeline="flatten"),
            "call_L0": LoopConfig(parallel=DIMS),
            "call_L0_1": LoopConfig(parallel=DIMS),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
    )


SPEC = AppSpec(
    name="LLS",
    kind="regression",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(lengths={"in._2": DIMS, "out": DIMS}),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=4096,
    fig4_tasks=131072,
    jvm_sample=64,
    table2={"bram": 74, "dsp": 3, "ff": 45, "lut": 21, "freq": 230},
)
