"""LR: logistic regression gradient (Table 2: regression).

Each task computes one sample's gradient contribution for the broadcast
weight vector.  The sigmoid's ``exp`` is the reason the paper reports a
minimal initiation interval of 13 for the S2FA design — the manual design
splits the computation into pipeline stages (``stage_split``) to beat it
(Fig. 4 discussion).
"""

from __future__ import annotations

import math
import random

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import labeled_points
from .base import AppSpec

DIMS = 16


def _weights() -> list[float]:
    rng = random.Random(0x10617)
    return [rng.uniform(-1.0, 1.0) for _ in range(DIMS)]


WEIGHTS = _weights()


def _scala_source() -> str:
    literals = ", ".join(f"{v!r}f" for v in WEIGHTS)
    return f"""
class LR extends Accelerator[(Float, Array[Float]), Array[Float]] {{
  val id: String = "LR"
  val w: Array[Float] = Array({literals})
  def call(in: (Float, Array[Float])): Array[Float] = {{
    val label = in._1
    val x = in._2
    val out = new Array[Float]({DIMS})
    var dot = 0.0f
    for (j <- 0 until {DIMS}) {{
      dot = dot + w(j) * x(j)
    }}
    val y01 = (label + 1.0f) / 2.0f
    val coef = (1.0 / (1.0 + math.exp(-dot)) - y01).toFloat
    for (j <- 0 until {DIMS}) {{
      out(j) = coef * x(j)
    }}
    out
  }}
}}
"""


def reference(task: tuple[float, list[float]]) -> list[float]:
    label, x = task
    dot = 0.0
    for j in range(DIMS):
        dot = dot + WEIGHTS[j] * x[j]
    y01 = (label + 1.0) / 2.0
    coef = 1.0 / (1.0 + math.exp(-dot)) - y01
    return [coef * x[j] for j in range(DIMS)]


def workload(n: int, seed: int = 0) -> list[tuple[float, list[float]]]:
    return labeled_points(n, DIMS, seed=seed)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    """Expert design: the statement-splitting dataflow pipeline the paper
    credits the manual LR implementation with (``stage_split=True``)."""
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=16, parallel=4, pipeline="flatten"),
            "call_L0": LoopConfig(parallel=DIMS),
            "call_L0_1": LoopConfig(parallel=DIMS),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
        stage_split=True,
    )


SPEC = AppSpec(
    name="LR",
    kind="regression",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(lengths={"in._2": DIMS, "out": DIMS}),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=4096,
    fig4_tasks=131072,
    jvm_sample=64,
    table2={"bram": 74, "dsp": 3, "ff": 49, "lut": 74, "freq": 220},
)
