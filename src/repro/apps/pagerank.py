"""PR: PageRank contribution scatter (Table 2: graph processing).

The map receives a page's rank and its padded neighbor list and emits the
per-neighbor contribution.  Almost no arithmetic per byte moved — this is
the application the paper calls out as bandwidth-bound ("the computational
pattern of PR is too simple to hide the communication latency"), so even
the manual design gains little.
"""

from __future__ import annotations

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import page_rank_entries
from .base import AppSpec

MAX_DEGREE = 16


def _scala_source() -> str:
    return f"""
class PR extends Accelerator[(Float, Array[Int]), Array[Float]] {{
  val id: String = "PR"
  def call(in: (Float, Array[Int])): Array[Float] = {{
    val rank = in._1
    val links = in._2
    val out = new Array[Float]({MAX_DEGREE})
    var degree = 0
    for (j <- 0 until {MAX_DEGREE}) {{
      if (links(j) >= 0) {{
        degree = degree + 1
      }}
    }}
    val contrib = rank / degree.toFloat
    for (j <- 0 until {MAX_DEGREE}) {{
      out(j) = if (links(j) >= 0) contrib else 0.0f
    }}
    out
  }}
}}
"""


def reference(task: tuple[float, list[int]]) -> list[float]:
    rank, links = task
    degree = sum(1 for link in links if link >= 0)
    contrib = rank / float(degree)
    return [contrib if link >= 0 else 0.0 for link in links]


def workload(n: int, seed: int = 0) -> list[tuple[float, list[int]]]:
    return page_rank_entries(n, MAX_DEGREE, seed=seed)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    """Even the expert can only widen ports and double-buffer."""
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=32, parallel=4, pipeline="flatten"),
            "call_L0": LoopConfig(parallel=MAX_DEGREE),
            "call_L0_1": LoopConfig(parallel=MAX_DEGREE),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
    )


SPEC = AppSpec(
    name="PR",
    kind="graph proc.",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(
        lengths={"in._2": MAX_DEGREE, "out": MAX_DEGREE}),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=4096,
    fig4_tasks=262144,
    jvm_sample=128,
    table2={"bram": 25, "dsp": 2, "ff": 16, "lut": 18, "freq": 250},
)
