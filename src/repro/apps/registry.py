"""Registry of the eight evaluation applications (Section 5) plus the
streaming pipelines layered on top of them."""

from __future__ import annotations

from .aes import SPEC as AES
from .base import AppSpec
from .kmeans import SPEC as KMEANS
from .knn import SPEC as KNN
from .lls import SPEC as LLS
from .logistic import SPEC as LR
from .pagerank import SPEC as PR
from .smith_waterman import SPEC as SW
from .streaming import AES_WINDOW, LOG_FILTER, LR_STREAM, StreamAppSpec
from .svm import SPEC as SVM

#: Table 2 order.
ALL_APPS: list[AppSpec] = [PR, KMEANS, KNN, LR, SVM, LLS, AES, SW]

APPS_BY_NAME: dict[str, AppSpec] = {spec.name: spec for spec in ALL_APPS}

#: Applications cheap enough to execute functionally at scale.
FAST_FUNCTIONAL = [spec.name for spec in ALL_APPS if spec.name != "S-W"]


_APPS_BY_FOLDED: dict[str, AppSpec] = {
    spec.name.casefold(): spec for spec in ALL_APPS
}


def get_app(name: str) -> AppSpec:
    """Look up a built-in application spec by its Table 2 name.

    The lookup is case-insensitive (``kmeans`` finds ``KMeans``), so
    shell users don't have to reproduce the paper's capitalization.
    """
    try:
        return APPS_BY_NAME[name]
    except KeyError:
        pass
    try:
        return _APPS_BY_FOLDED[name.casefold()]
    except KeyError:
        known = ", ".join(sorted(APPS_BY_NAME))
        raise KeyError(f"unknown app {name!r}; known apps: {known}") \
            from None


#: The continuous pipelines of ``s2fa stream``.
STREAM_APPS: list[StreamAppSpec] = [LR_STREAM, AES_WINDOW, LOG_FILTER]

STREAM_APPS_BY_NAME: dict[str, StreamAppSpec] = {
    spec.name: spec for spec in STREAM_APPS
}


def get_stream_app(name: str) -> StreamAppSpec:
    """Look up a streaming pipeline spec (case-insensitive)."""
    folded = {spec.name.casefold(): spec for spec in STREAM_APPS}
    try:
        return folded[name.casefold()]
    except KeyError:
        known = ", ".join(sorted(STREAM_APPS_BY_NAME))
        raise KeyError(
            f"unknown streaming app {name!r}; known: {known}") from None
