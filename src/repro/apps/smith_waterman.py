"""S-W: Smith-Waterman local alignment (Table 2: string processing).

The motivating example of the paper (Codes 1-3).  Each task aligns one
read pair and returns the best local score plus its end position; the DP
recurrence carries a dependence along the row (through ``left``) and
across rows (through the row buffers), which is exactly the structure
that makes naive parallel factors useless and a flattened systolic inner
loop the winning design — and why the placed design only reaches 100 MHz
in Table 2.
"""

from __future__ import annotations

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import string_pairs
from .base import AppSpec

LENGTH = 128
MATCH = 2
MISMATCH = -1
GAP = 1


def _scala_source(length: int = LENGTH) -> str:
    return f"""
class SW extends Accelerator[(String, String), (Int, Int)] {{
  val id: String = "SW_kernel"
  def call(in: (String, String)): (Int, Int) = {{
    val a: String = in._1
    val b: String = in._2
    val hPrev = new Array[Int]({length + 1})
    val hCurr = new Array[Int]({length + 1})
    var best = 0
    var bestPos = 0
    for (i <- 0 until a.length) {{
      var left = 0
      for (j <- 0 until b.length) {{
        val m = if (a(i) == b(j)) {MATCH} else {MISMATCH}
        var v = hPrev(j) + m
        if (hPrev(j + 1) - {GAP} > v) {{
          v = hPrev(j + 1) - {GAP}
        }}
        if (left - {GAP} > v) {{
          v = left - {GAP}
        }}
        if (v < 0) {{
          v = 0
        }}
        hCurr(j + 1) = v
        left = v
        if (v > best) {{
          best = v
          bestPos = i * {length} + j
        }}
      }}
      for (j <- 0 to {length}) {{
        hPrev(j) = hCurr(j)
      }}
    }}
    (best, bestPos)
  }}
}}
"""


def reference(pair: tuple[str, str]) -> tuple[int, int]:
    """Pure-Python oracle with identical traversal order.

    The position multiplier is the kernel's compiled constant (LENGTH)
    even when shorter reads are aligned, matching the generated code.
    """
    a, b = pair
    size = max(len(a), len(b)) + 1
    h_prev = [0] * size
    h_curr = [0] * size
    best = 0
    best_pos = 0
    for i in range(len(a)):
        left = 0
        for j in range(len(b)):
            m = MATCH if a[i] == b[j] else MISMATCH
            v = h_prev[j] + m
            if h_prev[j + 1] - GAP > v:
                v = h_prev[j + 1] - GAP
            if left - GAP > v:
                v = left - GAP
            if v < 0:
                v = 0
            h_curr[j + 1] = v
            left = v
            if v > best:
                best = v
                best_pos = i * LENGTH + j
        h_prev[:size] = h_curr[:size]
    return best, best_pos


def workload(n: int, seed: int = 0) -> list[tuple[str, str]]:
    return string_pairs(n, LENGTH, seed=seed)


def functional_workload(n: int, seed: int = 0) -> list[tuple[str, str]]:
    """Shorter reads for functional cross-checks (same code path)."""
    return string_pairs(n, 24, seed=seed)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    """Expert design: systolic row — flatten the cell loop under a
    pipelined row loop, several alignment engines in parallel."""
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=8, parallel=4, pipeline="on"),
            "call_L0": LoopConfig(pipeline="flatten"),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
    )


#: Small-length layout variant used by functional tests: the default
#: layout is sized for the DSE workload; bounding sequence lengths keeps
#: the C interpreter within test time on the identical code path.
FUNCTIONAL_LAYOUT = LayoutConfig(default_string_length=24)

SPEC = AppSpec(
    name="S-W",
    kind="string proc.",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(default_string_length=LENGTH),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=2048,
    fig4_tasks=16384,
    jvm_sample=2,
    functional_tasks=3,
    differential_tasks=3,
    functional_layout=FUNCTIONAL_LAYOUT,
    functional_workload=functional_workload,
    functional_task_cap=16,
    table2={"bram": 33, "dsp": 30, "ff": 54, "lut": 75, "freq": 100},
)
