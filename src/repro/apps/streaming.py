"""Streaming application specs: continuous pipelines over the kernels.

Three pipelines cover the three operator families the streaming layer
offers, each riding an accelerated stage through the Blaze offload
path:

* ``lr-stream``   — stateless accelerated map: logistic-regression
  gradient inference over a continuous stream of labeled points;
* ``aes-window``  — windowed aggregation: AES-encrypted blocks folded
  into a sliding-window XOR checksum (an empty window emits the
  zero-seeded identity block, never an error);
* ``log-filter``  — sustained accelerated filtering plus running state:
  severity-filtered log records counted per code bucket with
  ``update_state_by_key``.

A :class:`StreamAppSpec` does not own a :class:`StreamContext` — the
``build`` hook receives the source stream and the registered
accelerator id and returns the terminal node, so the same spec runs
under any batch geometry, fault schedule, or checkpoint discipline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from .aes import SPEC as AES
from .base import AppSpec
from .logistic import SPEC as LR


@dataclass
class StreamAppSpec:
    """Everything ``session.stream`` needs about one streaming app."""

    name: str
    kind: str
    description: str
    #: ``generator(n, seed)`` produces ``n`` source records.
    generator: Callable[[int, int], list]
    #: ``build(source_stream, accel_id)`` returns the terminal DStream.
    build: Callable
    #: pure-Python oracle for the accelerated stage (per record).
    reference: Callable
    #: batch app whose kernel the accelerated stage reuses ...
    base: Optional[AppSpec] = None
    #: ... or a standalone kernel of its own.
    scala_source: Optional[str] = None
    pattern: str = "map"
    batch_size: int = 1024
    layout_config: Optional[LayoutConfig] = None
    #: deploy design (default: the base app's expert manual design).
    design: Optional[Callable] = None
    chunk_records: int = 64

    def compile(self, session):
        """Compile the accelerated stage's kernel via the session cache."""
        if self.base is not None:
            if self.base.functional_layout is not None:
                return session.compile(
                    self.base,
                    layout_config=self.base.functional_layout)
            return session.compile(self.base)
        return session.compile(
            self.scala_source, pattern=self.pattern,
            batch_size=self.batch_size,
            layout_config=self.layout_config)

    def design_for(self, compiled) -> DesignConfig:
        if self.design is not None:
            return self.design(compiled)
        return self.base.manual_config(compiled)


# ----------------------------------------------------------------------
# lr-stream: stateless accelerated inference
# ----------------------------------------------------------------------

LR_STREAM = StreamAppSpec(
    name="lr-stream",
    kind="inference",
    description="logistic-regression gradient inference over a "
                "continuous stream of labeled points",
    generator=LR.workload,
    build=lambda src, accel_id: src.map_acc(accel_id),
    reference=LR.reference,
    base=LR,
)


# ----------------------------------------------------------------------
# aes-window: windowed accelerated aggregation
# ----------------------------------------------------------------------

#: XOR-fold identity: the checksum of an empty window.
ZERO_BLOCK = [0] * 16

#: sliding window geometry (batches)
AES_WINDOW_SIZE = 4
AES_WINDOW_SLIDE = 2


def _xor_block(a: list, b: list) -> list:
    return [x ^ y for x, y in zip(a, b)]


AES_WINDOW = StreamAppSpec(
    name="aes-window",
    kind="string proc.",
    description="AES-encrypted blocks folded into a sliding-window "
                "XOR checksum (empty windows emit the identity block)",
    generator=AES.workload,
    build=lambda src, accel_id: src.map_acc(accel_id)
        .window(AES_WINDOW_SIZE, AES_WINDOW_SLIDE)
        .fold(ZERO_BLOCK, _xor_block),
    reference=AES.reference,
    base=AES,
)


# ----------------------------------------------------------------------
# log-filter: sustained accelerated filtering + running per-key state
# ----------------------------------------------------------------------

#: records at or above this severity pass the filter
LOG_SEVERITY_THRESHOLD = 3

#: per-key counting buckets for the surviving records
LOG_BUCKETS = 7

_LOG_KEEP_SCALA = f"""
class LogKeep extends Accelerator[Int, Boolean] {{
  val id: String = "logkeep"
  val threshold: Int = {LOG_SEVERITY_THRESHOLD}
  def call(in: Int): Boolean = in / 1000 >= threshold
}}
"""


def log_workload(n: int, seed: int = 0) -> list[int]:
    """``n`` log records: ``severity * 1000 + code`` (severity 0..7)."""
    rng = random.Random(seed)
    return [rng.randrange(8) * 1000 + rng.randrange(997)
            for _ in range(n)]


def log_keep(record: int) -> bool:
    return record // 1000 >= LOG_SEVERITY_THRESHOLD


def _log_design(compiled) -> DesignConfig:
    return DesignConfig(
        loops={"L0": LoopConfig(pipeline="on", parallel=4)},
        bitwidths={leaf.name: 64 for leaf in compiled.layout.leaves})


def _count(values: list, old) -> int:
    return (old or 0) + sum(values)


LOG_FILTER = StreamAppSpec(
    name="log-filter",
    kind="log proc.",
    description="sustained severity filtering of log records with "
                "running per-bucket counts",
    generator=log_workload,
    build=lambda src, accel_id: src.filter_acc(accel_id)
        .map(lambda record: (record % 1000 % LOG_BUCKETS, 1))
        .update_state_by_key(_count),
    reference=log_keep,
    scala_source=_LOG_KEEP_SCALA,
    pattern="filter",
    batch_size=1024,
    design=_log_design,
)
