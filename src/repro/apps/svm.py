"""SVM: hinge-loss gradient via SGD (Table 2: regression)."""

from __future__ import annotations

import random

from ..compiler.driver import CompiledKernel
from ..compiler.interface import LayoutConfig
from ..merlin.config import DesignConfig, LoopConfig
from ..workloads.generators import labeled_points
from .base import AppSpec

DIMS = 16


def _weights() -> list[float]:
    rng = random.Random(0x5436)
    return [rng.uniform(-1.0, 1.0) for _ in range(DIMS)]


WEIGHTS = _weights()


def _scala_source() -> str:
    literals = ", ".join(f"{v!r}f" for v in WEIGHTS)
    return f"""
class SVM extends Accelerator[(Float, Array[Float]), Array[Float]] {{
  val id: String = "SVM"
  val w: Array[Float] = Array({literals})
  def call(in: (Float, Array[Float])): Array[Float] = {{
    val label = in._1
    val x = in._2
    val out = new Array[Float]({DIMS})
    var dot = 0.0f
    for (j <- 0 until {DIMS}) {{
      dot = dot + w(j) * x(j)
    }}
    val margin = label * dot
    for (j <- 0 until {DIMS}) {{
      out(j) = if (margin < 1.0f) -label * x(j) else 0.0f
    }}
    out
  }}
}}
"""


def reference(task: tuple[float, list[float]]) -> list[float]:
    label, x = task
    dot = 0.0
    for j in range(DIMS):
        dot = dot + WEIGHTS[j] * x[j]
    margin = label * dot
    if margin < 1.0:
        return [-label * x[j] for j in range(DIMS)]
    return [0.0] * DIMS


def workload(n: int, seed: int = 0) -> list[tuple[float, list[float]]]:
    return labeled_points(n, DIMS, seed=seed + 11)


def manual_config(compiled: CompiledKernel) -> DesignConfig:
    return DesignConfig(
        loops={
            "L0": LoopConfig(tile=16, parallel=8, pipeline="flatten"),
            "call_L0": LoopConfig(parallel=DIMS),
            "call_L0_1": LoopConfig(parallel=DIMS),
        },
        bitwidths={leaf.name: 512 for leaf in compiled.layout.leaves},
    )


SPEC = AppSpec(
    name="SVM",
    kind="regression",
    scala_source=_scala_source(),
    layout_config=LayoutConfig(lengths={"in._2": DIMS, "out": DIMS}),
    workload=workload,
    reference=reference,
    manual_config=manual_config,
    batch_size=4096,
    fig4_tasks=131072,
    jvm_sample=64,
    table2={"bram": 74, "dsp": 4, "ff": 48, "lut": 72, "freq": 250},
)
