"""Blaze runtime substrate: accelerator-as-a-service for the mini-Spark."""

from .jvm_bridge import from_jvm, to_jvm  # noqa: F401
from .manager import AcceleratorManager, RegisteredAccelerator  # noqa: F401
from .runtime import (  # noqa: F401
    AccRDD,
    BlazeMetrics,
    BlazeRuntime,
    FilterAccRDD,
    OffloadPolicy,
    ShellRDD,
    VirtualClock,
)
from .serialization import (  # noqa: F401
    frame_outputs,
    make_deserializer,
    make_serializer,
    verify_outputs,
)
