"""Blaze runtime substrate: accelerator-as-a-service for the mini-Spark."""

from .jvm_bridge import from_jvm, to_jvm  # noqa: F401
from .manager import AcceleratorManager, RegisteredAccelerator  # noqa: F401
from .runtime import (  # noqa: F401
    AccRDD,
    BlazeMetrics,
    BlazeRuntime,
    FilterAccRDD,
    ShellRDD,
)
from .serialization import make_deserializer, make_serializer  # noqa: F401
