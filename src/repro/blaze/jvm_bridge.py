"""Conversions between host Python values and JVM-interpreter values.

Used by the Blaze software fallback (and by tests that cross-check the
JVM and FPGA paths): host task objects become JVM arrays/strings/tuple
instances and back.
"""

from __future__ import annotations

from ..errors import BlazeError
from ..jvm.interpreter import Interpreter, JArray, JObject
from ..scala import types as st


def to_jvm(value, tpe: st.Type, interp: Interpreter,
           records: dict | None = None):
    """Host Python value -> JVM value of mini-Scala type ``tpe``.

    ``records`` maps record-class names to ordered (field, type) pairs;
    record values are accepted as tuples/lists (positional) or dicts.
    """
    records = records or {}
    if isinstance(tpe, st.Primitive):
        if tpe.is_floating:
            return float(value)
        if tpe == st.BOOLEAN:
            return 1 if value else 0
        if tpe == st.CHAR and isinstance(value, str):
            return ord(value)
        return int(value)
    if isinstance(tpe, st.StringType):
        if not isinstance(value, str):
            raise BlazeError(f"expected str, got {value!r}")
        return value
    if isinstance(tpe, st.ArrayType):
        elem_desc = tpe.elem.descriptor()
        return JArray(elem_desc,
                      [to_jvm(v, tpe.elem, interp, records)
                       for v in value])
    if isinstance(tpe, st.TupleType):
        obj = JObject(tpe.class_name())
        for i, (elem_value, elem_type) in enumerate(
                zip(value, tpe.elems), start=1):
            obj.fields[f"_{i}"] = to_jvm(elem_value, elem_type, interp,
                                         records)
        return obj
    if isinstance(tpe, st.ClassType) and tpe.name in records:
        fields = records[tpe.name]
        if isinstance(value, dict):
            values = [value[name] for name, _ in fields]
        else:
            values = list(value)
        if len(values) != len(fields):
            raise BlazeError(
                f"record {tpe.name} expects {len(fields)} fields, "
                f"got {value!r}")
        obj = JObject(tpe.name)
        for field_value, (name, field_type) in zip(values, fields):
            obj.fields[name] = to_jvm(field_value, field_type, interp,
                                      records)
        return obj
    raise BlazeError(f"cannot convert {value!r} to JVM type {tpe}")


def from_jvm(value, tpe: st.Type, records: dict | None = None):
    """JVM value -> host Python value (records come back as tuples)."""
    records = records or {}
    if isinstance(tpe, st.Primitive):
        if tpe.is_floating:
            return float(value)
        return int(value)
    if isinstance(tpe, st.StringType):
        if isinstance(value, JArray):
            # A char buffer used as a String: decode, dropping padding.
            chars = list(value.values)
            while chars and chars[-1] == 0:
                chars.pop()
            return "".join(chr(int(c)) for c in chars)
        return value
    if isinstance(tpe, st.ArrayType):
        if not isinstance(value, JArray):
            raise BlazeError(f"expected JArray, got {value!r}")
        return [from_jvm(v, tpe.elem, records) for v in value.values]
    if isinstance(tpe, st.TupleType):
        if not isinstance(value, JObject):
            raise BlazeError(f"expected tuple object, got {value!r}")
        return tuple(
            from_jvm(value.fields[f"_{i}"], elem_type, records)
            for i, elem_type in enumerate(tpe.elems, start=1))
    if isinstance(tpe, st.ClassType) and tpe.name in records:
        if not isinstance(value, JObject):
            raise BlazeError(f"expected record object, got {value!r}")
        return tuple(
            from_jvm(value.fields[name], field_type, records)
            for name, field_type in records[tpe.name])
    raise BlazeError(f"cannot convert JVM value of type {tpe}")
