"""The Blaze accelerator manager: registration and lookup by id."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..compiler.driver import CompiledKernel
from ..errors import BlazeError
from ..fpga.board import FPGABoard
from ..hls.device import Device, VU9P
from ..hls.estimator import estimate
from ..hls.result import HLSResult
from ..merlin.config import DesignConfig


@dataclass
class RegisteredAccelerator:
    """One accelerator service entry."""

    accel_id: str
    compiled: CompiledKernel
    config: Optional[DesignConfig] = None
    hls: Optional[HLSResult] = None
    board: Optional[FPGABoard] = None

    @property
    def has_hardware(self) -> bool:
        return self.board is not None


class AcceleratorManager:
    """Node accelerator manager (one per Blaze deployment)."""

    def __init__(self, device: Device = VU9P):
        self.device = device
        self._accelerators: dict[str, RegisteredAccelerator] = {}

    def register(self, compiled: CompiledKernel,
                 config: Optional[DesignConfig] = None,
                 ) -> RegisteredAccelerator:
        """Register a compiled kernel, deploying it when a design config
        is supplied (software-fallback-only otherwise)."""
        accel_id = compiled.accel_id
        if accel_id in self._accelerators:
            raise BlazeError(f"accelerator {accel_id!r} already registered")
        entry = RegisteredAccelerator(accel_id=accel_id, compiled=compiled,
                                      config=config)
        if config is not None:
            hls = estimate(compiled.kernel, config, self.device)
            if not hls.feasible:
                raise BlazeError(
                    f"design for {accel_id!r} is infeasible: "
                    f"{hls.infeasible_reason}")
            bytes_per_task = (
                compiled.kernel.metadata.get("bytes_in_per_task", 0)
                + compiled.kernel.metadata.get("bytes_out_per_task", 0))
            entry.hls = hls
            entry.board = FPGABoard(
                kernel=compiled.kernel, hls=hls,
                batch_size=compiled.batch_size,
                bytes_per_task=bytes_per_task)
        self._accelerators[accel_id] = entry
        return entry

    def lookup(self, accel_id: str) -> Optional[RegisteredAccelerator]:
        return self._accelerators.get(accel_id)

    def require(self, accel_id: str) -> RegisteredAccelerator:
        entry = self.lookup(accel_id)
        if entry is None:
            raise BlazeError(f"no accelerator registered as {accel_id!r}")
        return entry

    def ids(self) -> list[str]:
        return sorted(self._accelerators)
