"""The Blaze accelerator manager: registration, lookup, and health.

Besides id-keyed registration, each entry carries the health state the
resilient offload path drives (see ``docs/architecture.md``)::

    active --(retries exhausted)--> quarantined --(probe ok)--> active
       |                                 |
       +--------(device loss)------------+-----> lost   (terminal)

Quarantined boards are skipped until their re-admission time; the first
batch at or after that time runs as a probe and either re-admits the
board or re-quarantines it with a longer backoff.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..compiler.driver import CompiledKernel
from ..errors import BlazeError
from ..fpga.board import FPGABoard
from ..fpga.faults import FaultInjector, FaultPlan
from ..hls.device import Device, VU9P
from ..hls.estimator import estimate
from ..hls.result import HLSResult
from ..merlin.config import DesignConfig
from .serialization import make_deserializer, make_serializer

#: Health states of a deployed board.
ACTIVE = "active"
QUARANTINED = "quarantined"
LOST = "lost"


@dataclass
class RegisteredAccelerator:
    """One accelerator service entry."""

    accel_id: str
    compiled: CompiledKernel
    config: Optional[DesignConfig] = None
    hls: Optional[HLSResult] = None
    board: Optional[FPGABoard] = None
    #: the device model this board runs on (``None`` until deployed;
    #: heterogeneous fleets register per-board overrides).
    device: Optional[Device] = None
    state: str = ACTIVE
    quarantined_until: float = 0.0
    quarantine_count: int = 0
    #: per-board multiplier on quarantine durations — a board type that
    #: recovers slowly (edge parts behind thin links) sits out longer.
    #: Timing/placement only; results are bit-identical regardless.
    quarantine_scale: float = 1.0
    _serializer: Optional[Callable] = field(
        default=None, repr=False, compare=False)
    _deserializer: Optional[Callable] = field(
        default=None, repr=False, compare=False)

    @property
    def has_hardware(self) -> bool:
        return self.board is not None

    @property
    def output_names(self) -> list[str]:
        return [leaf.name for leaf in self.compiled.layout.outputs]

    @property
    def serializer(self) -> Callable:
        if self._serializer is None:
            self._serializer = make_serializer(self.compiled.layout)
        return self._serializer

    @property
    def deserializer(self) -> Callable:
        if self._deserializer is None:
            self._deserializer = make_deserializer(self.compiled.layout)
        return self._deserializer

    # -- health transitions (driven by the runtime's offload path) -------

    def quarantine(self, until: float) -> None:
        self.state = QUARANTINED
        self.quarantined_until = until
        self.quarantine_count += 1

    def readmit(self) -> None:
        self.state = ACTIVE
        self.quarantined_until = 0.0

    def mark_lost(self) -> None:
        self.state = LOST
        self.quarantined_until = 0.0


class AcceleratorManager:
    """Node accelerator manager (one per Blaze deployment)."""

    def __init__(self, device: Device = VU9P,
                 fault_plan: Optional[FaultPlan] = None,
                 engine: Optional[str] = None):
        self.device = device
        self.fault_plan = fault_plan
        self.engine = engine
        self._accelerators: dict[str, RegisteredAccelerator] = {}

    #: Sentinel: "use the manager's fault plan" (``None`` is a real
    #: override meaning "this board is fault-free").
    _INHERIT_PLAN = object()

    def register(self, compiled: CompiledKernel,
                 config: Optional[DesignConfig] = None, *,
                 accel_id: Optional[str] = None,
                 fault_plan=_INHERIT_PLAN,
                 device: Optional[Device] = None,
                 quarantine_scale: float = 1.0) -> RegisteredAccelerator:
        """Register a compiled kernel, deploying it when a design config
        is supplied (software-fallback-only otherwise).

        ``accel_id`` overrides the kernel's own id — the serve layer
        registers one kernel several times as a board fleet
        (``id#0 .. id#n-1``), each replica with its own id and hence its
        own deterministic fault stream.  ``fault_plan`` overrides the
        manager-wide plan for this entry only (pass ``None`` for a
        fault-free board in an otherwise faulty fleet).  ``device``
        overrides the manager-wide device model for this board only —
        a heterogeneous fleet registers each board with its own model,
        which sets that board's per-batch timing (and feasibility gate)
        while results stay bit-identical across any mix.
        ``quarantine_scale`` stretches this board's quarantine windows.
        """
        accel_id = accel_id or compiled.accel_id
        if accel_id in self._accelerators:
            raise BlazeError(f"accelerator {accel_id!r} already registered")
        if quarantine_scale <= 0:
            raise BlazeError(
                f"quarantine_scale must be positive, "
                f"got {quarantine_scale}")
        board_device = device if device is not None else self.device
        entry = RegisteredAccelerator(accel_id=accel_id, compiled=compiled,
                                      config=config,
                                      quarantine_scale=quarantine_scale)
        if config is not None:
            hls = estimate(compiled.kernel, config, board_device)
            if not hls.feasible:
                raise BlazeError(
                    f"design for {accel_id!r} is infeasible on "
                    f"{board_device.name}: {hls.infeasible_reason}")
            entry.device = board_device
            bytes_per_task = (
                compiled.kernel.metadata.get("bytes_in_per_task", 0)
                + compiled.kernel.metadata.get("bytes_out_per_task", 0))
            plan = (self.fault_plan if fault_plan is self._INHERIT_PLAN
                    else fault_plan)
            faults = (FaultInjector(plan, accel_id)
                      if plan is not None else None)
            entry.hls = hls
            entry.board = FPGABoard(
                kernel=compiled.kernel, hls=hls,
                batch_size=compiled.batch_size,
                bytes_per_task=bytes_per_task,
                output_names=entry.output_names,
                faults=faults, engine=self.engine)
        self._accelerators[accel_id] = entry
        return entry

    def lookup(self, accel_id: str) -> Optional[RegisteredAccelerator]:
        return self._accelerators.get(accel_id)

    def require(self, accel_id: str) -> RegisteredAccelerator:
        entry = self.lookup(accel_id)
        if entry is None:
            raise BlazeError(f"no accelerator registered as {accel_id!r}")
        return entry

    def ids(self) -> list[str]:
        return sorted(self._accelerators)
