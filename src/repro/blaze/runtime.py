"""The Blaze runtime: RDD wrapping and accelerator offload (Code 1).

Usage mirrors the paper's snippet::

    blaze = BlazeRuntime(sc)
    blaze.register(compiled_kernel, best_config)   # deploy bitstream
    wrapped = blaze.wrap(pairs)                    # blaze.wrap(pairs)
    matching = wrapped.map_acc("SW_kernel")        # .map(new SW())
    results = matching.collect()

``map_acc`` offloads each partition as one (or more) accelerator batches;
when the id has no deployed hardware the task falls back to the JVM
implementation, exactly like Blaze's software path.  Timing for both
paths accumulates in :class:`BlazeMetrics`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..compiler.driver import CompiledKernel
from ..errors import BlazeError
from ..hls.device import Device, VU9P
from ..jvm.cost import CostModel
from ..jvm.interpreter import Interpreter
from ..merlin.config import DesignConfig
from ..scala import types as st
from ..spark.rdd import RDD, SparkContext
from .jvm_bridge import from_jvm, to_jvm
from .manager import AcceleratorManager, RegisteredAccelerator
from .serialization import make_deserializer, make_serializer


@dataclass
class BlazeMetrics:
    """Accumulated task accounting across the runtime."""

    accel_tasks: int = 0
    accel_seconds: float = 0.0
    fallback_tasks: int = 0
    fallback_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.accel_seconds + self.fallback_seconds


class BlazeRuntime:
    """Front door of the accelerator service."""

    def __init__(self, context: SparkContext,
                 manager: Optional[AcceleratorManager] = None,
                 device: Device = VU9P):
        self.context = context
        self.manager = manager or AcceleratorManager(device)
        self.metrics = BlazeMetrics()

    def register(self, compiled: CompiledKernel,
                 config: Optional[DesignConfig] = None
                 ) -> RegisteredAccelerator:
        return self.manager.register(compiled, config)

    def wrap(self, rdd: RDD) -> "ShellRDD":
        return ShellRDD(self, rdd)


class ShellRDD:
    """A wrapped RDD whose transformations may offload to accelerators."""

    def __init__(self, runtime: BlazeRuntime, rdd: RDD):
        self.runtime = runtime
        self.rdd = rdd

    def map_acc(self, accel_id: str) -> "AccRDD":
        """Offloadable map (Code 1, line 3)."""
        entry = self.runtime.manager.require(accel_id)
        if entry.compiled.pattern != "map":
            raise BlazeError(
                f"accelerator {accel_id!r} implements "
                f"{entry.compiled.pattern!r}, not map")
        return AccRDD(self.runtime, self.rdd, entry)

    def filter_acc(self, accel_id: str) -> "FilterAccRDD":
        """Offloadable filter: the accelerator computes keep-flags."""
        entry = self.runtime.manager.require(accel_id)
        if entry.compiled.pattern != "filter":
            raise BlazeError(
                f"accelerator {accel_id!r} implements "
                f"{entry.compiled.pattern!r}, not filter")
        return FilterAccRDD(self.runtime, self.rdd, entry)

    def reduce_acc(self, accel_id: str):
        """Offloadable reduce: one scalar result for the whole RDD."""
        entry = self.runtime.manager.require(accel_id)
        if entry.compiled.pattern != "reduce":
            raise BlazeError(
                f"accelerator {accel_id!r} implements "
                f"{entry.compiled.pattern!r}, not reduce")
        values = self.rdd.collect()
        if not values:
            raise BlazeError("reduce over an empty RDD")
        if entry.has_hardware:
            serialize = make_serializer(entry.compiled.layout)
            deserialize = make_deserializer(entry.compiled.layout)
            buffers = serialize(values)
            seconds = entry.board.run(buffers, len(values))
            self.runtime.metrics.accel_tasks += len(values)
            self.runtime.metrics.accel_seconds += seconds
            # Reduce kernels leave the folded value in out_1[0].
            return deserialize(buffers, 1)[0]
        runner = _JVMTaskRunner(entry.compiled)
        accumulator = values[0]
        for value in values[1:]:
            accumulator = runner.call2(accumulator, value)
        self.runtime.metrics.fallback_tasks += len(values)
        self.runtime.metrics.fallback_seconds += runner.seconds
        return accumulator


class AccRDD(RDD):
    """RDD whose map is computed by the accelerator service."""

    def __init__(self, runtime: BlazeRuntime, parent: RDD,
                 entry: RegisteredAccelerator):
        super().__init__(parent.context, parent.num_partitions,
                         f"{parent.name}.acc[{entry.accel_id}]")
        self.runtime = runtime
        self.parent = parent
        self.entry = entry
        self._serialize = make_serializer(entry.compiled.layout)
        self._deserialize = make_deserializer(entry.compiled.layout)

    def compute(self, partition: int) -> list:
        tasks = self.parent.partition_data(partition)
        if not tasks:
            return []
        if self.entry.has_hardware:
            buffers = self._serialize(tasks)
            seconds = self.entry.board.run(buffers, len(tasks))
            self.runtime.metrics.accel_tasks += len(tasks)
            self.runtime.metrics.accel_seconds += seconds
            return self._deserialize(buffers, len(tasks))
        # Software fallback: execute the original Scala on the JVM.
        runner = _JVMTaskRunner(self.entry.compiled)
        results = [runner.call(task) for task in tasks]
        self.runtime.metrics.fallback_tasks += len(tasks)
        self.runtime.metrics.fallback_seconds += runner.seconds
        return results


#: Spark executor overhead per element: iterator chaining, closure
#: dispatch, boxing/unboxing of primitives on the JVM.  The paper's
#: baseline is a full Spark 1.5 executor, not a tight JIT loop.
SPARK_TASK_OVERHEAD_NS = 180.0
SPARK_EXECUTOR_SLOWDOWN = 2.0


class FilterAccRDD(RDD):
    """RDD whose filter predicate is computed by the accelerator.

    The device returns one keep-flag per task; the host keeps the original
    elements whose flag is non-zero (the flags themselves never surface).
    """

    def __init__(self, runtime: BlazeRuntime, parent: RDD,
                 entry: RegisteredAccelerator):
        super().__init__(parent.context, parent.num_partitions,
                         f"{parent.name}.accfilter[{entry.accel_id}]")
        self.runtime = runtime
        self.parent = parent
        self.entry = entry
        self._serialize = make_serializer(entry.compiled.layout)
        self._deserialize = make_deserializer(entry.compiled.layout)

    def compute(self, partition: int) -> list:
        tasks = self.parent.partition_data(partition)
        if not tasks:
            return []
        if self.entry.has_hardware:
            buffers = self._serialize(tasks)
            seconds = self.entry.board.run(buffers, len(tasks))
            self.runtime.metrics.accel_tasks += len(tasks)
            self.runtime.metrics.accel_seconds += seconds
            flags = self._deserialize(buffers, len(tasks))
            return [task for task, keep in zip(tasks, flags) if keep]
        runner = _JVMTaskRunner(self.entry.compiled)
        kept = [task for task in tasks if runner.call(task)]
        self.runtime.metrics.fallback_tasks += len(tasks)
        self.runtime.metrics.fallback_seconds += runner.seconds
        return kept


class _JVMTaskRunner:
    """Executes kernel tasks on the bytecode interpreter (fallback)."""

    def __init__(self, compiled: CompiledKernel):
        self.compiled = compiled
        self.cost = CostModel()
        self.interp = Interpreter(compiled.registry, cost_model=self.cost)
        self.instance = compiled.instance
        self.tasks_run = 0
        cls = next(c for c in compiled.program.classes
                   if c.name == compiled.name)
        if compiled.pattern == "reduce":
            call = cls.method("call")
            self.input_type = call.params[0].declared
            self.output_type = call.ret
        else:
            from ..compiler.driver import _io_types
            self.input_type, self.output_type = _io_types(cls)
        self.records = compiled.layout.records

    @property
    def seconds(self) -> float:
        return (self.cost.total_seconds * SPARK_EXECUTOR_SLOWDOWN
                + self.tasks_run * SPARK_TASK_OVERHEAD_NS * 1e-9)

    def call(self, task):
        self.tasks_run += 1
        jvm_in = to_jvm(task, self.input_type, self.interp, self.records)
        jvm_out = self.interp.invoke(
            self.compiled.name, "call", [self.instance, jvm_in])
        return from_jvm(jvm_out, self.output_type, self.records)

    def call2(self, a, b):
        self.tasks_run += 1
        jvm_a = to_jvm(a, self.input_type, self.interp, self.records)
        jvm_b = to_jvm(b, self.input_type, self.interp, self.records)
        jvm_out = self.interp.invoke(
            self.compiled.name, "call", [self.instance, jvm_a, jvm_b])
        return from_jvm(jvm_out, self.output_type, self.records)
