"""The Blaze runtime: RDD wrapping and resilient accelerator offload.

Usage mirrors the paper's snippet (Code 1)::

    blaze = BlazeRuntime(sc)
    blaze.register(compiled_kernel, best_config)   # deploy bitstream
    wrapped = blaze.wrap(pairs)                    # blaze.wrap(pairs)
    matching = wrapped.map_acc("SW_kernel")        # .map(new SW())
    results = matching.collect()

``map_acc`` offloads each partition as one accelerator batch through
:meth:`BlazeRuntime.offload_batch`, which runs every batch under a
deadline with bounded retries and exponential backoff (on a *virtual*
clock, so tests are instant), verifies the CRC-framed result buffers,
quarantines boards that exhaust their retries (with periodic
re-admission probes), and falls back transparently to the JVM bytecode
interpreter when the hardware cannot deliver — exactly like Blaze's
software path.  The invariant: collected results are bit-identical to
the pure-JVM run under any fault schedule; only timing and
:class:`BlazeMetrics` change.
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import Optional

from ..compiler.driver import CompiledKernel
from ..engines import make_jvm_interpreter, resolve_engine
from ..errors import (
    BlazeError,
    CorruptResultError,
    DeviceFault,
    DeviceLostError,
    DeviceTimeout,
)
from ..fpga.faults import FaultPlan
from ..hls.device import Device, VU9P
from ..jvm.cost import CostModel
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER
from ..spark.rdd import RDD, SparkContext
from .jvm_bridge import from_jvm, to_jvm
from .manager import (
    LOST,
    QUARANTINED,
    AcceleratorManager,
    RegisteredAccelerator,
)
from .serialization import verify_outputs


class VirtualClock:
    """Monotonic virtual seconds: deadlines, backoff, and quarantine
    expiry all live on this clock, so fault handling is deterministic
    and tests never sleep.

    ``advance`` is a locked read-modify-write: two threads advancing the
    same clock never lose time (reads of ``now`` stay plain attribute
    reads — a float load is atomic in CPython).
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._lock = threading.Lock()

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise BlazeError(f"cannot advance the clock by {seconds}")
        with self._lock:
            self.now += seconds
            return self.now


@dataclass(frozen=True)
class OffloadPolicy:
    """Knobs of the resilient offload path (virtual seconds)."""

    #: Invocation attempts per batch before the board is quarantined.
    max_attempts: int = 3
    #: Host deadline per batch; a hung invocation is cut here.
    batch_deadline_seconds: float = 0.05
    #: Backoff before retry ``i`` is ``base * factor**(i-1)``.
    backoff_base_seconds: float = 1e-4
    backoff_factor: float = 2.0
    #: Quarantine ``q`` lasts ``base * factor**q`` before a probe.
    quarantine_base_seconds: float = 1e-2
    quarantine_factor: float = 2.0


@dataclass
class BlazeMetrics:
    """Accumulated task and failure accounting across the runtime."""

    accel_tasks: int = 0
    accel_seconds: float = 0.0
    fallback_tasks: int = 0
    fallback_seconds: float = 0.0
    #: failure accounting ------------------------------------------------
    retries: int = 0
    transient_faults: int = 0
    timeouts: int = 0
    corrupt_batches: int = 0
    devices_lost: int = 0
    quarantines: int = 0
    probes: int = 0
    readmissions: int = 0
    #: batches/tasks that fell back because the hardware faulted (vs
    #: ``no_hardware_batches``: nothing was ever deployed for the id).
    fault_fallback_batches: int = 0
    fault_fallback_tasks: int = 0
    no_hardware_batches: int = 0
    #: virtual seconds burnt in failed attempts, deadlines, and backoff.
    wasted_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.accel_seconds + self.fallback_seconds

    def as_dict(self) -> dict:
        """Stable dict view (used by reports and determinism checks)."""
        out = dataclasses.asdict(self)
        out["total_seconds"] = self.total_seconds
        return out


class BlazeRuntime:
    """Front door of the accelerator service."""

    def __init__(self, context: SparkContext,
                 manager: Optional[AcceleratorManager] = None,
                 device: Device = VU9P,
                 fault_plan: Optional[FaultPlan] = None,
                 policy: Optional[OffloadPolicy] = None,
                 tracer=NULL_TRACER,
                 engine: Optional[str] = None):
        self.engine = resolve_engine(engine)
        if manager is None:
            manager = AcceleratorManager(device, fault_plan=fault_plan,
                                         engine=self.engine)
        elif fault_plan is not None:
            manager.fault_plan = fault_plan
        self.context = context
        self.manager = manager
        self.policy = policy or OffloadPolicy()
        self.metrics = BlazeMetrics()
        self.clock = VirtualClock()
        self.tracer = tracer
        #: Serializes offload attempts and fallback accounting: board
        #: health transitions (quarantine/probe/readmit/lost), clock
        #: charges, and :class:`BlazeMetrics` updates are atomic per
        #: batch, so concurrent callers can share one runtime (the
        #: serve daemon does) without interleaving ``quarantined_until``
        #: updates inconsistently.
        self._lock = threading.RLock()

    def register(self, compiled: CompiledKernel,
                 config: Optional[DesignConfig] = None
                 ) -> RegisteredAccelerator:
        with self.tracer.span("blaze.register",
                              accel=compiled.accel_id):
            return self.manager.register(compiled, config)

    def wrap(self, rdd: RDD) -> "ShellRDD":
        return ShellRDD(self, rdd)

    # -- resilient offload ------------------------------------------------

    def offload_batch(self, entry: RegisteredAccelerator, tasks: list,
                      n_results: Optional[int] = None, *,
                      policy: Optional[OffloadPolicy] = None,
                      deadline_at: Optional[float] = None
                      ) -> Optional[list]:
        """Run one batch on ``entry``'s board; ``None`` means "fall back".

        Implements the full resilience discipline: quarantine gating and
        probes, bounded retries with exponential backoff, deadline-cut
        hangs, CRC verification of the framed result buffers, and
        permanent-loss handling.  All time is charged to the runtime's
        virtual clock.

        ``policy`` overrides the runtime policy for this batch only, and
        ``deadline_at`` is an absolute virtual-time budget: each attempt
        deadline is capped to the remaining budget and the retry loop
        gives up (falling back, without quarantining a healthy board)
        once the budget is spent.  The serve layer uses both to
        propagate per-request deadlines into the retry/backoff
        discipline.

        The whole batch runs under the runtime lock, so concurrent
        callers see atomic health transitions and consistent metrics.

        Each call records one ``blaze.offload`` span carrying the batch
        failure accounting (retries, faults, timeouts, corrupt frames)
        and its outcome, so a trace shows exactly where hardware time
        and fallbacks went.
        """
        with self._lock, \
                self.tracer.span("blaze.offload", accel=entry.accel_id,
                                 tasks=len(tasks)) as span:
            before = self.clock.now
            results = self._offload_attempts(entry, tasks, n_results,
                                             span, policy or self.policy,
                                             deadline_at)
            span.set(vclock_seconds=self.clock.now - before)
            if results is not None:
                span.set(outcome="accelerated")
            self.tracer.metrics.incr("blaze.offload_batches")
            return results

    def _offload_attempts(self, entry: RegisteredAccelerator,
                          tasks: list, n_results: Optional[int],
                          span, policy: OffloadPolicy,
                          deadline_at: Optional[float]) -> Optional[list]:
        metrics = self.metrics
        if entry.board is None:
            metrics.no_hardware_batches += 1
            span.set(outcome="no_hardware")
            return None
        if entry.state == LOST:
            self._note_fault_fallback(len(tasks))
            span.set(outcome="board_lost")
            return None
        probing = False
        if entry.state == QUARANTINED:
            if self.clock.now < entry.quarantined_until:
                self._note_fault_fallback(len(tasks))
                span.set(outcome="quarantined")
                return None
            probing = True
            metrics.probes += 1
            span.set(probe=True)
        n_out = len(tasks) if n_results is None else n_results
        for attempt in range(policy.max_attempts):
            span.set(attempts=attempt + 1)
            if attempt:
                metrics.retries += 1
                span.add("retries")
                self.tracer.metrics.incr("blaze.retries")
                backoff = (policy.backoff_base_seconds
                           * policy.backoff_factor ** (attempt - 1))
                self.clock.advance(backoff)
                metrics.wasted_seconds += backoff
            attempt_deadline = policy.batch_deadline_seconds
            if deadline_at is not None:
                remaining = deadline_at - self.clock.now
                if remaining <= 0:
                    # Budget exhausted: fall back without quarantining —
                    # the board may be healthy; the *request* ran out of
                    # time (queueing, earlier retries, backoff).
                    self._note_fault_fallback(len(tasks))
                    span.set(outcome="deadline_budget_exhausted")
                    return None
                attempt_deadline = min(attempt_deadline, remaining)
            buffers = entry.serializer(tasks)
            try:
                seconds = entry.board.run(
                    buffers, len(tasks),
                    deadline_s=attempt_deadline)
                verify_outputs(buffers, entry.output_names)
            except DeviceLostError as exc:
                self._charge_waste(exc.seconds)
                metrics.devices_lost += 1
                entry.mark_lost()
                self._note_fault_fallback(len(tasks))
                span.set(outcome="board_lost").add("devices_lost")
                return None
            except DeviceTimeout as exc:
                self._charge_waste(exc.seconds)
                metrics.timeouts += 1
                span.add("timeouts")
            except DeviceFault as exc:
                self._charge_waste(exc.seconds)
                metrics.transient_faults += 1
                span.add("transient_faults")
            except CorruptResultError:
                # The batch ran to completion before failing the CRC
                # check, so its nominal time was fully spent.
                self._charge_waste(seconds)
                metrics.corrupt_batches += 1
                span.add("corrupt_batches")
            else:
                self.clock.advance(seconds)
                metrics.accel_tasks += len(tasks)
                metrics.accel_seconds += seconds
                if probing:
                    entry.readmit()
                    metrics.readmissions += 1
                    span.set(readmitted=True)
                return entry.deserializer(buffers, n_out)
        duration = (policy.quarantine_base_seconds
                    * policy.quarantine_factor ** entry.quarantine_count
                    * entry.quarantine_scale)
        entry.quarantine(self.clock.now + duration)
        metrics.quarantines += 1
        self.tracer.metrics.incr("blaze.quarantines")
        self._note_fault_fallback(len(tasks))
        span.set(outcome="quarantined_after_retries")
        return None

    def record_fallback(self, n_tasks: int, seconds: float) -> None:
        """Account one JVM-fallback batch (time also drives the clock)."""
        with self._lock:
            self.metrics.fallback_tasks += n_tasks
            self.metrics.fallback_seconds += seconds
            self.clock.advance(seconds)

    def _charge_waste(self, seconds: float) -> None:
        self.clock.advance(seconds)
        self.metrics.wasted_seconds += seconds

    def _note_fault_fallback(self, n_tasks: int) -> None:
        self.metrics.fault_fallback_batches += 1
        self.metrics.fault_fallback_tasks += n_tasks


#: Sentinel distinguishing "no fold seed" from an explicit ``None`` seed.
_NO_SEED = object()


class ShellRDD:
    """A wrapped RDD whose transformations may offload to accelerators."""

    def __init__(self, runtime: BlazeRuntime, rdd: RDD):
        self.runtime = runtime
        self.rdd = rdd

    def map_acc(self, accel_id: str) -> "AccRDD":
        """Offloadable map (Code 1, line 3)."""
        entry = self.runtime.manager.require(accel_id)
        if entry.compiled.pattern != "map":
            raise BlazeError(
                f"accelerator {accel_id!r} implements "
                f"{entry.compiled.pattern!r}, not map")
        return AccRDD(self.runtime, self.rdd, entry)

    def filter_acc(self, accel_id: str) -> "FilterAccRDD":
        """Offloadable filter: the accelerator computes keep-flags."""
        entry = self.runtime.manager.require(accel_id)
        if entry.compiled.pattern != "filter":
            raise BlazeError(
                f"accelerator {accel_id!r} implements "
                f"{entry.compiled.pattern!r}, not filter")
        return FilterAccRDD(self.runtime, self.rdd, entry)

    def reduce_acc(self, accel_id: str, zero=_NO_SEED):
        """Offloadable reduce: one scalar result for the whole RDD.

        Follows Spark's contract: ``reduce`` on an empty RDD is an
        error, while a ``zero`` seed makes the fold total (``fold``):
        an empty RDD returns ``zero``, and a non-empty one folds
        ``zero`` in first.  ``map_acc``/``filter_acc`` return ``[]``
        for empty input for the same reason: empty in, empty out.
        """
        entry = self.runtime.manager.require(accel_id)
        if entry.compiled.pattern != "reduce":
            raise BlazeError(
                f"accelerator {accel_id!r} implements "
                f"{entry.compiled.pattern!r}, not reduce")
        values = self.rdd.collect()
        if zero is not _NO_SEED:
            values = [zero] + values
        if not values:
            raise BlazeError(
                "reduce_acc over an empty RDD: pass zero= to seed the "
                "fold (map_acc/filter_acc return [] for empty input)")
        if len(values) == 1:
            # Spark returns the sole element without calling the
            # combiner; both offload paths must agree.
            return values[0]
        results = self.runtime.offload_batch(entry, values, n_results=1)
        if results is not None:
            # Reduce kernels leave the folded value in out_1[0].
            return results[0]
        runner = _JVMTaskRunner(entry.compiled, engine=self.runtime.engine)
        with self.runtime.tracer.span(
                "blaze.jvm_fallback", accel=entry.accel_id,
                tasks=len(values)) as span:
            accumulator = values[0]
            for value in values[1:]:
                accumulator = runner.call2(accumulator, value)
            span.set(vclock_seconds=runner.seconds)
        self.runtime.record_fallback(len(values), runner.seconds)
        return accumulator


class AccRDD(RDD):
    """RDD whose map is computed by the accelerator service."""

    def __init__(self, runtime: BlazeRuntime, parent: RDD,
                 entry: RegisteredAccelerator):
        super().__init__(parent.context, parent.num_partitions,
                         f"{parent.name}.acc[{entry.accel_id}]")
        self.runtime = runtime
        self.parent = parent
        self.entry = entry
        self._runner: Optional[_JVMTaskRunner] = None

    @property
    def _jvm_runner(self) -> "_JVMTaskRunner":
        """The fallback runner, built once and shared by all partitions
        (class and I/O types resolve once, not per ``compute``)."""
        if self._runner is None:
            self._runner = _JVMTaskRunner(self.entry.compiled,
                                          engine=self.runtime.engine)
        return self._runner

    def compute(self, partition: int) -> list:
        tasks = self.parent.partition_data(partition)
        if not tasks:
            return []
        results = self.runtime.offload_batch(self.entry, tasks)
        if results is not None:
            return results
        # Software fallback: execute the original Scala on the JVM.
        runner = self._jvm_runner
        before = runner.seconds
        with self.runtime.tracer.span(
                "blaze.jvm_fallback", accel=self.entry.accel_id,
                tasks=len(tasks)) as span:
            results = [runner.call(task) for task in tasks]
            span.set(vclock_seconds=runner.seconds - before)
        self.runtime.record_fallback(len(tasks), runner.seconds - before)
        return results


#: Spark executor overhead per element: iterator chaining, closure
#: dispatch, boxing/unboxing of primitives on the JVM.  The paper's
#: baseline is a full Spark 1.5 executor, not a tight JIT loop.
SPARK_TASK_OVERHEAD_NS = 180.0
SPARK_EXECUTOR_SLOWDOWN = 2.0


class FilterAccRDD(RDD):
    """RDD whose filter predicate is computed by the accelerator.

    The device returns one keep-flag per task; the host keeps the original
    elements whose flag is non-zero (the flags themselves never surface).
    """

    def __init__(self, runtime: BlazeRuntime, parent: RDD,
                 entry: RegisteredAccelerator):
        super().__init__(parent.context, parent.num_partitions,
                         f"{parent.name}.accfilter[{entry.accel_id}]")
        self.runtime = runtime
        self.parent = parent
        self.entry = entry
        self._runner: Optional[_JVMTaskRunner] = None

    @property
    def _jvm_runner(self) -> "_JVMTaskRunner":
        if self._runner is None:
            self._runner = _JVMTaskRunner(self.entry.compiled,
                                          engine=self.runtime.engine)
        return self._runner

    def compute(self, partition: int) -> list:
        tasks = self.parent.partition_data(partition)
        if not tasks:
            return []
        flags = self.runtime.offload_batch(self.entry, tasks)
        if flags is not None:
            return [task for task, keep in zip(tasks, flags) if keep]
        runner = self._jvm_runner
        before = runner.seconds
        with self.runtime.tracer.span(
                "blaze.jvm_fallback", accel=self.entry.accel_id,
                tasks=len(tasks)) as span:
            kept = [task for task in tasks if runner.call(task)]
            span.set(vclock_seconds=runner.seconds - before)
        self.runtime.record_fallback(len(tasks), runner.seconds - before)
        return kept


class _JVMTaskRunner:
    """Executes kernel tasks on the bytecode interpreter (fallback)."""

    def __init__(self, compiled: CompiledKernel,
                 engine: Optional[str] = None):
        self.compiled = compiled
        self.cost = CostModel()
        self.interp = make_jvm_interpreter(
            compiled.registry, cost_model=self.cost, engine=engine)
        self.instance = compiled.instance
        self.tasks_run = 0
        cls = next(c for c in compiled.program.classes
                   if c.name == compiled.name)
        if compiled.pattern == "reduce":
            call = cls.method("call")
            self.input_type = call.params[0].declared
            self.output_type = call.ret
        else:
            from ..compiler.driver import _io_types
            self.input_type, self.output_type = _io_types(cls)
        self.records = compiled.layout.records

    @property
    def seconds(self) -> float:
        return (self.cost.total_seconds * SPARK_EXECUTOR_SLOWDOWN
                + self.tasks_run * SPARK_TASK_OVERHEAD_NS * 1e-9)

    def call(self, task):
        self.tasks_run += 1
        jvm_in = to_jvm(task, self.input_type, self.interp, self.records)
        jvm_out = self.interp.invoke(
            self.compiled.name, "call", [self.instance, jvm_in])
        return from_jvm(jvm_out, self.output_type, self.records)

    def call2(self, a, b):
        self.tasks_run += 1
        jvm_a = to_jvm(a, self.input_type, self.interp, self.records)
        jvm_b = to_jvm(b, self.input_type, self.interp, self.records)
        jvm_out = self.interp.invoke(
            self.compiled.name, "call", [self.instance, jvm_a, jvm_b])
        return from_jvm(jvm_out, self.output_type, self.records)
