"""Generated (de)serialization between host objects and FPGA buffers.

The paper's "data processing method generator" emits Scala methods (via
reflection + templates) that reorganize object fields into the flat
accelerator interface.  Here the same role is played by closures generated
from the :class:`~repro.compiler.interface.InterfaceLayout`: one packer
and one unpacker per kernel, derived mechanically from the layout, with
no per-application code.
"""

from __future__ import annotations

from typing import Callable

from ..compiler.interface import InterfaceLayout, Leaf
from ..errors import BlazeError
from ..fpga.faults import (  # noqa: F401  (re-exported framing API)
    FRAME_KEY,
    frame_outputs,
    verify_outputs,
)
from ..scala import types as st


def _leaf_values(value, tpe: st.Type, out: list, records: dict) -> None:
    """Decompose one task object into leaf values, layout order."""
    if isinstance(tpe, st.TupleType):
        if not isinstance(value, tuple) or len(value) != len(tpe.elems):
            raise BlazeError(
                f"expected a {len(tpe.elems)}-tuple, got {value!r}")
        for elem_value, elem_type in zip(value, tpe.elems):
            _leaf_values(elem_value, elem_type, out, records)
        return
    if isinstance(tpe, st.ClassType) and tpe.name in records:
        fields = records[tpe.name]
        if isinstance(value, dict):
            values = [value[field_name] for field_name, _ in fields]
        elif isinstance(value, (tuple, list)) \
                and len(value) == len(fields):
            values = list(value)
        else:
            raise BlazeError(
                f"expected a {len(fields)}-field {tpe.name} record "
                f"(tuple or dict), got {value!r}")
        for field_value, (_, field_type) in zip(values, fields):
            _leaf_values(field_value, field_type, out, records)
        return
    out.append(value)


def _pack_leaf(leaf: Leaf, value, buffer: list) -> None:
    if leaf.is_scalar:
        buffer.append(_as_element(leaf, value))
        return
    if isinstance(value, str):
        codes = [ord(c) for c in value[:leaf.elem_count]]
    else:
        codes = list(value)
        if len(codes) > leaf.elem_count:
            raise BlazeError(
                f"task value for {leaf.path} has {len(codes)} elements "
                f"but the interface buffer holds {leaf.elem_count}")
    codes = [_as_element(leaf, v) for v in codes]
    codes.extend([_zero(leaf)] * (leaf.elem_count - len(codes)))
    buffer.extend(codes)


def _as_element(leaf: Leaf, value):
    if leaf.ctype.is_float:
        return float(value)
    if isinstance(value, str):
        if len(value) != 1:
            raise BlazeError(
                f"expected a single char for {leaf.path}, got {value!r}")
        return ord(value)
    return int(value)


def _zero(leaf: Leaf):
    return 0.0 if leaf.ctype.is_float else 0


def make_serializer(layout: InterfaceLayout) -> Callable[[list], dict]:
    """Build the host-to-FPGA packer for a kernel's input layout."""

    def serialize(tasks: list) -> dict[str, list]:
        buffers: dict[str, list] = {leaf.name: [] for leaf in layout.leaves}
        for task in tasks:
            values: list = []
            _leaf_values(task, layout.input_type, values, layout.records)
            if len(values) != len(layout.inputs):
                raise BlazeError(
                    f"task decomposed into {len(values)} leaves; layout "
                    f"expects {len(layout.inputs)}")
            for leaf, value in zip(layout.inputs, values):
                _pack_leaf(leaf, value, buffers[leaf.name])
        for leaf in layout.outputs:
            buffers[leaf.name] = [_zero(leaf)] * (
                leaf.elem_count * len(tasks))
        return buffers

    return serialize


def _unpack_leaf(leaf: Leaf, buffer: list, task: int):
    if leaf.is_scalar:
        return buffer[task]
    start = task * leaf.elem_count
    return list(buffer[start:start + leaf.elem_count])


def make_deserializer(layout: InterfaceLayout) -> Callable[[dict, int], list]:
    """Build the FPGA-to-host unpacker for a kernel's output layout."""

    def rebuild(tpe: st.Type, leaf_iter) -> object:
        if isinstance(tpe, st.TupleType):
            return tuple(rebuild(elem, leaf_iter) for elem in tpe.elems)
        if isinstance(tpe, st.ClassType) and tpe.name in layout.records:
            return tuple(rebuild(field_type, leaf_iter)
                         for _, field_type in layout.records[tpe.name])
        leaf, values = next(leaf_iter)
        if isinstance(tpe, st.StringType):
            chars = [v for v in values]
            while chars and chars[-1] == 0:
                chars.pop()
            return "".join(chr(int(c)) for c in chars)
        if isinstance(tpe, st.ArrayType):
            return list(values)
        return values  # scalar

    def deserialize(buffers: dict[str, list], n_tasks: int) -> list:
        for leaf in layout.outputs:
            buffer = buffers.get(leaf.name)
            if buffer is None:
                raise BlazeError(
                    f"missing output buffer {leaf.name!r}")
            need = n_tasks * leaf.elem_count
            if len(buffer) < need:
                raise BlazeError(
                    f"output buffer {leaf.name!r} truncated: "
                    f"{len(buffer)} elements, need {need} "
                    f"for {n_tasks} tasks")
        results = []
        for task in range(n_tasks):
            extracted = [
                (leaf, _unpack_leaf(leaf, buffers[leaf.name], task))
                for leaf in layout.outputs
            ]
            results.append(
                rebuild(layout.output_type, iter(extracted)))
        return results

    return deserialize
