"""Command-line interface: ``python -m repro.cli`` (or the ``s2fa`` script).

Subcommands
-----------

``compile KERNEL.scala``
    Run the bytecode-to-C compiler and print the generated HLS C.

``explore KERNEL.scala``
    Run the full flow (compile + design space exploration) and print the
    DSE summary, the chosen configuration, and the annotated C.

``apps``
    List the built-in evaluation applications.

``report APP``
    Compile a built-in application, estimate its expert manual design, and
    print the HLS report.

``run APP``
    Deploy a built-in application on the Spark + Blaze runtime, offload a
    workload, cross-check the collected results against the pure-JVM
    oracle, and print the runtime metrics.  ``--fault-plan``/
    ``--fault-seed`` inject a deterministic device-fault schedule (see
    ``repro.fpga.faults``); the results must stay bit-identical, only the
    metrics change.

Layout capacities for variable-length leaves are given as repeated
``--length path=N`` options, e.g. ``--length in._2=16 --length out=16``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .compiler.interface import LayoutConfig
from .errors import S2FAError


def _parse_lengths(pairs: list[str]) -> LayoutConfig:
    lengths: dict[str, int] = {}
    string_length = 128
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--length expects path=N, got {pair!r}")
        path, _, value = pair.partition("=")
        if path == "string":
            string_length = int(value)
        else:
            lengths[path] = int(value)
    return LayoutConfig(lengths=lengths,
                        default_string_length=string_length)


def _read_source(path: str) -> str:
    source = Path(path)
    if not source.exists():
        raise SystemExit(f"no such kernel file: {path}")
    return source.read_text()


def cmd_compile(args: argparse.Namespace) -> int:
    """``s2fa compile``: Scala kernel file -> generated HLS C."""
    from .s2fa import generate_hls_c

    source = _read_source(args.kernel)
    print(generate_hls_c(
        source,
        layout_config=_parse_lengths(args.length),
        pattern=args.pattern,
        batch_size=args.batch_size))
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """``s2fa explore``: compile + DSE, print the chosen design."""
    from .s2fa import build_accelerator

    source = _read_source(args.kernel)
    build = build_accelerator(
        source,
        layout_config=_parse_lengths(args.length),
        pattern=args.pattern,
        batch_size=args.batch_size,
        seed=args.seed,
        time_limit_minutes=args.time_limit,
        jobs=args.jobs,
        cache_dir=args.cache_dir)
    run = build.dse
    print(f"accelerator id    : {build.accel_id}")
    print(f"design space      : {build.space.size():,} points")
    print(f"HLS evaluations   : {run.evaluations} "
          f"({run.termination_minutes:.0f} virtual minutes, "
          f"{len(run.partitions)} partitions)")
    print(f"best design       : {build.config.describe()}")
    hls = build.hls
    print(f"cycles/batch      : {hls.cycles} @ {hls.freq_mhz:.0f} MHz")
    print("utilization       : "
          + ", ".join(f"{k.upper()} {hls.utilization_percent(k)}%"
                      for k in ("bram", "dsp", "ff", "lut")))
    if run.evaluator_stats:
        from .report import evaluation_stats_table

        print()
        print(evaluation_stats_table(run.evaluator_stats))
    if args.emit_c:
        print()
        print(build.hls_c_source())
    if args.json:
        Path(args.json).write_text(run.to_json())
        print(f"DSE run written to {args.json}")
    return 0


def cmd_apps(args: argparse.Namespace) -> int:
    """``s2fa apps``: list the built-in evaluation applications."""
    from .apps import ALL_APPS

    for spec in ALL_APPS:
        print(f"{spec.name:8s} {spec.kind:15s} batch={spec.batch_size:<6d} "
              f"pattern={spec.pattern}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``s2fa report``: HLS report of a built-in app's manual design."""
    from .apps import get_app
    from .hls import estimate

    try:
        spec = get_app(args.app)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    compiled = spec.compile()
    result = estimate(compiled.kernel, spec.manual_config(compiled))
    print(f"{spec.name} ({spec.kind}), expert manual design:")
    print(f"  feasible : {result.feasible} {result.infeasible_reason}")
    print(f"  cycles   : {result.cycles} per {compiled.batch_size}-task "
          f"batch")
    print(f"  clock    : {result.freq_mhz:.0f} MHz")
    print(f"  BRAM/DSP/FF/LUT : "
          + "/".join(f"{result.utilization_percent(k)}%"
                     for k in ("bram", "dsp", "ff", "lut")))
    print(f"  memory bound    : {result.memory_bound}")
    for loop in result.loops:
        ii = f"II={loop.ii}" if loop.ii is not None else "no pipeline"
        print(f"    {loop.label:12s} trip={loop.trip_count} "
              f"x{loop.parallel} {ii:8s} lat={loop.latency} ({loop.note})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``s2fa run``: deploy an app on Blaze, offload, verify, report."""
    from .apps import get_app
    from .blaze import BlazeRuntime
    from .compiler import compile_kernel
    from .fpga.faults import FaultPlan
    from .report import blaze_metrics_table
    from .spark import SparkContext

    try:
        spec = get_app(args.app)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if spec.name == "S-W":
        # The full-length kernel is too slow to execute functionally;
        # the short-read variant exercises the identical code path.
        from .apps.smith_waterman import (
            FUNCTIONAL_LAYOUT,
            functional_workload,
        )
        compiled = compile_kernel(spec.scala_source,
                                  layout_config=FUNCTIONAL_LAYOUT,
                                  batch_size=spec.batch_size)
        tasks = functional_workload(min(args.tasks, 16),
                                    seed=args.data_seed)
    else:
        compiled = spec.compile()
        tasks = spec.workload(args.tasks, seed=args.data_seed)

    plan = None
    if args.fault_plan:
        plan = FaultPlan.parse(args.fault_plan, seed=args.fault_seed)
    sc = SparkContext(default_parallelism=args.partitions)
    runtime = BlazeRuntime(sc, fault_plan=plan)
    runtime.register(compiled, spec.manual_config(compiled))
    got = runtime.wrap(sc.parallelize(tasks)).map_acc(
        compiled.accel_id).collect()
    expected = [spec.reference(task) for task in tasks]
    ok = got == expected

    print(f"{spec.name}: {len(tasks)} tasks on "
          f"{min(args.partitions, len(tasks))} partitions")
    if plan is not None:
        print(f"fault plan        : {plan.describe()}")
    print(f"results match JVM : {'yes (bit-identical)' if ok else 'NO'}")
    print()
    print(blaze_metrics_table(runtime.metrics))
    return 0 if ok else 1


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="s2fa",
        description="S2FA: Spark-to-FPGA-Accelerator automation "
                    "(DAC'18 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile",
                               help="Scala kernel -> HLS C")
    compile_p.add_argument("kernel")
    compile_p.add_argument("--length", action="append", metavar="PATH=N")
    compile_p.add_argument("--pattern", default="map",
                           choices=("map", "reduce", "filter"))
    compile_p.add_argument("--batch-size", type=int, default=1024)
    compile_p.set_defaults(func=cmd_compile)

    explore_p = sub.add_parser("explore",
                               help="compile + design space exploration")
    explore_p.add_argument("kernel")
    explore_p.add_argument("--length", action="append", metavar="PATH=N")
    explore_p.add_argument("--pattern", default="map",
                           choices=("map", "reduce", "filter"))
    explore_p.add_argument("--batch-size", type=int, default=1024)
    explore_p.add_argument("--seed", type=int, default=0)
    explore_p.add_argument("--time-limit", type=float, default=240.0,
                           help="virtual minutes (default 240)")
    explore_p.add_argument("--jobs", type=int, default=1,
                           help="process-pool width for HLS estimation "
                                "(results are identical at any value; "
                                "default 1)")
    explore_p.add_argument("--cache-dir", metavar="DIR",
                           help="persistent evaluation cache directory "
                                "(repeated runs skip re-estimation)")
    explore_p.add_argument("--emit-c", action="store_true",
                           help="print the annotated HLS C")
    explore_p.add_argument("--json", metavar="FILE",
                           help="write the DSE run (trace, partitions, "
                                "best design) as JSON")
    explore_p.set_defaults(func=cmd_explore)

    apps_p = sub.add_parser("apps", help="list built-in applications")
    apps_p.set_defaults(func=cmd_apps)

    report_p = sub.add_parser("report",
                              help="HLS report of a built-in app")
    report_p.add_argument("app")
    report_p.set_defaults(func=cmd_report)

    run_p = sub.add_parser(
        "run", help="deploy a built-in app on the Blaze runtime")
    run_p.add_argument("app")
    run_p.add_argument("--tasks", type=int, default=64,
                       help="workload size (default 64)")
    run_p.add_argument("--data-seed", type=int, default=21,
                       help="workload generator seed (default 21)")
    run_p.add_argument("--partitions", type=int, default=4,
                       help="Spark partitions (default 4)")
    run_p.add_argument("--fault-plan", metavar="SPEC",
                       help="device fault schedule, e.g. "
                            "'transient=0.2,hang=0.05,corrupt=0.1,"
                            "lose_after=40'")
    run_p.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault schedule (default 0)")
    run_p.set_defaults(func=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except S2FAError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
