"""Command-line interface: ``python -m repro.cli`` (or the ``s2fa`` script).

The CLI is a pure argv -> config translation: each subcommand builds an
:class:`~repro.config.ExploreConfig` / :class:`~repro.config.RuntimeConfig`
pair, hands them to an :class:`~repro.s2fa.S2FASession`, and prints the
result.  Every pipeline subcommand accepts ``--trace FILE`` to record a
span trace of the whole run (Chrome ``trace_event`` JSON by default,
JSONL span log when the file ends in ``.jsonl``).

Subcommands
-----------

``compile KERNEL.scala``
    Run the bytecode-to-C compiler and print the generated HLS C.

``explore KERNEL.scala``
    Run the full flow (compile + design space exploration) and print the
    DSE summary, the chosen configuration, and the annotated C.

``dse APP``
    The end-to-end pipeline for a built-in application: explore the
    design space, deploy the explored design on the Blaze runtime, and
    verify the offloaded results against the pure-JVM oracle.

``apps``
    List the built-in evaluation applications.

``report APP``
    Compile a built-in application, estimate its expert manual design, and
    print the HLS report.

``run APP``
    Deploy a built-in application on the Spark + Blaze runtime, offload a
    workload, cross-check the collected results against the pure-JVM
    oracle, and print the runtime metrics.  ``--fault-plan``/
    ``--fault-seed`` inject a deterministic device-fault schedule (see
    ``repro.fpga.faults``); the results must stay bit-identical, only the
    metrics change.

``stream APP``
    Run a registered streaming pipeline (``lr-stream``, ``aes-window``,
    ``log-filter``) as micro-batches on the virtual clock: accelerated
    stages offload through the resilient Blaze path, the sink is
    idempotent per ``(batch_id, partition)``, and with
    ``--checkpoint-dir`` the run is crash-safe and exactly-once —
    SIGINT/SIGTERM flush a boundary checkpoint and exit
    ``EXIT_INTERRUPTED``, and ``--resume`` continues to a sink
    byte-identical to an uninterrupted run, under any fault schedule.

``dataset build|train|eval``
    The learned-cost-model pipeline: ``build`` sweeps kernels x sampled
    Merlin configs through the analytical estimator into a versioned
    JSONL dataset (deterministic per seed, resumable); ``train`` fits a
    pure-python surrogate (ridge or gradient-boosted stumps) and writes
    a model artifact with a rank-fidelity report; ``eval`` re-scores an
    artifact against a dataset.  ``explore``/``dse`` accept
    ``--surrogate MODEL.json`` to prune proposal batches with the
    learned model (the reported optimum stays analytically verified).

``trace summarize FILE``
    Per-stage breakdown, top-N slowest spans, and flamegraph of a trace
    written by ``--trace`` (either format).

``serve``
    Multi-tenant accelerator daemon over a unix socket: bounded
    admission queues with explicit ``OVERLOADED`` shedding, per-tenant
    weighted-round-robin scheduling, per-request deadlines, per-kernel
    circuit breaking, a content-addressed design cache, and graceful
    drain on SIGTERM (in-flight work finishes, queued requests get a
    clean retryable rejection, state is flushed, exit code
    ``EXIT_INTERRUPTED``).  ``--simulate`` instead runs the
    deterministic virtual-time load harness in-process and prints
    p50/p99 latency, shed rate, and board utilization.

``fuzz``
    Differential fuzzing of the whole compiler: generate random
    well-typed kernels, run them through the JVM interpreter and the
    HLS-C executor, demand bit-identical results, and metamorphically
    check randomized Merlin transforms.  ``--corpus DIR`` first replays
    every committed regression entry in DIR, then writes minimized
    crash artifacts there for any new failure; ``--replay-only`` skips
    generation (the CI regression job).

Layout capacities for variable-length leaves are given as repeated
``--length path=N`` options, e.g. ``--length in._2=16 --length out=16``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .compiler.interface import LayoutConfig
from .errors import ExplorationInterrupted, S2FAError, StreamInterrupted

# ----------------------------------------------------------------------
# Process exit codes.  Pinned so schedulers and CI can distinguish
# "preempted but resumable" from "failed":
#
# * EXIT_OK          — success;
# * EXIT_FAILURE     — the pipeline ran but its outcome is wrong
#                      (offloaded results diverge from the JVM oracle);
# * EXIT_USAGE       — bad command line (argparse's own convention);
# * EXIT_ERROR       — an :class:`~repro.errors.S2FAError` (compile,
#                      DSE, or runtime failure);
# * EXIT_INTERRUPTED — the exploration was interrupted *after* flushing
#                      a checkpoint: rerun with ``--resume`` to finish
#                      (the value is BSD's EX_TEMPFAIL, the conventional
#                      "transient failure, retry" code).
# ----------------------------------------------------------------------

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_ERROR = 3
EXIT_INTERRUPTED = 75


def _parse_lengths(pairs: list[str]) -> LayoutConfig:
    lengths: dict[str, int] = {}
    string_length = 128
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--length expects path=N, got {pair!r}")
        path, _, value = pair.partition("=")
        if path == "string":
            string_length = int(value)
        else:
            lengths[path] = int(value)
    return LayoutConfig(lengths=lengths,
                        default_string_length=string_length)


def _parse_device_list(spec) -> tuple:
    """``"a,b,c"`` -> ``("a", "b", "c")`` (names validated downstream
    against the device registry, which raises the typed
    :class:`~repro.errors.UnknownDeviceError` listing valid names)."""
    if not spec:
        return ()
    return tuple(name.strip() for name in spec.split(",") if name.strip())


def _read_source(path: str) -> str:
    source = Path(path)
    if not source.exists():
        raise SystemExit(f"no such kernel file: {path}")
    return source.read_text()


# ----------------------------------------------------------------------
# argv -> config translation
# ----------------------------------------------------------------------

def _explore_config(args: argparse.Namespace):
    from .config import ExploreConfig

    return ExploreConfig(
        seed=getattr(args, "seed", 0),
        time_limit_minutes=getattr(args, "time_limit", 240.0),
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        resume=bool(getattr(args, "resume", False)),
        surrogate=getattr(args, "surrogate", None),
        prune_fraction=getattr(args, "prune_fraction", 0.5),
        device=getattr(args, "device", None) or "xcvu9p")


def _dataset_config(args: argparse.Namespace):
    from .config import DatasetConfig

    return DatasetConfig(
        out=args.out,
        seed=getattr(args, "seed", 0),
        kernels=getattr(args, "kernels", 4),
        configs=getattr(args, "configs", 64),
        apps=not getattr(args, "no_apps", False),
        jobs=getattr(args, "jobs", 1),
        cache_dir=getattr(args, "cache_dir", None),
        resume=bool(getattr(args, "resume", False)))


def _runtime_config(args: argparse.Namespace):
    from .config import RuntimeConfig

    return RuntimeConfig(
        partitions=getattr(args, "partitions", 4),
        fault_plan=getattr(args, "fault_plan", None),
        fault_seed=getattr(args, "fault_seed", 0),
        engine=getattr(args, "engine", None))


def _session(args: argparse.Namespace):
    from .s2fa import S2FASession

    return S2FASession(explore=_explore_config(args),
                       runtime=_runtime_config(args),
                       trace=bool(getattr(args, "trace", None)))


def _require_app(name: str):
    from .apps import get_app

    try:
        return get_app(name)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None


def _export_trace(session, args: argparse.Namespace) -> None:
    if getattr(args, "trace", None):
        spans = session.export_trace(args.trace)
        print(f"trace written to {args.trace} ({spans} spans)")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_compile(args: argparse.Namespace) -> int:
    """``s2fa compile``: Scala kernel file -> generated HLS C."""
    source = _read_source(args.kernel)
    print(_session(args).hls_c(
        source,
        layout_config=_parse_lengths(args.length),
        pattern=args.pattern,
        batch_size=args.batch_size))
    return 0


def _print_explore_summary(build, run) -> None:
    print(f"accelerator id    : {build.accel_id}")
    if run.resumed:
        print("resumed           : from checkpoint")
    print(f"design space      : {build.space.size():,} points")
    print(f"HLS evaluations   : {run.evaluations} "
          f"({run.termination_minutes:.0f} virtual minutes, "
          f"{len(run.partitions)} partitions)")
    stats = run.surrogate_stats
    if stats:
        print(f"surrogate         : {stats['model']} "
              f"pruned {stats['pruned']} "
              f"(revalidated {stats['revalidated']}, "
              f"promoted {stats['promoted']})")
    print(f"best design       : {build.config.describe()}")
    hls = build.hls
    print(f"cycles/batch      : {hls.cycles} @ {hls.freq_mhz:.0f} MHz")
    print("utilization       : "
          + ", ".join(f"{k.upper()} {hls.utilization_percent(k)}%"
                      for k in ("bram", "dsp", "ff", "lut")))


def cmd_explore(args: argparse.Namespace) -> int:
    """``s2fa explore``: compile + DSE, print the chosen design."""
    source = _read_source(args.kernel)
    session = _session(args)
    build = session.explore(
        source,
        layout_config=_parse_lengths(args.length),
        pattern=args.pattern,
        batch_size=args.batch_size)
    run = build.dse
    _print_explore_summary(build, run)
    if run.evaluator_stats:
        from .report import evaluation_stats_table

        print()
        print(evaluation_stats_table(run.evaluator_stats))
    if args.emit_c:
        print()
        print(build.hls_c_source())
    if args.json:
        Path(args.json).write_text(run.to_json())
        print(f"DSE run written to {args.json}")
    _export_trace(session, args)
    return 0


def _print_device_sweep(sweep) -> None:
    from .hls.device import get_device

    explored = sorted(set(sweep.builds) | set(sweep.failures),
                      key=lambda n: (get_device(n).unit_price, n))
    print("device sweep      :")
    for name in explored:
        device = get_device(name)
        build = sweep.builds.get(name)
        if build is None:
            detail = f"no feasible design ({sweep.failures[name]})"
        elif sweep.qualifies(name):
            detail = (f"{build.hls.normalized_cycles:,.0f} norm-cycles "
                      f"(meets target)")
        else:
            detail = (f"{build.hls.normalized_cycles:,.0f} norm-cycles "
                      f"(misses target)")
        marker = "  <- cheapest" if name == sweep.chosen else ""
        print(f"  {name:12s} price {device.unit_price:4.2f} : "
              f"{detail}{marker}")


def cmd_dse(args: argparse.Namespace) -> int:
    """``s2fa dse``: explore + deploy the explored design on Blaze.

    With ``--devices a,b,c`` the device becomes a DSE dimension: every
    named board is explored independently and the *cheapest* board whose
    best design meets ``--qor-target`` (any feasible design when no
    target is given) wins the deployment.
    """
    spec = _require_app(args.app)
    session = _session(args)
    device = None
    devices = _parse_device_list(getattr(args, "devices", None))
    if devices:
        sweep = session.explore_devices(
            spec, list(devices),
            qor_target=getattr(args, "qor_target", None))
        _print_device_sweep(sweep)
        build = sweep.best          # DSEError when nothing qualified
        device = build.device
        print(f"selected device   : {device.name} "
              f"(price {device.unit_price:g})")
    else:
        build = session.explore(spec)
    _print_explore_summary(build, build.dse)
    outcome = session.run(spec, tasks=args.tasks,
                          data_seed=args.data_seed, config=build.config,
                          device=device)
    print(f"deployment        : {outcome.task_count} tasks on "
          f"{outcome.partitions} partitions")
    print(f"results match JVM : "
          f"{'yes (bit-identical)' if outcome.matched else 'NO'}")
    if args.metrics:
        from .report import blaze_metrics_table

        print()
        print(blaze_metrics_table(outcome.metrics))
    _export_trace(session, args)
    return EXIT_OK if outcome.matched else EXIT_FAILURE


def cmd_apps(args: argparse.Namespace) -> int:
    """``s2fa apps``: list the built-in evaluation applications."""
    from .apps import ALL_APPS

    for spec in ALL_APPS:
        print(f"{spec.name:8s} {spec.kind:15s} batch={spec.batch_size:<6d} "
              f"pattern={spec.pattern}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """``s2fa report``: HLS report of a built-in app's manual design."""
    from .apps import get_app
    from .hls import estimate

    try:
        spec = get_app(args.app)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    compiled = spec.compile()
    result = estimate(compiled.kernel, spec.manual_config(compiled))
    print(f"{spec.name} ({spec.kind}), expert manual design:")
    print(f"  feasible : {result.feasible} {result.infeasible_reason}")
    print(f"  cycles   : {result.cycles} per {compiled.batch_size}-task "
          f"batch")
    print(f"  clock    : {result.freq_mhz:.0f} MHz")
    print(f"  BRAM/DSP/FF/LUT : "
          + "/".join(f"{result.utilization_percent(k)}%"
                     for k in ("bram", "dsp", "ff", "lut")))
    print(f"  memory bound    : {result.memory_bound}")
    for loop in result.loops:
        ii = f"II={loop.ii}" if loop.ii is not None else "no pipeline"
        print(f"    {loop.label:12s} trip={loop.trip_count} "
              f"x{loop.parallel} {ii:8s} lat={loop.latency} ({loop.note})")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """``s2fa run``: deploy an app on Blaze, offload, verify, report."""
    from .report import blaze_metrics_table

    spec = _require_app(args.app)
    session = _session(args)
    outcome = session.run(spec, tasks=args.tasks,
                          data_seed=args.data_seed)
    print(f"{outcome.app}: {outcome.task_count} tasks on "
          f"{outcome.partitions} partitions")
    if outcome.fault_plan is not None:
        print(f"fault plan        : {outcome.fault_plan.describe()}")
    print(f"results match JVM : "
          f"{'yes (bit-identical)' if outcome.matched else 'NO'}")
    print()
    print(blaze_metrics_table(outcome.metrics))
    _export_trace(session, args)
    return EXIT_OK if outcome.matched else EXIT_FAILURE


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``s2fa fuzz``: differential + metamorphic compiler fuzzing."""
    from .fuzz import FuzzConfig, load_regressions, replay_entry, \
        run_campaign

    failed = False

    if args.corpus:
        entries = load_regressions(args.corpus)
        for entry in entries:
            ok, detail = replay_entry(entry)
            status = "ok" if ok else f"FAIL ({detail})"
            print(f"replay {entry.path.name if entry.path else entry.name}"
                  f" : {status}")
            failed = failed or not ok
        if entries:
            print(f"corpus : {len(entries)} entries replayed")
    if args.replay_only:
        if not args.corpus:
            raise SystemExit("--replay-only requires --corpus DIR")
        return EXIT_FAILURE if failed else EXIT_OK

    config = FuzzConfig(
        iterations=args.iterations,
        seed=args.seed,
        corpus_dir=Path(args.corpus) if args.corpus else None,
        n_tasks=args.tasks,
        check_metamorphic=not args.no_metamorphic,
        minimize=not args.no_minimize,
        max_failures=args.max_failures)
    report = run_campaign(config)
    print(f"fuzz   : {report.kernels} kernels, seed {report.seed}")
    print("features          : "
          + ", ".join(f"{k}={v}"
                      for k, v in sorted(report.features.items())))
    if report.transform_kinds:
        print("transform kinds   : "
              + ", ".join(f"{k}={v}" for k, v
                          in sorted(report.transform_kinds.items())))
    print(f"failures          : {len(report.failures)}")
    for failure in report.failures:
        print(f"  [{failure.iteration}] {failure.kind} "
              f"{failure.stage}: {failure.detail}")
        if failure.artifact_dir is not None:
            print(f"      artifact: {failure.artifact_dir}")
        if failure.minimized_lines is not None:
            print(f"      minimized to {failure.minimized_lines} lines")
    return EXIT_FAILURE if (failed or report.failures) else EXIT_OK


def _stream_config(args: argparse.Namespace):
    from .config import StreamConfig

    return StreamConfig(
        batch_records=args.batch_records,
        interval_seconds=args.interval,
        total_records=args.records,
        max_batches=args.batches,
        data_seed=args.data_seed,
        max_lag_intervals=args.max_lag,
        sink=args.sink,
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        resume=bool(getattr(args, "resume", False)),
        runtime=_runtime_config(args))


def cmd_stream(args: argparse.Namespace) -> int:
    """``s2fa stream``: run a streaming pipeline to completion."""
    from .apps import get_stream_app

    try:
        spec = get_stream_app(args.app)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    session = _session(args)
    outcome = session.stream(spec, _stream_config(args))
    latencies = sorted(outcome.batch_latencies)

    def pct(p: float) -> float:
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1,
                             int(p * len(latencies)))]

    print(f"{outcome.app}: {outcome.batches} micro-batches, "
          f"{outcome.records_in} records in, "
          f"{outcome.rows_emitted} sink rows"
          + (" (resumed)" if outcome.resumed else ""))
    print(f"throughput        : {outcome.throughput_rps:.0f} records/s "
          f"(virtual)")
    print(f"batch latency     : p50 {pct(0.50) * 1e3:.3f} ms, "
          f"p99 {pct(0.99) * 1e3:.3f} ms")
    if outcome.duplicates_skipped:
        print(f"replayed rows     : {outcome.duplicates_skipped} "
              "(skipped by the idempotent sink)")
    if outcome.lagging_batches:
        recovered = ", ".join(f"{r * 1e3:.1f} ms"
                              for r in outcome.recovery_seconds)
        print(f"backpressure      : {outcome.lagging_batches} LAGGING "
              f"batches"
              + (f", recovered in {recovered}" if recovered else ""))
    if args.metrics:
        from .report import blaze_metrics_table

        print()
        print(blaze_metrics_table(outcome.metrics))
    _export_trace(session, args)
    return EXIT_OK


def _serve_config(args: argparse.Namespace):
    from .config import ServeConfig

    weights = {}
    for pair in getattr(args, "tenant_weight", None) or []:
        if "=" not in pair:
            raise SystemExit(f"--tenant-weight expects TENANT=W, "
                             f"got {pair!r}")
        tenant, _, weight = pair.partition("=")
        weights[tenant] = int(weight)
    return ServeConfig(
        queue_depth=args.queue_depth,
        tenant_weights=weights,
        replicas=args.replicas,
        default_deadline_s=args.default_deadline,
        breaker_threshold=args.breaker_threshold,
        breaker_reset_s=args.breaker_reset,
        device=getattr(args, "device", None) or "xcvu9p",
        fleet_devices=_parse_device_list(
            getattr(args, "fleet_devices", None)),
        runtime=_runtime_config(args))


def cmd_serve(args: argparse.Namespace) -> int:
    """``s2fa serve``: the multi-tenant daemon (or its load harness)."""
    config = _serve_config(args)
    if args.simulate:
        from .serve.loadgen import LoadProfile, run_profile

        profile = LoadProfile(
            clients=args.clients, tenants=args.tenants,
            requests_per_client=args.requests_per_client,
            mean_interarrival_s=args.mean_interarrival,
            n_tasks=args.tasks, deadline_s=args.deadline,
            seed=args.seed)
        _, report = run_profile(profile, config,
                                verify=not args.no_verify)
        print(report.summary())
        broken = report.lost or report.duplicates or report.mismatches
        return EXIT_FAILURE if broken else EXIT_OK
    if not args.socket:
        raise SystemExit("serve needs --socket PATH (or --simulate)")
    from .serve.daemon import run_daemon

    print(f"s2fa serve: listening on {args.socket} "
          f"(queue depth {config.queue_depth}, "
          f"{config.replicas} replicas/kernel)")
    return run_daemon(args.socket, config, state_path=args.state,
                      ready_path=args.ready)


def _print_fidelity(report) -> None:
    print(f"fidelity (holdout): spearman {report.spearman:.3f}, "
          f"mse {report.mse:.3f} "
          f"({report.count} records, {report.infeasible} infeasible)")
    for k, recall in sorted(report.top_k_recall.items()):
        print(f"  top-{k} recall   : {recall:.2f}")


def cmd_dataset_build(args: argparse.Namespace) -> int:
    """``s2fa dataset build``: sweep kernels x configs into JSONL."""
    from .dataset import build_dataset

    report = build_dataset(_dataset_config(args))
    print(f"dataset           : {report.path}")
    print(f"records written   : {report.records} "
          f"({report.infeasible} infeasible, "
          f"{report.minutes_total:.0f} virtual minutes)")
    print(f"kernels swept     : {report.kernels}")
    if report.skipped_existing:
        print(f"resume            : {report.skipped_existing} records "
              "already present, skipped")
    for name, detail in report.failed_kernels:
        print(f"kernel {name} skipped: {detail}")
    return EXIT_OK


def cmd_dataset_train(args: argparse.Namespace) -> int:
    """``s2fa dataset train``: fit a surrogate, write the artifact."""
    from .dataset import read_records, train_surrogate

    records, skipped = read_records(args.dataset)
    if skipped:
        print(f"warning: skipped {skipped} corrupt records",
              file=sys.stderr)
    params = {}
    if args.model == "ridge":
        params["alpha"] = args.alpha
    else:
        params["n_trees"] = args.trees
        params["max_depth"] = args.depth
    surrogate, report = train_surrogate(records, model=args.model,
                                        **params)
    surrogate.save(args.out)
    print(f"surrogate         : {args.out} ({surrogate.identity()})")
    print(f"trained on        : {len(records)} records")
    _print_fidelity(report)
    if args.min_spearman is not None \
            and report.spearman < args.min_spearman:
        print(f"FAIL: spearman {report.spearman:.3f} < floor "
              f"{args.min_spearman}", file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def cmd_dataset_eval(args: argparse.Namespace) -> int:
    """``s2fa dataset eval``: fidelity of an artifact on a dataset."""
    from .cost import SurrogateCostModel
    from .dataset import fidelity_of, read_records

    surrogate = SurrogateCostModel.load(args.surrogate)
    records, skipped = read_records(args.dataset)
    if skipped:
        print(f"warning: skipped {skipped} corrupt records",
              file=sys.stderr)
    report = fidelity_of(surrogate.model, records)
    print(f"surrogate         : {surrogate.identity()}")
    _print_fidelity(report)
    if args.min_spearman is not None \
            and report.spearman < args.min_spearman:
        print(f"FAIL: spearman {report.spearman:.3f} < floor "
              f"{args.min_spearman}", file=sys.stderr)
        return EXIT_FAILURE
    return EXIT_OK


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """``s2fa trace summarize``: per-stage breakdown of a trace file."""
    from .obs import load_trace, summarize

    if not Path(args.file).exists():
        raise SystemExit(f"no such trace file: {args.file}")
    try:
        roots = load_trace(args.file)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from None
    print(summarize(roots, top=args.top, flame=not args.no_flame))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------

def _add_engine_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--engine", choices=("tac", "stack"),
                        default=None,
                        help="functional execution engine: 'tac' = "
                             "flattened register-IR engines (default), "
                             "'stack' = the original stack/tree "
                             "interpreters (the differential oracles); "
                             "also settable via $S2FA_ENGINE")


def _add_device_flag(parser: argparse.ArgumentParser) -> None:
    from .hls.device import device_names

    parser.add_argument("--device", metavar="NAME",
                        help="target device model (registered: "
                             + ", ".join(device_names())
                             + "; default xcvu9p); an unknown name "
                             "fails with the registered list")


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE",
                        help="record a span trace of the whole run "
                             "(Chrome trace_event JSON; *.jsonl for the "
                             "span log)")


def _add_checkpoint_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", metavar="DIR",
                        help="crash-safe exploration: journal the "
                             "explorer state here at every batch "
                             "boundary (SIGINT/SIGTERM then exit "
                             f"{EXIT_INTERRUPTED} with a resumable "
                             "checkpoint); implies --cache-dir DIR "
                             "unless one is given")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint in "
                             "--checkpoint-dir if one exists (starts "
                             "fresh otherwise)")


def _add_surrogate_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--surrogate", metavar="MODEL.json",
                        help="learned cost-model artifact (from 's2fa "
                             "dataset train'); the engine prunes each "
                             "proposal batch by its predictions, but "
                             "every reported design is still "
                             "analytically scored")
    parser.add_argument("--prune-fraction", type=float, default=0.5,
                        help="fraction of each unseen batch the "
                             "surrogate may prune, in [0, 1) "
                             "(default 0.5)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse command-line interface."""
    parser = argparse.ArgumentParser(
        prog="s2fa",
        description="S2FA: Spark-to-FPGA-Accelerator automation "
                    "(DAC'18 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_p = sub.add_parser("compile",
                               help="Scala kernel -> HLS C")
    compile_p.add_argument("kernel")
    compile_p.add_argument("--length", action="append", metavar="PATH=N")
    compile_p.add_argument("--pattern", default="map",
                           choices=("map", "reduce", "filter"))
    compile_p.add_argument("--batch-size", type=int, default=1024)
    compile_p.set_defaults(func=cmd_compile)

    explore_p = sub.add_parser("explore",
                               help="compile + design space exploration")
    explore_p.add_argument("kernel")
    explore_p.add_argument("--length", action="append", metavar="PATH=N")
    explore_p.add_argument("--pattern", default="map",
                           choices=("map", "reduce", "filter"))
    explore_p.add_argument("--batch-size", type=int, default=1024)
    explore_p.add_argument("--seed", type=int, default=0)
    explore_p.add_argument("--time-limit", type=float, default=240.0,
                           help="virtual minutes (default 240)")
    explore_p.add_argument("--jobs", type=int, default=1,
                           help="process-pool width for HLS estimation "
                                "(results are identical at any value; "
                                "default 1)")
    explore_p.add_argument("--cache-dir", metavar="DIR",
                           help="persistent evaluation cache directory "
                                "(repeated runs skip re-estimation)")
    _add_device_flag(explore_p)
    _add_checkpoint_flags(explore_p)
    _add_surrogate_flags(explore_p)
    explore_p.add_argument("--emit-c", action="store_true",
                           help="print the annotated HLS C")
    explore_p.add_argument("--json", metavar="FILE",
                           help="write the DSE run (trace, partitions, "
                                "best design) as JSON")
    _add_trace_flag(explore_p)
    explore_p.set_defaults(func=cmd_explore)

    dse_p = sub.add_parser(
        "dse", help="end-to-end pipeline: explore a built-in app and "
                    "deploy the explored design on Blaze")
    dse_p.add_argument("app")
    dse_p.add_argument("--seed", type=int, default=0)
    dse_p.add_argument("--time-limit", type=float, default=240.0,
                       help="virtual minutes (default 240)")
    dse_p.add_argument("--jobs", type=int, default=1,
                       help="process-pool width for HLS estimation")
    dse_p.add_argument("--cache-dir", metavar="DIR",
                       help="persistent evaluation cache directory")
    _add_device_flag(dse_p)
    dse_p.add_argument("--devices", metavar="A,B,C",
                       help="comma-separated registered device names: "
                            "explore (device x config) and deploy on "
                            "the cheapest board meeting --qor-target")
    dse_p.add_argument("--qor-target", type=float, default=None,
                       metavar="CYCLES",
                       help="QoR bar for --devices: best design must "
                            "reach this normalized cycle count or "
                            "better (default: any feasible design)")
    _add_checkpoint_flags(dse_p)
    _add_surrogate_flags(dse_p)
    dse_p.add_argument("--tasks", type=int, default=64,
                       help="deployment workload size (default 64)")
    dse_p.add_argument("--data-seed", type=int, default=21,
                       help="workload generator seed (default 21)")
    dse_p.add_argument("--partitions", type=int, default=4,
                       help="Spark partitions (default 4)")
    dse_p.add_argument("--metrics", action="store_true",
                       help="print the Blaze runtime metrics table")
    _add_engine_flag(dse_p)
    _add_trace_flag(dse_p)
    dse_p.set_defaults(func=cmd_dse)

    apps_p = sub.add_parser("apps", help="list built-in applications")
    apps_p.set_defaults(func=cmd_apps)

    report_p = sub.add_parser("report",
                              help="HLS report of a built-in app")
    report_p.add_argument("app")
    report_p.set_defaults(func=cmd_report)

    run_p = sub.add_parser(
        "run", help="deploy a built-in app on the Blaze runtime")
    run_p.add_argument("app")
    run_p.add_argument("--tasks", type=int, default=64,
                       help="workload size (default 64)")
    run_p.add_argument("--data-seed", type=int, default=21,
                       help="workload generator seed (default 21)")
    run_p.add_argument("--partitions", type=int, default=4,
                       help="Spark partitions (default 4)")
    run_p.add_argument("--fault-plan", metavar="SPEC",
                       help="device fault schedule, e.g. "
                            "'transient=0.2,hang=0.05,corrupt=0.1,"
                            "lose_after=40'")
    run_p.add_argument("--fault-seed", type=int, default=0,
                       help="seed of the fault schedule (default 0)")
    _add_device_flag(run_p)
    _add_engine_flag(run_p)
    _add_trace_flag(run_p)
    run_p.set_defaults(func=cmd_run)

    stream_p = sub.add_parser(
        "stream", help="run a streaming pipeline (micro-batched, "
                       "exactly-once) on the Blaze runtime")
    stream_p.add_argument("app",
                          help="streaming app: lr-stream, aes-window, "
                               "or log-filter")
    stream_p.add_argument("--batch-records", type=int, default=32,
                          help="source records per micro-batch "
                               "(default 32)")
    stream_p.add_argument("--interval", type=float, default=0.05,
                          metavar="SECONDS",
                          help="micro-batch interval, virtual seconds "
                               "(default 0.05)")
    stream_p.add_argument("--records", type=int, default=256,
                          help="bounded source size (default 256)")
    stream_p.add_argument("--batches", type=int, default=None,
                          help="hard cap on micro-batches (default: "
                               "until the source is exhausted)")
    stream_p.add_argument("--data-seed", type=int, default=21,
                          help="record generator seed (default 21)")
    stream_p.add_argument("--max-lag", type=float, default=2.0,
                          metavar="INTERVALS",
                          help="LAGGING threshold in batch intervals "
                               "(default 2.0)")
    stream_p.add_argument("--sink", metavar="FILE",
                          help="append sink rows to this JSONL file "
                               "(default: in-memory)")
    stream_p.add_argument("--partitions", type=int, default=4,
                          help="Spark partitions (default 4)")
    stream_p.add_argument("--fault-plan", metavar="SPEC",
                          help="device fault schedule, e.g. "
                               "'transient=0.2,hang=0.05,lose_after=40'")
    stream_p.add_argument("--fault-seed", type=int, default=0,
                          help="seed of the fault schedule (default 0)")
    stream_p.add_argument("--checkpoint-dir", metavar="DIR",
                          help="crash-safe exactly-once streaming: "
                               "checkpoint source offsets + operator "
                               "state here after every micro-batch "
                               "(SIGINT/SIGTERM then exit "
                               f"{EXIT_INTERRUPTED} resumable)")
    stream_p.add_argument("--resume", action="store_true",
                          help="resume from the checkpoint in "
                               "--checkpoint-dir if one exists")
    stream_p.add_argument("--metrics", action="store_true",
                          help="print the Blaze runtime metrics table")
    _add_engine_flag(stream_p)
    _add_trace_flag(stream_p)
    stream_p.set_defaults(func=cmd_stream)

    fuzz_p = sub.add_parser(
        "fuzz", help="differential + metamorphic compiler fuzzing")
    fuzz_p.add_argument("--iterations", type=int, default=200,
                        help="kernels to generate (default 200)")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="campaign seed; the kernel sequence is a "
                             "pure function of it (default 0)")
    fuzz_p.add_argument("--corpus", metavar="DIR",
                        help="replay the regression entries in DIR "
                             "first, then write minimized crash "
                             "artifacts there on new failures")
    fuzz_p.add_argument("--replay-only", action="store_true",
                        help="only replay the corpus, no generation")
    fuzz_p.add_argument("--tasks", type=int, default=4,
                        help="input tasks per kernel (default 4)")
    fuzz_p.add_argument("--max-failures", type=int, default=10,
                        help="stop the campaign after this many "
                             "failures (default 10)")
    fuzz_p.add_argument("--no-metamorphic", action="store_true",
                        help="skip the Merlin transform checker")
    fuzz_p.add_argument("--no-minimize", action="store_true",
                        help="keep failing kernels unshrunk")
    fuzz_p.set_defaults(func=cmd_fuzz)

    serve_p = sub.add_parser(
        "serve", help="multi-tenant accelerator daemon (unix socket)")
    serve_p.add_argument("--socket", metavar="PATH",
                         help="unix socket path to listen on")
    serve_p.add_argument("--state", metavar="FILE",
                         help="flush the final state snapshot here on "
                              "graceful drain")
    serve_p.add_argument("--ready", metavar="FILE",
                         help="touch FILE (with the daemon pid) once "
                              "the socket is listening")
    serve_p.add_argument("--queue-depth", type=int, default=64,
                         help="bounded per-tenant queue depth; a full "
                              "queue sheds OVERLOADED (default 64)")
    serve_p.add_argument("--tenant-weight", action="append",
                         metavar="TENANT=W",
                         help="weighted-round-robin weight for a tenant "
                              "(repeatable; others get weight 1)")
    serve_p.add_argument("--replicas", type=int, default=2,
                         help="virtual boards per kernel (default 2)")
    serve_p.add_argument("--default-deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="default per-request deadline in virtual "
                              "seconds (default: unbounded)")
    serve_p.add_argument("--breaker-threshold", type=int, default=3,
                         help="consecutive hardware failures before a "
                              "kernel's circuit opens (default 3)")
    serve_p.add_argument("--breaker-reset", type=float, default=0.5,
                         help="circuit cooldown in virtual seconds "
                              "before a half-open probe (default 0.5)")
    serve_p.add_argument("--fault-plan", metavar="SPEC",
                         help="device fault schedule for every board, "
                              "e.g. 'transient=0.2,lose_after=40'")
    serve_p.add_argument("--fault-seed", type=int, default=0,
                         help="seed of the fault schedule (default 0)")
    _add_device_flag(serve_p)
    serve_p.add_argument("--fleet-devices", metavar="A,B,C",
                         help="heterogeneous board fleet: comma-separated "
                              "registered device names assigned to "
                              "replicas round-robin (placement/timing "
                              "only; results stay bit-identical)")
    _add_engine_flag(serve_p)
    sim = serve_p.add_argument_group(
        "load simulation (--simulate: no daemon, no socket; replay a "
        "deterministic multi-tenant trace on the virtual clock)")
    sim.add_argument("--simulate", action="store_true",
                     help="run the load harness in-process and print "
                          "p50/p99 latency, shed rate, utilization")
    sim.add_argument("--clients", type=int, default=100,
                     help="synthetic clients (default 100)")
    sim.add_argument("--tenants", type=int, default=4,
                     help="tenants the clients spread across (default 4)")
    sim.add_argument("--requests-per-client", type=int, default=2,
                     help="requests each client issues (default 2)")
    sim.add_argument("--mean-interarrival", type=float, default=0.05,
                     metavar="SECONDS",
                     help="mean virtual inter-arrival per client "
                          "(default 0.05; smaller = heavier load)")
    sim.add_argument("--tasks", type=int, default=6,
                     help="tasks per offload request (default 6)")
    sim.add_argument("--deadline", type=float, default=None,
                     metavar="SECONDS",
                     help="per-request deadline, virtual seconds")
    sim.add_argument("--seed", type=int, default=0,
                     help="trace seed: same seed, same trace, same "
                          "report (default 0)")
    sim.add_argument("--no-verify", action="store_true",
                     help="skip the bit-identity check against the "
                          "JVM oracle")
    serve_p.set_defaults(func=cmd_serve)

    dataset_p = sub.add_parser(
        "dataset", help="QoR dataset factory + surrogate training")
    dataset_sub = dataset_p.add_subparsers(dest="dataset_command",
                                           required=True)

    ds_build = dataset_sub.add_parser(
        "build", help="sweep kernels x sampled configs through the "
                      "analytical estimator into a JSONL dataset")
    ds_build.add_argument("--out", default="dataset.jsonl",
                          metavar="FILE",
                          help="output JSONL path "
                               "(default dataset.jsonl)")
    ds_build.add_argument("--seed", type=int, default=0,
                          help="sweep seed: kernels and sampled "
                               "configs are a pure function of it "
                               "(default 0)")
    ds_build.add_argument("--kernels", type=int, default=4,
                          help="fuzz-generated kernels on top of the "
                               "app suite (default 4)")
    ds_build.add_argument("--configs", type=int, default=64,
                          help="sampled design configs per kernel "
                               "(default 64)")
    ds_build.add_argument("--no-apps", action="store_true",
                          help="skip the built-in application suite")
    ds_build.add_argument("--jobs", type=int, default=1,
                          help="process-pool width for HLS estimation")
    ds_build.add_argument("--cache-dir", metavar="DIR",
                          help="persistent evaluation cache directory")
    ds_build.add_argument("--resume", action="store_true",
                          help="keep records already in --out and "
                               "continue after them")
    ds_build.set_defaults(func=cmd_dataset_build)

    ds_train = dataset_sub.add_parser(
        "train", help="fit a surrogate on a dataset and write the "
                      "model artifact")
    ds_train.add_argument("dataset", help="JSONL dataset file")
    ds_train.add_argument("--out", default="surrogate.json",
                          metavar="FILE",
                          help="artifact path (default surrogate.json)")
    ds_train.add_argument("--model", choices=("ridge", "gbdt"),
                          default="gbdt",
                          help="learner (default gbdt)")
    ds_train.add_argument("--alpha", type=float, default=1.0,
                          help="ridge regularization (default 1.0)")
    ds_train.add_argument("--trees", type=int, default=40,
                          help="GBDT boosting rounds (default 40)")
    ds_train.add_argument("--depth", type=int, default=3,
                          help="GBDT tree depth (default 3)")
    ds_train.add_argument("--min-spearman", type=float, default=None,
                          metavar="R",
                          help="fail (exit 1) if holdout spearman "
                               "lands below this floor")
    ds_train.set_defaults(func=cmd_dataset_train)

    ds_eval = dataset_sub.add_parser(
        "eval", help="fidelity of a trained artifact on a dataset")
    ds_eval.add_argument("surrogate", help="model artifact (JSON)")
    ds_eval.add_argument("dataset", help="JSONL dataset file")
    ds_eval.add_argument("--min-spearman", type=float, default=None,
                         metavar="R",
                         help="fail (exit 1) below this floor")
    ds_eval.set_defaults(func=cmd_dataset_eval)

    trace_p = sub.add_parser("trace",
                             help="inspect recorded span traces")
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    summarize_p = trace_sub.add_parser(
        "summarize", help="per-stage breakdown + flamegraph of a trace")
    summarize_p.add_argument("file")
    summarize_p.add_argument("--top", type=int, default=10,
                             help="slowest spans to list (default 10)")
    summarize_p.add_argument("--no-flame", action="store_true",
                             help="skip the flamegraph section")
    summarize_p.set_defaults(func=cmd_trace_summarize)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    See the ``EXIT_*`` constants at the top of this module for the
    pinned exit-code contract.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ExplorationInterrupted, StreamInterrupted) as exc:
        print(f"interrupted: {exc}", file=sys.stderr)
        return EXIT_INTERRUPTED
    except S2FAError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    raise SystemExit(main())
