"""Bytecode-to-C compiler: the S2FA code-generation stage (Fig. 1)."""

from .driver import (  # noqa: F401
    DEFAULT_BATCH_SIZE,
    CompiledKernel,
    KernelCompiler,
    compile_kernel,
)
from .interface import (  # noqa: F401
    InterfaceLayout,
    LayoutConfig,
    Leaf,
    build_layout,
)
from .lift import Lifter  # noqa: F401
from .passes import recover_for_loops, rename_var  # noqa: F401
from .templates import map_template, reduce_template  # noqa: F401
