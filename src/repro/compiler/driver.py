"""The S2FA compiler driver: Scala kernel source -> HLS-C kernel.

Orchestrates the whole frontend-to-C pipeline of Fig. 1:

1. compile the mini-Scala source to JVM bytecode (``repro.scala``),
2. instantiate the kernel class in the JVM interpreter to *bake* constant
   field values (Blaze broadcast data becomes on-chip ROM),
3. flatten the ``Accelerator[In, Out]`` types into interface buffers,
4. lift ``call`` (and any helper methods it invokes) from bytecode to C,
5. insert the map/reduce template to form the batch ``kernel`` function,
6. label all loops so the design space can refer to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..engines import make_jvm_interpreter
from ..errors import DecompileError, UnsupportedConstructError
from ..hlsc.ast import CFunction, CKernel, Param
from ..hlsc.analysis import label_kernel
from ..jvm.classfile import ClassRegistry, JClass, JMethod
from ..jvm.descriptors import slot_width
from ..jvm.interpreter import JObject
from ..jvm.opcodes import INVOKE_OPS
from ..jvm.stdlib import is_tuple_class
from ..obs.span import NULL_TRACER
from ..scala import compile_program, sast
from ..scala import types as st
from ..utils import NameAllocator
from .interface import InterfaceLayout, LayoutConfig, build_layout
from .lift import (
    BufferParam,
    CompositeParam,
    Lifter,
    ScalarParam,
    ThisParam,
    ctype_for_descriptor,
)
from .passes import recover_for_loops, remove_decl, rename_var
from .templates import make_call_function, map_template, reduce_template

#: Default number of tasks per accelerator invocation (the Blaze batch).
DEFAULT_BATCH_SIZE = 1024


@dataclass
class CompiledKernel:
    """Everything downstream stages need about one compiled kernel."""

    name: str                  # kernel class name
    kernel: CKernel            # the generated HLS-C translation unit
    layout: InterfaceLayout    # flattened interface
    program: sast.Program      # typed Scala AST
    classes: list[JClass]      # emitted JVM classes
    registry: ClassRegistry    # loaded class registry (for the JVM baseline)
    instance: JObject          # baked kernel instance
    pattern: str               # "map" | "reduce"
    batch_size: int
    loop_labels: list[str] = field(default_factory=list)

    @property
    def accel_id(self) -> str:
        """The Blaze accelerator id (the kernel class's ``id`` field)."""
        value = self.instance.fields.get("id")
        return value if isinstance(value, str) else self.name


def _find_kernel_class(program: sast.Program,
                       name: Optional[str]) -> sast.ClassDef:
    candidates = [c for c in program.classes
                  if name is None or c.name == name]
    if name is None:
        candidates = [c for c in candidates if c.parent == "Accelerator"]
    if not candidates:
        raise UnsupportedConstructError(
            "no kernel class found (expected `class X extends "
            "Accelerator[In, Out]`)")
    if len(candidates) > 1:
        names = ", ".join(c.name for c in candidates)
        raise UnsupportedConstructError(
            f"multiple kernel classes found ({names}); pass kernel_class=")
    return candidates[0]


def _io_types(cls: sast.ClassDef) -> tuple[st.Type, st.Type]:
    if cls.parent == "Accelerator" and len(cls.type_args) == 2:
        return cls.type_args[0], cls.type_args[1]
    call = cls.method("call")
    if len(call.params) != 1:
        raise UnsupportedConstructError(
            "kernel call() must take exactly one input")
    return call.params[0].declared, call.ret


def _leaf_binding(leaf) -> object:
    if leaf.is_scalar:
        return ScalarParam(leaf.name, leaf.ctype)
    return BufferParam(leaf.name, leaf.ctype, leaf.elem_count)


def _input_bindings(input_type: st.Type, layout: InterfaceLayout) -> object:
    """Binding for the single ``in`` parameter of ``call``.

    Mirrors the recursive flattening of :func:`build_layout`: composite
    types become nested :class:`CompositeParam` trees whose leaves consume
    ``layout.inputs`` in order, so ``in._2._1``-style accessor chains on
    nested tuples resolve to the right flattened buffer.
    """
    leaf_iter = iter(layout.inputs)

    def build(tpe: st.Type) -> object:
        if isinstance(tpe, st.TupleType):
            return CompositeParam(leaves={
                i: build(elem)
                for i, elem in enumerate(tpe.elems, start=1)
            })
        if isinstance(tpe, st.ClassType) and tpe.name in layout.records:
            return CompositeParam(leaves={
                field_name: build(field_type)
                for field_name, field_type in layout.records[tpe.name]
            })
        return _leaf_binding(next(leaf_iter))

    return build(input_type)


class KernelCompiler:
    """Compiles one kernel class end to end."""

    def __init__(self, source: str, *,
                 kernel_class: Optional[str] = None,
                 layout_config: Optional[LayoutConfig] = None,
                 pattern: str = "map",
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 tracer=NULL_TRACER):
        if pattern not in ("map", "reduce", "filter"):
            raise UnsupportedConstructError(
                f"unsupported RDD transformation pattern {pattern!r}")
        self.source = source
        self.kernel_class = kernel_class
        self.layout_config = layout_config or LayoutConfig()
        self.pattern = pattern
        self.batch_size = batch_size
        self.tracer = tracer

    # ------------------------------------------------------------------

    def compile(self) -> CompiledKernel:
        tracer = self.tracer
        with tracer.span("compile.kernel", pattern=self.pattern,
                         batch_size=self.batch_size) as root:
            compiled = self._compile_passes(root)
            root.set(class_name=compiled.name,
                     loops=len(compiled.loop_labels))
            tracer.metrics.incr("compile.kernels")
        return compiled

    def _compile_passes(self, root) -> CompiledKernel:
        tracer = self.tracer
        with tracer.span("compile.frontend"):
            program, classes = compile_program(self.source)
            registry = ClassRegistry()
            for jclass in classes:
                registry.define(jclass)

        cls = _find_kernel_class(program, self.kernel_class)
        jclass = registry.lookup(cls.name)
        with tracer.span("compile.bake", class_name=cls.name):
            instance = self._bake_instance(registry, cls.name)
        input_type, output_type = _io_types(cls)
        records = {
            c.name: [(p.name, p.declared) for p in c.record_fields]
            for c in program.classes if c.is_record
        }
        with tracer.span("compile.interface") as span:
            layout = build_layout(input_type, output_type,
                                  self.layout_config, records=records)
            span.set(leaves=len(layout.leaves),
                     bytes_in=layout.bytes_in_per_task,
                     bytes_out=layout.bytes_out_per_task)
        self._record_field_names = {
            name: [field_name for field_name, _ in fields]
            for name, fields in records.items()
        }

        call_method = jclass.method("call")
        with tracer.span("compile.lift_helpers") as span:
            helpers, helper_names = self._lift_helpers(
                registry, jclass, call_method, instance)
            span.set(helpers=len(helpers))

        names = NameAllocator()
        for leaf in layout.leaves:
            names.reserve(leaf.name)

        with tracer.span("compile.lift_call"):
            if self.pattern in ("map", "filter"):
                # A filter kernel is a map producing a 0/1 keep-flag per
                # task (the host-side Blaze runtime drops the filtered
                # elements).
                if self.pattern == "filter" and output_type != st.BOOLEAN:
                    raise UnsupportedConstructError(
                        f"filter kernels must return Boolean, "
                        f"not {output_type}")
                call_fn = self._lift_call_map(
                    call_method, cls, instance, layout, helper_names,
                    names)
                top = map_template(layout)
            else:
                call_fn = self._lift_call_reduce(
                    call_method, cls, instance, layout, helper_names,
                    names)
                top = reduce_template(layout)

        functions = helpers + [call_fn, top]
        kernel = CKernel(
            functions=functions,
            top=top.name,
            metadata={
                "pattern": self.pattern,
                "batch_size": self.batch_size,
                "class_name": cls.name,
                "call_name": call_fn.name,
                "bytes_in_per_task": layout.bytes_in_per_task,
                "bytes_out_per_task": layout.bytes_out_per_task,
            },
        )
        with tracer.span("compile.label"):
            labels = label_kernel(kernel)
        return CompiledKernel(
            name=cls.name, kernel=kernel, layout=layout, program=program,
            classes=classes, registry=registry, instance=instance,
            pattern=self.pattern, batch_size=self.batch_size,
            loop_labels=labels)

    # ------------------------------------------------------------------

    def _bake_instance(self, registry: ClassRegistry,
                       class_name: str) -> JObject:
        interp = make_jvm_interpreter(registry)
        instance = interp.new_instance(class_name)
        interp.invoke(class_name, "<init>", [instance])
        return instance

    # ------------------------------------------------------------------

    def _lift_helpers(self, registry: ClassRegistry, jclass: JClass,
                      call_method: JMethod, instance: JObject
                      ) -> tuple[list[CFunction], dict]:
        """Lift every same-class / module method ``call`` reaches."""
        helper_names: dict[tuple[str, str], str] = {}
        order: list[tuple[str, str]] = []

        def discover(method: JMethod, owner: str) -> None:
            for instr in method.code:
                if instr.mnemonic not in INVOKE_OPS:
                    continue
                target_owner, target_name, _ = instr.operands
                if target_owner in ("java/lang/Math", "java/lang/String",
                                    "java/lang/Object"):
                    continue
                if is_tuple_class(target_owner):
                    continue
                if target_name == "<init>":
                    # Tuple/record construction is handled by the lifter.
                    continue
                key = (target_owner, target_name)
                if key in helper_names:
                    continue
                try:
                    target_class, target_method = registry.resolve_method(
                        target_owner, target_name, instr.operands[2])
                except Exception as exc:
                    raise DecompileError(
                        f"cannot resolve helper {target_owner}."
                        f"{target_name}: {exc}") from exc
                helper_names[key] = target_name
                order.append(key)
                discover(target_method, target_class.name)

        discover(call_method, jclass.name)

        helpers: list[CFunction] = []
        for owner, name in order:
            _, method = registry.resolve_method(owner, name, None)
            helpers.append(self._lift_helper(method, owner, instance,
                                             helper_names))
        return helpers, helper_names

    def _lift_helper(self, method: JMethod, owner: str, instance: JObject,
                     helper_names: dict) -> CFunction:
        parsed = method.parsed_descriptor
        bindings: dict[int, object] = {}
        params: list[Param] = []
        slot = 0
        if not method.is_static:
            bindings[0] = ThisParam(owner, instance.fields)
            slot = 1
        for i, descriptor in enumerate(parsed.params):
            pname = f"a{i}"
            if descriptor.startswith("["):
                elem = ctype_for_descriptor(descriptor[1:])
                bindings[slot] = BufferParam(pname, elem, None)
                params.append(Param(name=pname, ctype=elem, is_pointer=True))
            else:
                ctype = ctype_for_descriptor(descriptor)
                bindings[slot] = ScalarParam(pname, ctype)
                params.append(Param(name=pname, ctype=ctype))
            slot += slot_width(descriptor)

        lifter = Lifter(method, slot_bindings=bindings,
                        helper_names=helper_names, is_call=False)
        result = lifter.lift()
        if parsed.return_type == "V":
            return_type = ctype_for_descriptor("I")  # placeholder, unused
            raise DecompileError(
                f"void helper methods are not supported ({method.name})")
        return_type = ctype_for_descriptor(parsed.return_type) \
            if not parsed.return_type.startswith("[") else None
        if return_type is None:
            raise DecompileError(
                f"helper {method.name} may not return an array")
        func = CFunction(name=method.name, return_type=return_type,
                         params=params, body=result.body)
        recover_for_loops(func)
        return func

    # ------------------------------------------------------------------

    def _call_bindings(self, call_method: JMethod, cls: sast.ClassDef,
                       instance: JObject, layout: InterfaceLayout
                       ) -> dict[int, object]:
        input_type, _ = _io_types(cls)
        bindings: dict[int, object] = {
            0: ThisParam(cls.name, instance.fields),
            1: _input_bindings(input_type, layout),
        }
        return bindings

    def _lift_call_map(self, call_method: JMethod, cls: sast.ClassDef,
                       instance: JObject, layout: InterfaceLayout,
                       helper_names: dict, names: NameAllocator) -> CFunction:
        lifter = Lifter(
            call_method,
            slot_bindings=self._call_bindings(call_method, cls, instance,
                                              layout),
            out_leaves=layout.outputs,
            helper_names=helper_names,
            is_call=True,
            names=names,
            record_fields=getattr(self, "_record_field_names", {}))
        result = lifter.lift()
        body = result.body
        for action in result.output_actions:
            if action[0] == "rename":
                _, old, new = action
                remove_decl(body, old)
                rename_var(body, old, new)
        func = make_call_function("call", layout, body)
        recover_for_loops(func)
        return func

    def _lift_call_reduce(self, call_method: JMethod, cls: sast.ClassDef,
                          instance: JObject, layout: InterfaceLayout,
                          helper_names: dict,
                          names: NameAllocator) -> CFunction:
        parsed = call_method.parsed_descriptor
        if len(parsed.params) != 2:
            raise UnsupportedConstructError(
                "reduce kernels must define call(a: T, b: T): T")
        bindings: dict[int, object] = {0: ThisParam(cls.name,
                                                    instance.fields)}
        params: list[Param] = []
        slot = 1
        for pname, descriptor in zip(("a", "b"), parsed.params):
            ctype = ctype_for_descriptor(descriptor)
            bindings[slot] = ScalarParam(pname, ctype)
            params.append(Param(name=pname, ctype=ctype))
            slot += slot_width(descriptor)
        lifter = Lifter(call_method, slot_bindings=bindings,
                        helper_names=helper_names, is_call=False,
                        names=names)
        result = lifter.lift()
        func = CFunction(
            name="call",
            return_type=ctype_for_descriptor(parsed.return_type),
            params=params, body=result.body)
        recover_for_loops(func)
        return func


def compile_kernel(source: str, *, kernel_class: Optional[str] = None,
                   layout_config: Optional[LayoutConfig] = None,
                   pattern: str = "map",
                   batch_size: int = DEFAULT_BATCH_SIZE,
                   tracer=NULL_TRACER) -> CompiledKernel:
    """One-call S2FA frontend: Scala kernel source to an HLS-C kernel.

    ``tracer`` records one ``compile.kernel`` span with per-pass child
    spans (frontend, bake, interface, lift, label).
    """
    return KernelCompiler(
        source, kernel_class=kernel_class, layout_config=layout_config,
        pattern=pattern, batch_size=batch_size, tracer=tracer).compile()
