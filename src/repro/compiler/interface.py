"""Accelerator interface layout: flattening composite types to C buffers.

This reproduces the object-flattening half of the paper's Challenge 1 and
the data-layout contract of Challenge 3: a Scala kernel type like
``(String, String)`` becomes two flat ``char`` buffers with a fixed
per-task element count, and the same :class:`InterfaceLayout` drives

* the C function signature of the generated ``call``/``kernel`` (Code 3),
* the Blaze (de)serialization methods (Section 3.2, "data processing
  method generator"),
* the HLS bandwidth model (bytes per task on each port).

Because FPGA buffers are statically sized, every variable-length leaf
(arrays, strings) needs a fixed per-task capacity.  The paper fixes these
from the application configuration (e.g. 128-char reads in Code 3); here
they come from :class:`LayoutConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import UnsupportedConstructError
from ..hlsc.ast import CHAR, CType, DOUBLE, FLOAT, INT, LONG, SHORT
from ..scala import types as st


@dataclass(frozen=True)
class LayoutConfig:
    """Per-kernel capacities for variable-length leaves.

    ``lengths`` maps a leaf path (e.g. ``in._1`` or ``out``) to its fixed
    per-task element count.  ``default_string_length`` applies to string
    leaves without an explicit entry.
    """

    lengths: dict = field(default_factory=dict)
    default_string_length: int = 128

    def length_for(self, path: str, is_string: bool) -> Optional[int]:
        if path in self.lengths:
            return self.lengths[path]
        if is_string:
            return self.default_string_length
        return None


@dataclass
class Leaf:
    """One flattened buffer of the accelerator interface."""

    name: str          # C parameter name, e.g. "in_1"
    path: str          # source path, e.g. "in._2"
    ctype: CType       # element type
    elem_count: int    # elements *per task* (1 for scalar leaves)
    direction: str     # "in" | "out"
    is_scalar: bool    # True when the Scala leaf is a plain primitive

    @property
    def bytes_per_task(self) -> int:
        return self.elem_count * (self.ctype.width_bits // 8)


@dataclass
class InterfaceLayout:
    """Flattened input/output layout of one kernel.

    ``records`` maps record-class names to their ordered
    (field name, type) pairs so the serializer can decompose custom
    composite types the same way it decomposes tuples.
    """

    inputs: list[Leaf]
    outputs: list[Leaf]
    input_type: st.Type
    output_type: st.Type
    records: dict = field(default_factory=dict)

    @property
    def leaves(self) -> list[Leaf]:
        return self.inputs + self.outputs

    def leaf(self, name: str) -> Leaf:
        for leaf in self.leaves:
            if leaf.name == name:
                return leaf
        raise KeyError(f"no interface leaf named {name!r}")

    @property
    def bytes_in_per_task(self) -> int:
        return sum(leaf.bytes_per_task for leaf in self.inputs)

    @property
    def bytes_out_per_task(self) -> int:
        return sum(leaf.bytes_per_task for leaf in self.outputs)


_SCALAR_CTYPES = {
    "Int": INT, "Long": LONG, "Float": FLOAT, "Double": DOUBLE,
    "Char": CHAR, "Short": SHORT, "Boolean": INT,
}


def _scalar_ctype(tpe: st.Type) -> CType:
    if isinstance(tpe, st.Primitive) and tpe.name in _SCALAR_CTYPES:
        return _SCALAR_CTYPES[tpe.name]
    raise UnsupportedConstructError(
        f"type {tpe} has no C scalar mapping")


def _flatten(tpe: st.Type, path: str, prefix: str, direction: str,
             config: LayoutConfig, out: list[Leaf],
             records: Optional[dict] = None) -> None:
    records = records or {}
    index = len(out) + 1
    name = f"{prefix}_{index}"
    if isinstance(tpe, st.TupleType):
        for i, elem in enumerate(tpe.elems, start=1):
            _flatten(elem, f"{path}._{i}", prefix, direction, config, out,
                     records)
        return
    if isinstance(tpe, st.ClassType) and tpe.name in records:
        for field_name, field_type in records[tpe.name]:
            _flatten(field_type, f"{path}.{field_name}", prefix,
                     direction, config, out, records)
        return
    if isinstance(tpe, st.StringType):
        length = config.length_for(path, is_string=True)
        out.append(Leaf(name=name, path=path, ctype=CHAR,
                        elem_count=length, direction=direction,
                        is_scalar=False))
        return
    if isinstance(tpe, st.ArrayType):
        if not isinstance(tpe.elem, st.Primitive):
            raise UnsupportedConstructError(
                f"nested composite array {tpe} cannot be flattened")
        length = config.length_for(path, is_string=False)
        if length is None:
            raise UnsupportedConstructError(
                f"no fixed capacity configured for array leaf {path!r}; "
                f"add it to LayoutConfig.lengths")
        out.append(Leaf(name=name, path=path, ctype=_scalar_ctype(tpe.elem),
                        elem_count=length, direction=direction,
                        is_scalar=False))
        return
    if isinstance(tpe, (st.Primitive, st.ClassType)):
        out.append(Leaf(name=name, path=path, ctype=_scalar_ctype(tpe),
                        elem_count=1, direction=direction, is_scalar=True))
        return
    raise UnsupportedConstructError(f"cannot flatten type {tpe}")


def build_layout(input_type: st.Type, output_type: st.Type,
                 config: Optional[LayoutConfig] = None,
                 records: Optional[dict] = None) -> InterfaceLayout:
    """Flatten the kernel's Scala I/O types into buffer leaves."""
    config = config or LayoutConfig()
    records = records or {}
    inputs: list[Leaf] = []
    outputs: list[Leaf] = []
    _flatten(input_type, "in", "in", "in", config, inputs, records)
    _flatten(output_type, "out", "out", "out", config, outputs, records)
    return InterfaceLayout(inputs=inputs, outputs=outputs,
                           input_type=input_type, output_type=output_type,
                           records=records)
