"""Bytecode-to-C lifting via abstract stack interpretation.

This is the reproduction of S2FA's APARAPI-derived code generator
(Section 3.2): each JVM method is symbolically executed over a stack of C
expressions, control flow is re-structured (while/for/if/ternary), and
object-oriented constructs are rewritten:

* specialized tuple accessors (``in._1``) become references to flattened
  interface buffers,
* ``this``-field reads become baked-in constants (scalars) or ``static
  const`` lookup tables (arrays) — Blaze broadcasts become ROM,
* ``String.charAt``/``length`` become array indexing / a constant,
* ``new`` with constant size becomes a fixed-size local array.

The lifter only accepts the structured patterns our frontend (and scalac,
for the paper) emits; anything else raises :class:`DecompileError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import DecompileError
from ..hlsc.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    CFunction,
    CHAR,
    CType,
    DOUBLE,
    Expr,
    FLOAT,
    If,
    INT,
    IntLit,
    FloatLit,
    LONG,
    Param,
    Return,
    SHORT,
    Stmt,
    UnOp,
    Var,
    VarDecl,
    VOID,
    While,
)
from ..jvm.classfile import Instr, JMethod
from ..jvm.interpreter import JArray
from ..utils import NameAllocator

# ---------------------------------------------------------------------------
# Bindings: what a JVM local slot / object means in C
# ---------------------------------------------------------------------------


@dataclass
class ScalarParam:
    """A primitive kernel parameter passed by value."""

    name: str
    ctype: CType


@dataclass
class BufferParam:
    """A pointer parameter (flattened array/string leaf)."""

    name: str
    ctype: CType
    elem_count: Optional[int]


@dataclass
class CompositeParam:
    """A composite parameter: accessor -> leaf binding.

    Keys are 1-based indices for tuples (``_1`` accessors) or field
    names for record classes (``getfield`` access).
    """

    leaves: dict  # int (tuple index) or str (record field) -> binding


@dataclass
class ThisParam:
    """The kernel object; fields resolve to baked constants."""

    class_name: str
    field_values: dict[str, object]


@dataclass
class _TupleValue:
    """A tuple under construction / constructed (``new``+``<init>``)."""

    class_name: str
    elems: Optional[list[Expr]] = None


@dataclass
class _NewArrayValue:
    """Result of ``newarray`` before it is bound to a local."""

    ctype: CType
    size: int


@dataclass
class _CmpResult:
    """Result of fcmpl/fcmpg/dcmp/lcmp awaiting its ifXX consumer."""

    lhs: Expr
    rhs: Expr


_DESC_TO_CTYPE = {
    "I": INT, "F": FLOAT, "D": DOUBLE, "J": LONG,
    "C": CHAR, "S": SHORT, "B": CHAR, "Z": INT,
}


def ctype_for_descriptor(descriptor: str) -> CType:
    try:
        return _DESC_TO_CTYPE[descriptor]
    except KeyError:
        raise DecompileError(
            f"no C type for descriptor {descriptor!r}") from None


_NEGATE = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=",
           ">=": "<"}

_CMP_OF_IF = {"eq": "==", "ne": "!=", "lt": "<", "ge": ">=",
              "gt": ">", "le": "<="}


def negate(expr: Expr) -> Expr:
    """Logical negation, simplified for comparisons."""
    if isinstance(expr, BinOp) and expr.op in _NEGATE:
        return BinOp(_NEGATE[expr.op], expr.lhs, expr.rhs)
    if isinstance(expr, UnOp) and expr.op == "!":
        return expr.operand
    return UnOp("!", expr)


_MATH_TO_C = {
    "exp": "exp", "log": "log", "sqrt": "sqrt", "pow": "pow",
    "floor": "floor", "ceil": "ceil",
    "abs": "fabs", "min": "fmin", "max": "fmax",
}

_INT_MATH_TO_C = {"abs": "abs", "min": "min", "max": "max"}


@dataclass
class LiftResult:
    """Outcome of lifting one method."""

    body: Block
    #: pending output mappings discovered at return sites:
    #: list of ("rename", local_name, out_name) or ("store", out_name, expr)
    output_actions: list[tuple] = field(default_factory=list)
    return_expr: Optional[Expr] = None


class Lifter:
    """Lifts one JVM method into a C statement block."""

    def __init__(self, method: JMethod, *,
                 slot_bindings: dict[int, object],
                 out_leaves: Optional[list] = None,
                 helper_names: Optional[dict[tuple[str, str], str]] = None,
                 is_call: bool = False,
                 names: Optional[NameAllocator] = None,
                 record_fields: Optional[dict[str, list[str]]] = None):
        self.method = method
        self.code = method.code
        self.slot_bindings = dict(slot_bindings)
        self.out_leaves = out_leaves or []
        self.helper_names = helper_names or {}
        self.is_call = is_call
        #: record class name -> ordered field names (for getfield on
        #: locally constructed record values)
        self.record_fields = record_fields or {}
        self.names = names or NameAllocator()
        #: slot -> (C var name, ctype, dims) once declared
        self.slot_vars: dict[int, tuple[str, CType, tuple[int, ...]]] = {}
        self.const_tables: list[VarDecl] = []
        self.output_actions: list[tuple] = []
        self.return_expr: Optional[Expr] = None
        self._offset_to_index = {
            ins.offset: i for i, ins in enumerate(self.code)}

    # ------------------------------------------------------------------

    def lift(self) -> LiftResult:
        stmts: list[Stmt] = []
        stack: list = []
        self._lift_range(0, len(self.code), stack, stmts)
        body = Block(list(self.const_tables) + stmts)
        return LiftResult(body=body, output_actions=self.output_actions,
                          return_expr=self.return_expr)

    # ------------------------------------------------------------------
    # Range lifting
    # ------------------------------------------------------------------

    def _index_of(self, offset: int) -> int:
        try:
            return self._offset_to_index[offset]
        except KeyError:
            raise DecompileError(
                f"branch to offset {offset} that is not an instruction "
                f"boundary") from None

    def _back_edge_from(self, header: int, hi: int) -> Optional[int]:
        """Index of a ``goto`` in (header, hi) jumping back to ``header``."""
        header_offset = self.code[header].offset
        for j in range(hi - 1, header, -1):
            instr = self.code[j]
            if instr.mnemonic == "goto" and instr.operands[0] == header_offset:
                return j
        return None

    def _lift_range(self, lo: int, hi: int, stack: list,
                    stmts: list[Stmt],
                    conjunct_target: Optional[int] = None,
                    conjuncts: Optional[list] = None) -> None:
        """Lift instructions [lo, hi) into ``stmts``.

        When ``conjunct_target`` is given, conditional branches to that
        offset encountered *before any statement* are short-circuit
        conjuncts of the enclosing condition (``a && b`` chains in loop
        and ``if`` headers); their negations are appended to
        ``conjuncts`` instead of starting a nested ``if``.
        """
        i = lo
        while i < hi:
            instr = self.code[i]
            m = instr.mnemonic

            back = self._back_edge_from(i, hi)
            if back is not None:
                i = self._lift_loop(i, back, stack, stmts)
                continue

            if m.startswith("if"):
                consumed = self._try_diamond(i, stack)
                if consumed is not None:
                    i = consumed
                    continue
                if conjunct_target is not None and not stmts \
                        and instr.operands[0] == conjunct_target:
                    taken = self._branch_condition(instr, stack)
                    conjuncts.append(negate(taken))
                    i += 1
                    continue
                i = self._lift_if(i, hi, stack, stmts)
                continue

            if m == "goto":
                raise DecompileError(
                    f"unstructured goto at offset {instr.offset}")

            if m in ("ireturn", "freturn", "dreturn", "lreturn",
                     "areturn", "return"):
                self._lift_return(m, stack, stmts)
                i += 1
                continue

            self._step(instr, stack, stmts)
            i += 1

    # -- loops -----------------------------------------------------------

    def _lift_loop(self, header: int, back: int, stack: list,
                   stmts: list[Stmt]) -> int:
        """Lift the loop spanning [header, back]; returns next index.

        The loop header's exit test (possibly an ``&&`` chain of several
        conditional branches to the loop exit) is folded into the ``while``
        condition; everything after the first statement is the body.
        """
        exit_offset = (self.code[back + 1].offset if back + 1 < len(self.code)
                       else self.code[back].offset + 3)
        conjuncts: list[Expr] = []
        body_stmts: list[Stmt] = []
        body_stack: list = list(stack)
        self._lift_range(header, back, body_stack, body_stmts,
                         conjunct_target=exit_offset, conjuncts=conjuncts)
        if not conjuncts:
            raise DecompileError(
                f"loop at offset {self.code[header].offset} has no exit "
                f"condition (infinite loops are unsupported)")
        if len(body_stack) != len(stack):
            raise DecompileError("loop body leaks operand-stack values")
        cond_expr = conjuncts[0]
        for conjunct in conjuncts[1:]:
            cond_expr = BinOp("&&", cond_expr, conjunct)
        stmts.append(While(cond=cond_expr, body=Block(body_stmts)))
        return back + 1

    # -- conditionals ------------------------------------------------------

    def _try_diamond(self, i: int, stack: list) -> Optional[int]:
        """Recognize the boolean-materialization diamond:

        ``ifXX Lf; iconst_1; goto Le; Lf: iconst_0; Le:``

        Pushes the (un-negated) condition value and returns the index just
        past the diamond, or None when the shape does not match.
        """
        if i + 3 >= len(self.code):
            return None
        b0, b1, b2, b3 = self.code[i:i + 4]
        if b1.mnemonic != "iconst_1" or b2.mnemonic != "goto" \
                or b3.mnemonic != "iconst_0":
            return None
        if b0.operands[0] != b3.offset:
            return None
        end_offset = b3.offset + 1
        if b2.operands[0] != end_offset:
            return None
        taken = self._branch_condition(b0, stack)
        stack.append(negate(taken))
        return i + 4

    def _lift_if(self, i: int, hi: int, stack: list,
                 stmts: list[Stmt]) -> int:
        instr = self.code[i]
        target = instr.operands[0]
        taken = self._branch_condition(instr, stack)
        conjuncts = [negate(taken)]  # conditions under which *then* runs

        then_end = self._index_of(target)
        if then_end > hi:
            raise DecompileError(
                f"branch at offset {instr.offset} escapes the current "
                f"structured region")
        # Trailing goto in the then-range marks an else-branch.
        else_start = then_end
        merge = then_end
        has_else = False
        if then_end - 1 > i and self.code[then_end - 1].mnemonic == "goto":
            goto = self.code[then_end - 1]
            goto_target = goto.operands[0]
            if goto_target > goto.offset:  # forward: join point
                merge = self._index_of(goto_target)
                has_else = merge > else_start
                if not has_else:
                    merge = then_end

        then_stmts: list[Stmt] = []
        then_stack = list(stack)
        then_last = then_end - 1 if has_else else then_end
        # Further branches to the same target before any then-statement
        # are && conjuncts of this if's condition.
        self._lift_range(i + 1, then_last, then_stack, then_stmts,
                         conjunct_target=target, conjuncts=conjuncts)
        cond = conjuncts[0]
        for conjunct in conjuncts[1:]:
            cond = BinOp("&&", cond, conjunct)

        if not has_else:
            if len(then_stack) != len(stack):
                raise DecompileError(
                    "if-without-else leaves a value on the stack")
            stmts.append(If(cond=cond, then=Block(then_stmts)))
            return merge

        else_stmts: list[Stmt] = []
        else_stack = list(stack)
        self._lift_range(else_start, merge, else_stack, else_stmts)

        if len(then_stack) == len(stack) + 1 and \
                len(else_stack) == len(stack) + 1:
            # Value context (ternary / if-expression).
            then_val = then_stack[-1]
            else_val = else_stack[-1]
            from ..hlsc.ast import Ternary
            if not then_stmts and not else_stmts:
                stack.append(Ternary(cond=cond, then=then_val,
                                     other=else_val))
                return merge
            temp = self.names.fresh("_t")
            ctype = self._guess_ctype(then_val)
            stmts.append(VarDecl(name=temp, ctype=ctype))
            then_stmts.append(Assign(Var(temp), then_val))
            else_stmts.append(Assign(Var(temp), else_val))
            stmts.append(If(cond=cond, then=Block(then_stmts),
                            orelse=Block(else_stmts)))
            stack.append(Var(temp))
            return merge

        if len(then_stack) != len(stack) or len(else_stack) != len(stack):
            raise DecompileError("unbalanced stack across if/else branches")
        stmts.append(If(cond=cond, then=Block(then_stmts),
                        orelse=Block(else_stmts)))
        return merge

    def _branch_condition(self, instr: Instr, stack: list) -> Expr:
        """Expression that is true exactly when the branch is taken."""
        m = instr.mnemonic
        if m.startswith("if_icmp"):
            rhs = stack.pop()
            lhs = stack.pop()
            return BinOp(_CMP_OF_IF[m[7:]], lhs, rhs)
        if m in ("ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle"):
            value = stack.pop()
            op = _CMP_OF_IF[m[2:]]
            if isinstance(value, _CmpResult):
                return BinOp(op, value.lhs, value.rhs)
            if op == "!=":
                return value if _is_boolish(value) else \
                    BinOp("!=", value, IntLit(0))
            if op == "==":
                return negate(value) if _is_boolish(value) else \
                    BinOp("==", value, IntLit(0))
            return BinOp(op, value, IntLit(0))
        raise DecompileError(f"unsupported branch opcode {m}")

    # -- returns -------------------------------------------------------------

    def _lift_return(self, m: str, stack: list, stmts: list[Stmt]) -> None:
        if m == "return":
            if not self.is_call:
                stmts.append(Return())
            return
        value = stack.pop()
        if not self.is_call:
            if isinstance(value, (_TupleValue, _NewArrayValue, BufferParam,
                                  CompositeParam)):
                raise DecompileError(
                    "helper functions may only return scalars")
            self.return_expr = value
            stmts.append(Return(value))
            return
        # Top-level call(): map the returned value onto output leaves,
        # flattening nested tuples (and aliased input subtrees) in the
        # same depth-first order the interface layout uses.
        elems: list = []
        self._flatten_returned(value, elems)
        if len(elems) != len(self.out_leaves):
            raise DecompileError(
                f"kernel returns {len(elems)} values but the interface has "
                f"{len(self.out_leaves)} output leaves")
        for elem, leaf in zip(elems, self.out_leaves):
            if isinstance(elem, Var) and self._is_local_array(elem.name):
                self.output_actions.append(("rename", elem.name, leaf.name))
            elif isinstance(elem, Expr):
                stmts.append(
                    Assign(ArrayRef(Var(leaf.name), IntLit(0)), elem))
            else:
                raise DecompileError(
                    f"cannot map returned value {elem!r} to output leaf "
                    f"{leaf.name}")

    def _flatten_returned(self, value, out: list) -> None:
        if isinstance(value, _TupleValue):
            if value.elems is None:
                raise DecompileError("returned tuple was never constructed")
            for elem in value.elems:
                self._flatten_returned(elem, out)
            return
        if isinstance(value, CompositeParam):
            # Returning (part of) the input: expand its leaf bindings.
            # The dict preserves declaration order (tuple indices 1..n or
            # record fields), which matches the layout's flattening.
            for leaf in value.leaves.values():
                self._flatten_returned(leaf, out)
            return
        if isinstance(value, ScalarParam):
            out.append(Var(value.name))
            return
        out.append(value)

    def _is_local_array(self, name: str) -> bool:
        return any(v[0] == name and v[2] for v in self.slot_vars.values())

    # ------------------------------------------------------------------
    # Straight-line symbolic execution
    # ------------------------------------------------------------------

    def _step(self, instr: Instr, stack: list, stmts: list[Stmt]) -> None:
        m = instr.mnemonic
        ops = instr.operands

        # Constants.
        if m.startswith("iconst_"):
            stack.append(IntLit(-1 if m.endswith("m1") else int(m[-1])))
            return
        if m in ("bipush", "sipush"):
            stack.append(IntLit(ops[0]))
            return
        if m == "ldc":
            value = ops[0]
            if isinstance(value, int):
                stack.append(IntLit(value))
            elif isinstance(value, float):
                stack.append(FloatLit(value, FLOAT))
            else:
                raise DecompileError(
                    f"string constants are not supported in kernels "
                    f"(ldc {value!r})")
            return
        if m == "ldc2_w":
            value = ops[0]
            if isinstance(value, float):
                stack.append(FloatLit(value, DOUBLE))
            else:
                stack.append(IntLit(value, LONG))
            return
        if m.startswith("fconst_"):
            stack.append(FloatLit(float(m[-1]), FLOAT))
            return
        if m.startswith("dconst_"):
            stack.append(FloatLit(float(m[-1]), DOUBLE))
            return
        if m.startswith("lconst_"):
            stack.append(IntLit(int(m[-1]), LONG))
            return

        # Local loads/stores.
        if m in ("iload", "fload", "dload", "lload", "aload"):
            stack.append(self._load_slot(ops[0], m))
            return
        if m in ("istore", "fstore", "dstore", "lstore", "astore"):
            self._store_slot(ops[0], m, stack.pop(), stmts)
            return
        if m == "iinc":
            name = self._slot_var_name(ops[0])
            delta = ops[1]
            rhs = BinOp("+", Var(name), IntLit(delta)) if delta >= 0 \
                else BinOp("-", Var(name), IntLit(-delta))
            stmts.append(Assign(Var(name), rhs))
            return

        # Array access.
        if m in ("iaload", "faload", "daload", "laload", "caload",
                 "saload", "baload"):
            index = stack.pop()
            array = stack.pop()
            stack.append(ArrayRef(self._array_expr(array), index))
            return
        if m in ("iastore", "fastore", "dastore", "lastore", "castore",
                 "sastore", "bastore"):
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            stmts.append(
                Assign(ArrayRef(self._array_expr(array), index), value))
            return
        if m == "arraylength":
            target = stack.pop()
            stack.append(IntLit(self._array_length(target)))
            return
        if m == "newarray":
            size = stack.pop()
            if not isinstance(size, IntLit):
                raise DecompileError(
                    "dynamic array allocation reached the lifter; the "
                    "frontend should have rejected it")
            from ..jvm.opcodes import ATYPE_NAMES
            elem = {"int": INT, "float": FLOAT, "double": DOUBLE,
                    "long": LONG, "char": CHAR, "short": SHORT,
                    "byte": CHAR, "boolean": INT}[ATYPE_NAMES[ops[0]]]
            stack.append(_NewArrayValue(ctype=elem, size=size.value))
            return
        if m == "anewarray":
            raise DecompileError(
                "arrays of references cannot be mapped to FPGA buffers")

        # Arithmetic.
        if m[1:] in ("add", "sub", "mul", "div", "rem") and \
                m[0] in "ilfd":
            rhs = stack.pop()
            lhs = stack.pop()
            op = {"add": "+", "sub": "-", "mul": "*", "div": "/",
                  "rem": "%"}[m[1:]]
            stack.append(BinOp(op, lhs, rhs))
            return
        if m in ("ineg", "fneg", "dneg", "lneg"):
            stack.append(UnOp("-", stack.pop()))
            return
        if m in ("ishl", "ishr", "iushr", "lshl", "lshr"):
            rhs = stack.pop()
            lhs = stack.pop()
            op = {"shl": "<<", "shr": ">>", "ushr": ">>"}[m.lstrip("il")]
            stack.append(BinOp(op, lhs, rhs))
            return
        if m in ("iand", "land", "ior", "lor", "ixor", "lxor"):
            rhs = stack.pop()
            lhs = stack.pop()
            op = {"and": "&", "or": "|", "xor": "^"}[m[1:]]
            if op in ("&", "|") and _is_boolish(lhs) and _is_boolish(rhs):
                op = "&&" if op == "&" else "||"
            if op == "^" and isinstance(rhs, IntLit) and rhs.value == 1 \
                    and _is_boolish(lhs):
                stack.append(negate(lhs))  # `b ^ 1` is boolean negation
                return
            stack.append(BinOp(op, lhs, rhs))
            return

        # Comparisons producing -1/0/1 (consumed by the following ifXX).
        if m in ("fcmpl", "fcmpg", "dcmpl", "dcmpg", "lcmp"):
            rhs = stack.pop()
            lhs = stack.pop()
            stack.append(_CmpResult(lhs, rhs))
            return

        # Conversions.
        if m in _CAST_TABLE:
            target = _CAST_TABLE[m]
            value = stack.pop()
            stack.append(Cast(target, value) if target is not None else value)
            return

        # Stack shuffles (only the tuple-construction dup is expected).
        if m == "dup":
            stack.append(stack[-1])
            return
        if m == "pop":
            top = stack.pop()
            if isinstance(top, Call):
                from ..hlsc.ast import ExprStmt
                stmts.append(ExprStmt(top))
            return
        if m == "pop2":
            stack.pop()
            return

        # Objects.
        if m == "new":
            stack.append(_TupleValue(class_name=ops[0]))
            return
        if m in ("invokevirtual", "invokespecial", "invokestatic"):
            self._lift_invoke(m, ops, stack, stmts)
            return
        if m == "getfield":
            owner, fname, descriptor = ops
            receiver = stack.pop()
            if isinstance(receiver, ThisParam):
                stack.append(
                    self._baked_field(receiver, fname, descriptor))
                return
            if isinstance(receiver, CompositeParam):
                leaf = receiver.leaves.get(fname)
                if leaf is None:
                    raise DecompileError(
                        f"record field {fname!r} has no flattened leaf")
                stack.append(Var(leaf.name)
                             if isinstance(leaf, ScalarParam) else leaf)
                return
            if isinstance(receiver, _TupleValue):
                fields = self.record_fields.get(receiver.class_name)
                if fields is None or receiver.elems is None:
                    raise DecompileError(
                        f"getfield {fname} on unconstructed object")
                stack.append(receiver.elems[fields.index(fname)])
                return
            raise DecompileError(
                f"getfield {fname} on unsupported receiver {receiver!r}")
        if m == "putfield":
            raise DecompileError(
                "kernels may not mutate object fields on the FPGA")

        raise DecompileError(
            f"cannot lift opcode {m} at offset {instr.offset}")

    # -- slots ----------------------------------------------------------

    def _load_slot(self, slot: int, mnemonic: str):
        if slot in self.slot_bindings:
            binding = self.slot_bindings[slot]
            if isinstance(binding, ScalarParam):
                return Var(binding.name)
            if isinstance(binding, BufferParam):
                return binding
            return binding  # CompositeParam / ThisParam
        if slot in self.slot_vars:
            return Var(self.slot_vars[slot][0])
        raise DecompileError(
            f"load from uninitialized local slot {slot}")

    def _slot_var_name(self, slot: int) -> str:
        if slot in self.slot_vars:
            return self.slot_vars[slot][0]
        if slot in self.slot_bindings:
            binding = self.slot_bindings[slot]
            if isinstance(binding, ScalarParam):
                return binding.name
        raise DecompileError(f"iinc on unknown slot {slot}")

    def _store_slot(self, slot: int, mnemonic: str, value,
                    stmts: list[Stmt]) -> None:
        if slot in self.slot_bindings:
            raise DecompileError(
                f"store to parameter slot {slot} is not supported")
        if slot not in self.slot_vars:
            # First assignment: emit a declaration.
            if isinstance(value, _NewArrayValue):
                name = self.names.fresh("arr")
                self.slot_vars[slot] = (name, value.ctype, (value.size,))
                stmts.append(VarDecl(name=name, ctype=value.ctype,
                                     dims=(value.size,)))
                return
            if isinstance(value, (_TupleValue, CompositeParam, ThisParam,
                                  BufferParam)):
                # Aliasing a composite: keep the binding, no C statement.
                self.slot_bindings[slot] = value
                return
            ctype = {"istore": INT, "fstore": FLOAT, "dstore": DOUBLE,
                     "lstore": LONG}.get(mnemonic, INT)
            name = self.names.fresh("v")
            self.slot_vars[slot] = (name, ctype, ())
            stmts.append(VarDecl(name=name, ctype=ctype, init=value))
            return
        name, ctype, dims = self.slot_vars[slot]
        if dims:
            raise DecompileError(f"reassignment of array variable {name}")
        stmts.append(Assign(Var(name), value))

    # -- arrays / composites ---------------------------------------------

    def _array_expr(self, value) -> Expr:
        if isinstance(value, BufferParam):
            return Var(value.name)
        if isinstance(value, Var):
            return value
        if isinstance(value, Expr):
            return value
        raise DecompileError(f"expected an array value, got {value!r}")

    def _array_length(self, value) -> int:
        if isinstance(value, BufferParam):
            if value.elem_count is None:
                raise DecompileError(
                    f"length of buffer {value.name} is not statically known")
            return value.elem_count
        if isinstance(value, Var):
            for name, ctype, dims in self.slot_vars.values():
                if name == value.name and dims:
                    return dims[0]
            for decl in self.const_tables:
                if decl.name == value.name:
                    return decl.dims[0]
        raise DecompileError(f"cannot determine length of {value!r}")

    # -- invokes ------------------------------------------------------------

    def _lift_invoke(self, m: str, ops: tuple, stack: list,
                     stmts: list[Stmt]) -> None:
        owner, name, descriptor = ops
        from ..jvm.descriptors import parse_method_descriptor
        parsed = parse_method_descriptor(descriptor)
        args = [stack.pop() for _ in parsed.params][::-1]
        receiver = stack.pop() if m != "invokestatic" else None

        # Tuple construction: new C; dup; args; invokespecial C.<init>.
        if m == "invokespecial" and name == "<init>":
            if isinstance(receiver, _TupleValue):
                receiver.elems = list(args)
                # The dup'ed reference already on the stack is the same
                # object, so nothing to push.
                return
            raise DecompileError(f"constructor call on {receiver!r}")

        # Tuple accessors: _1(), _2(), ...
        if m == "invokevirtual" and name.startswith("_") \
                and name[1:].isdigit():
            index = int(name[1:])
            if isinstance(receiver, CompositeParam):
                leaf = receiver.leaves.get(index)
                if leaf is None:
                    raise DecompileError(
                        f"tuple accessor _{index} has no flattened leaf")
                stack.append(Var(leaf.name)
                             if isinstance(leaf, ScalarParam) else leaf)
                return
            if isinstance(receiver, _TupleValue) and receiver.elems:
                stack.append(receiver.elems[index - 1])
                return
            raise DecompileError(
                f"tuple accessor on unsupported receiver {receiver!r}")

        # String methods on buffer params.
        if owner == "java/lang/String":
            if not isinstance(receiver, BufferParam):
                raise DecompileError(
                    "String operations are only supported on interface "
                    "buffers")
            if name == "charAt":
                stack.append(ArrayRef(Var(receiver.name), args[0]))
                return
            if name == "length":
                stack.append(IntLit(receiver.elem_count))
                return
            raise DecompileError(f"unsupported String method {name}")

        # Math intrinsics.
        if owner == "java/lang/Math":
            self._lift_math(name, descriptor, args, stack)
            return

        # Helper functions: same-class methods and module-level functions
        # become kernel-local C functions (S2FA inlines/extracts them).
        helper = self.helper_names.get((owner, name))
        if helper is not None:
            stack.append(Call(helper, [self._as_expr(a) for a in args]))
            if parsed.return_type == "V":
                from ..hlsc.ast import ExprStmt
                stmts.append(ExprStmt(stack.pop()))
            return

        raise DecompileError(
            f"unsupported invocation {owner}.{name}{descriptor} "
            f"(library calls are not supported, Section 3.3)")

    def _as_expr(self, value) -> Expr:
        if isinstance(value, BufferParam):
            return Var(value.name)
        if isinstance(value, Expr):
            return value
        raise DecompileError(
            f"cannot pass {value!r} to a helper function")

    def _baked_field(self, receiver: ThisParam, fname: str,
                     descriptor: str):
        if fname not in receiver.field_values:
            raise DecompileError(
                f"field {fname} of {receiver.class_name} has no baked "
                f"value; was the kernel instance constructed?")
        value = receiver.field_values[fname]
        if isinstance(value, JArray):
            for decl in self.const_tables:
                if decl.name == fname:
                    return Var(fname)
            elem = ctype_for_descriptor(value.elem)
            self.const_tables.append(VarDecl(
                name=fname, ctype=elem, dims=(len(value.values),),
                init_values=tuple(value.values),
                qualifiers=("static", "const")))
            return Var(fname)
        if isinstance(value, bool):
            return IntLit(int(value))
        if isinstance(value, int):
            return IntLit(value, ctype_for_descriptor(descriptor)
                          if descriptor in ("I", "J", "C", "S")
                          else INT)
        if isinstance(value, float):
            return FloatLit(value, FLOAT if descriptor == "F" else DOUBLE)
        raise DecompileError(
            f"field {fname} value {value!r} cannot be baked into C")

    def _lift_math(self, name: str, descriptor: str, args: list,
                   stack: list) -> None:
        if descriptor.startswith("(I") or descriptor.startswith("(II"):
            cname = _INT_MATH_TO_C.get(name)
        else:
            cname = _MATH_TO_C.get(name)
        if cname is None:
            raise DecompileError(f"unsupported Math.{name}")
        if descriptor.endswith(")F"):
            cname = {"fabs": "fabsf", "fmin": "fminf",
                     "fmax": "fmaxf"}.get(cname, cname)
        stack.append(Call(cname, list(args)))

    def _guess_ctype(self, expr: Expr) -> CType:
        if isinstance(expr, FloatLit):
            return expr.ctype
        if isinstance(expr, Cast):
            return expr.ctype
        if isinstance(expr, IntLit):
            return expr.ctype
        return INT


def _is_boolish(expr) -> bool:
    return isinstance(expr, BinOp) and expr.op in (
        "==", "!=", "<", "<=", ">", ">=", "&&", "||") \
        or isinstance(expr, UnOp) and expr.op == "!"


_CAST_TABLE: dict[str, Optional[CType]] = {
    "i2f": FLOAT, "i2d": DOUBLE, "i2l": LONG,
    "f2i": INT, "f2d": DOUBLE, "f2l": LONG,
    "d2i": INT, "d2f": FLOAT, "d2l": LONG,
    "l2i": INT, "l2f": FLOAT, "l2d": DOUBLE,
    "i2c": CHAR, "i2s": SHORT, "i2b": CHAR,
}
