"""Post-lift cleanup passes on the generated C AST.

* :func:`rename_var` / :func:`remove_decl` implement the paper's
  "accesses of local variables out1, out2 are replaced by the function
  arguments" rewrite.
* :func:`recover_for_loops` turns the lifter's ``while`` shapes back into
  canonical counted ``for`` loops (with hoisted bound temporaries inlined),
  which is what the design-space analysis needs for trip counts.
"""

from __future__ import annotations

from typing import Optional

from ..hlsc.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    CFunction,
    Expr,
    ExprStmt,
    For,
    If,
    IntLit,
    Return,
    Stmt,
    Ternary,
    UnOp,
    Var,
    VarDecl,
    While,
)


def _map_expr(expr: Expr, fn) -> Expr:
    """Rebuild an expression bottom-up through ``fn``."""
    if isinstance(expr, ArrayRef):
        expr = ArrayRef(_map_expr(expr.array, fn), _map_expr(expr.index, fn))
    elif isinstance(expr, BinOp):
        expr = BinOp(expr.op, _map_expr(expr.lhs, fn), _map_expr(expr.rhs, fn))
    elif isinstance(expr, UnOp):
        expr = UnOp(expr.op, _map_expr(expr.operand, fn))
    elif isinstance(expr, Call):
        expr = Call(expr.name, [_map_expr(a, fn) for a in expr.args])
    elif isinstance(expr, Cast):
        expr = Cast(expr.ctype, _map_expr(expr.expr, fn))
    elif isinstance(expr, Ternary):
        expr = Ternary(_map_expr(expr.cond, fn), _map_expr(expr.then, fn),
                       _map_expr(expr.other, fn))
    return fn(expr)


def map_exprs_in_block(block: Block, fn) -> None:
    """Apply ``fn`` bottom-up to every expression in a block, in place."""
    for stmt in block.stmts:
        _map_stmt(stmt, fn)


def _map_stmt(stmt: Stmt, fn) -> None:
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            stmt.init = _map_expr(stmt.init, fn)
    elif isinstance(stmt, Assign):
        stmt.lhs = _map_expr(stmt.lhs, fn)
        stmt.rhs = _map_expr(stmt.rhs, fn)
    elif isinstance(stmt, ExprStmt):
        stmt.expr = _map_expr(stmt.expr, fn)
    elif isinstance(stmt, If):
        stmt.cond = _map_expr(stmt.cond, fn)
        map_exprs_in_block(stmt.then, fn)
        if stmt.orelse is not None:
            map_exprs_in_block(stmt.orelse, fn)
    elif isinstance(stmt, (For,)):
        stmt.start = _map_expr(stmt.start, fn)
        stmt.bound = _map_expr(stmt.bound, fn)
        map_exprs_in_block(stmt.body, fn)
    elif isinstance(stmt, While):
        stmt.cond = _map_expr(stmt.cond, fn)
        map_exprs_in_block(stmt.body, fn)
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            stmt.value = _map_expr(stmt.value, fn)


def rename_var(block: Block, old: str, new: str) -> None:
    """Rename every reference to variable ``old`` (decls included)."""

    def fn(expr: Expr) -> Expr:
        if isinstance(expr, Var) and expr.name == old:
            return Var(new)
        return expr

    map_exprs_in_block(block, fn)
    for stmt in _walk_stmts(block):
        if isinstance(stmt, VarDecl) and stmt.name == old:
            stmt.name = new
        if isinstance(stmt, (For, While)) and getattr(stmt, "var", None) == old:
            stmt.var = new


def remove_decl(block: Block, name: str) -> bool:
    """Remove the declaration of ``name`` (searching nested blocks)."""
    for i, stmt in enumerate(block.stmts):
        if isinstance(stmt, VarDecl) and stmt.name == name:
            del block.stmts[i]
            return True
        for child in _child_blocks(stmt):
            if remove_decl(child, name):
                return True
    return False


def _child_blocks(stmt: Stmt) -> list[Block]:
    if isinstance(stmt, If):
        return [stmt.then] + ([stmt.orelse] if stmt.orelse else [])
    if isinstance(stmt, (For, While)):
        return [stmt.body]
    return []


def _walk_stmts(block: Block):
    for stmt in block.stmts:
        yield stmt
        for child in _child_blocks(stmt):
            yield from _walk_stmts(child)


def count_var_uses(block: Block, name: str) -> int:
    """Number of ``Var`` references to ``name`` in the block."""
    count = 0

    def fn(expr: Expr) -> Expr:
        nonlocal count
        if isinstance(expr, Var) and expr.name == name:
            count += 1
        return expr

    map_exprs_in_block(block, fn)
    return count


# ---------------------------------------------------------------------------
# For-loop recovery
# ---------------------------------------------------------------------------


def _increment_step(body: Block, var: str) -> Optional[int]:
    """If the loop body ends with ``var = var + c``, return c."""
    if not body.stmts:
        return None
    last = body.stmts[-1]
    if not (isinstance(last, Assign) and isinstance(last.lhs, Var)
            and last.lhs.name == var):
        return None
    rhs = last.rhs
    if isinstance(rhs, BinOp) and isinstance(rhs.lhs, Var) \
            and rhs.lhs.name == var and isinstance(rhs.rhs, IntLit):
        if rhs.op == "+" and rhs.rhs.value > 0:
            return rhs.rhs.value
        if rhs.op == "-" and rhs.rhs.value < 0:
            return -rhs.rhs.value
    return None


def _var_assigned_in(body: Block, var: str, skip_last: bool) -> bool:
    stmts = body.stmts[:-1] if skip_last else body.stmts
    for stmt in stmts:
        if isinstance(stmt, Assign) and isinstance(stmt.lhs, Var) \
                and stmt.lhs.name == var:
            return True
        for child in _child_blocks(stmt):
            if _var_assigned_in(child, var, skip_last=False):
                return True
    return False


def recover_for_loops(func: CFunction) -> None:
    """Rewrite induction ``while`` loops into canonical ``for`` loops."""
    _recover_in_block(func.body)


def _recover_in_block(block: Block) -> None:
    i = 0
    while i < len(block.stmts):
        stmt = block.stmts[i]
        for child in _child_blocks(stmt):
            _recover_in_block(child)
        if isinstance(stmt, While):
            replacement = _try_recover(block, i, stmt)
            if replacement is not None:
                # _try_recover may have removed decls before the loop, so
                # re-locate the while by identity before replacing it.
                i = block.stmts.index(stmt)
                block.stmts[i] = replacement
                _recover_in_block(replacement.body)
        i += 1


def _try_recover(block: Block, index: int, loop: While) -> Optional[For]:
    cond = loop.cond
    if not (isinstance(cond, BinOp) and cond.op in ("<", "<=")
            and isinstance(cond.lhs, Var)):
        return None
    var = cond.lhs.name
    step = _increment_step(loop.body, var)
    if step is None:
        return None
    if _var_assigned_in(loop.body, var, skip_last=True):
        return None
    # The induction variable must be declared immediately before the loop
    # (possibly with a hoisted bound temp in between).
    decl_index = None
    for j in range(index - 1, -1, -1):
        stmt = block.stmts[j]
        if isinstance(stmt, VarDecl) and stmt.name == var:
            decl_index = j
            break
        if not isinstance(stmt, VarDecl):
            break
    if decl_index is None:
        return None
    decl = block.stmts[decl_index]
    if decl.init is None or decl.is_array:
        return None
    start = decl.init

    bound = cond.rhs
    if cond.op == "<=":
        bound = BinOp("+", bound, IntLit(1)) \
            if not isinstance(bound, IntLit) else IntLit(bound.value + 1)

    body = Block(loop.body.stmts[:-1])  # drop the increment

    # The variable must not be used after the loop (scalac's loop counters
    # never are); otherwise keep the while form.
    after = Block(block.stmts[index + 1:])
    if count_var_uses(after, var) > 0:
        return None

    # Inline a hoisted bound temp: `int t = expr; for (.. i < t ..)`.
    # Inclusive ranges arrive as `t + 1`, so peel a constant addend first.
    addend = 0
    bound_var = bound
    if isinstance(bound, BinOp) and bound.op == "+" \
            and isinstance(bound.lhs, Var) and isinstance(bound.rhs, IntLit):
        bound_var = bound.lhs
        addend = bound.rhs.value
    if isinstance(bound_var, Var):
        for j in range(index - 1, -1, -1):
            stmt = block.stmts[j]
            if isinstance(stmt, VarDecl) and stmt.name == bound_var.name \
                    and stmt.init is not None and not stmt.is_array:
                uses_elsewhere = (
                    count_var_uses(Block([loop]), bound_var.name)
                    + count_var_uses(after, bound_var.name))
                if uses_elsewhere == 1:
                    inlined = stmt.init
                    if addend:
                        if isinstance(inlined, IntLit):
                            inlined = IntLit(inlined.value + addend)
                        else:
                            inlined = BinOp("+", inlined, IntLit(addend))
                    bound = inlined
                    del block.stmts[j]
                    if j < index:
                        index -= 1
                break
            if not isinstance(stmt, VarDecl):
                break

    # Remove the induction variable declaration.
    for j, stmt in enumerate(block.stmts):
        if isinstance(stmt, VarDecl) and stmt.name == var:
            del block.stmts[j]
            break

    return For(var=var, start=start, bound=bound, step=step, body=body)
