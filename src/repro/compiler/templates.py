"""RDD-transformation templates wrapping ``call`` into a batch kernel.

The bytecode-to-C compiler only translates the user's lambda; the
semantics of the enclosing RDD operator (``map``, ``reduce``) are realized
by inserting a predefined template (Section 3.2 / Code 3 of the paper):
the ``kernel`` top function iterates over the task batch and invokes
``call`` with per-task buffer slices.
"""

from __future__ import annotations

from ..errors import UnsupportedConstructError
from ..hlsc.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    CFunction,
    Expr,
    ExprStmt,
    For,
    INT,
    IntLit,
    Param,
    Var,
    VarDecl,
    VOID,
)
from .interface import InterfaceLayout, Leaf

#: Name of the batch-size parameter in the generated top function.
TASK_COUNT_PARAM = "N"
TASK_LOOP_VAR = "i"


def _slice_arg(leaf: Leaf, task: Expr) -> Expr:
    """Argument passed to ``call`` for one leaf at task index ``task``.

    Buffers are sliced by pointer arithmetic (``in_1 + i * 128``); scalar
    inputs are loaded (``in_2[i]``); scalar outputs pass the element
    address (``out_1 + i``).
    """
    base = Var(leaf.name)
    if leaf.is_scalar and leaf.direction == "in":
        return ArrayRef(base, task)
    if leaf.elem_count == 1:
        return BinOp("+", base, task)
    return BinOp("+", base, BinOp("*", task, IntLit(leaf.elem_count)))


def _call_params(layout: InterfaceLayout) -> list[Param]:
    """Parameter list of the per-task ``call`` function."""
    params: list[Param] = []
    for leaf in layout.inputs:
        params.append(Param(
            name=leaf.name, ctype=leaf.ctype,
            is_pointer=not leaf.is_scalar,
            elem_count=None if leaf.is_scalar else leaf.elem_count,
            direction="in"))
    for leaf in layout.outputs:
        params.append(Param(
            name=leaf.name, ctype=leaf.ctype, is_pointer=True,
            elem_count=leaf.elem_count, direction="out"))
    return params


def _kernel_params(layout: InterfaceLayout) -> list[Param]:
    """Parameter list of the batch ``kernel`` wrapper (all buffers)."""
    params = [Param(name=TASK_COUNT_PARAM, ctype=INT)]
    for leaf in layout.leaves:
        params.append(Param(
            name=leaf.name, ctype=leaf.ctype, is_pointer=True,
            elem_count=leaf.elem_count, direction=leaf.direction))
    return params


def make_call_function(name: str, layout: InterfaceLayout,
                       body: Block) -> CFunction:
    """Wrap the lifted body into the per-task ``call`` function."""
    return CFunction(name=name, return_type=VOID,
                     params=_call_params(layout), body=body)


def map_template(layout: InterfaceLayout, call_name: str = "call",
                 top_name: str = "kernel") -> CFunction:
    """``map``: one independent ``call`` per task (Code 3 of the paper)."""
    task = Var(TASK_LOOP_VAR)
    args: list[Expr] = [_slice_arg(leaf, task) for leaf in layout.inputs]
    args += [_slice_arg(leaf, task) for leaf in layout.outputs]
    loop = For(
        var=TASK_LOOP_VAR,
        start=IntLit(0),
        bound=Var(TASK_COUNT_PARAM),
        body=Block([ExprStmt(Call(call_name, args))]),
    )
    return CFunction(name=top_name, return_type=VOID,
                     params=_kernel_params(layout), body=Block([loop]))


def reduce_template(layout: InterfaceLayout, call_name: str = "call",
                    top_name: str = "kernel") -> CFunction:
    """``reduce``: sequential fold ``acc = call(acc, in[i])``.

    Only scalar element types are supported (the combiner's signature is
    ``(T, T) => T``); the Merlin tree-reduction transform can later
    parallelize this loop.
    """
    if len(layout.inputs) != 1 or len(layout.outputs) != 1:
        raise UnsupportedConstructError(
            "reduce kernels must have scalar (T, T) => T combiners")
    in_leaf = layout.inputs[0]
    out_leaf = layout.outputs[0]
    if not (in_leaf.is_scalar and out_leaf.is_scalar):
        raise UnsupportedConstructError(
            "reduce over composite element types is not supported")
    acc = VarDecl(name="acc", ctype=in_leaf.ctype,
                  init=ArrayRef(Var(in_leaf.name), IntLit(0)))
    loop = For(
        var=TASK_LOOP_VAR,
        start=IntLit(1),
        bound=Var(TASK_COUNT_PARAM),
        body=Block([
            Assign(Var("acc"),
                   Call(call_name,
                        [Var("acc"),
                         ArrayRef(Var(in_leaf.name), Var(TASK_LOOP_VAR))])),
        ]),
    )
    store = Assign(ArrayRef(Var(out_leaf.name), IntLit(0)), Var("acc"))
    params = [Param(name=TASK_COUNT_PARAM, ctype=INT),
              Param(name=in_leaf.name, ctype=in_leaf.ctype, is_pointer=True,
                    elem_count=in_leaf.elem_count, direction="in"),
              Param(name=out_leaf.name, ctype=out_leaf.ctype,
                    is_pointer=True, elem_count=1, direction="out")]
    return CFunction(name=top_name, return_type=VOID, params=params,
                     body=Block([acc, loop, store]))
