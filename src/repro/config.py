"""Frozen run-configuration dataclasses for the S2FA facade and CLI.

Before the :class:`~repro.s2fa.S2FASession` redesign, every entry point
grew its own ad-hoc keyword arguments (``jobs``, ``cache_dir``,
``fault_plan``, ``fault_seed``, deadline/backoff knobs, ...).  These two
immutable dataclasses are now the single home for those knobs:

* :class:`ExploreConfig` — everything the compile + DSE half of the
  pipeline needs (seed, virtual time limit, tuner workers, process-pool
  width, persistent cache directory);
* :class:`RuntimeConfig` — everything the Spark + Blaze half needs
  (partitions, fault schedule, offload deadlines/backoff/quarantine).

The CLI is a pure argv -> config translation onto these types, and the
facade consumes them directly; both validate eagerly in
``__post_init__`` so a bad knob fails at construction, not mid-run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Mapping, Optional

from .errors import (
    BlazeError,
    DatasetError,
    DSEError,
    ServeError,
    StreamError,
)


@dataclass(frozen=True)
class ExploreConfig:
    """Knobs of ``session.explore`` (compile + design space exploration).

    ``jobs`` sets the real process-pool width used for HLS estimation
    (virtual-clock results are identical at any value); ``cache_dir``
    enables the persistent evaluation cache so repeated explorations of
    the same kernel skip re-estimation.
    """

    #: Tuner RNG seed (the whole exploration is deterministic in it).
    seed: int = 0
    #: Global virtual time limit, in synthesis minutes.
    time_limit_minutes: float = 240.0
    #: Virtual DSE workers (the paper's eight-core machine).
    workers: int = 8
    #: Real process-pool width for HLS estimation.
    jobs: int = 1
    #: Persistent evaluation cache directory (``None`` disables).
    cache_dir: Optional[str] = None
    #: Decision-tree partition budget (Section 4.3.1).
    max_partitions: int = 8
    #: Exploration checkpoint directory (``None`` disables crash-safe
    #: checkpointing).  Also enables the evaluation cache there unless
    #: ``cache_dir`` names one explicitly — a resume needs the cache to
    #: replay the killed batch without duplicate backend evaluations.
    checkpoint_dir: Optional[str] = None
    #: Resume from the checkpoint in ``checkpoint_dir`` if one exists
    #: (otherwise start fresh — idempotent restart semantics for
    #: schedulers).
    resume: bool = False
    #: Path to a trained surrogate artifact (``s2fa dataset train``).
    #: When set, the engine scores each proposed batch with the
    #: surrogate and skips the analytically-worst fraction; the reported
    #: optimum is still always analytically verified.
    surrogate: Optional[str] = None
    #: Fraction of each unseen batch the surrogate may prune ([0, 1)).
    prune_fraction: float = 0.5
    #: Registered device name the exploration targets (the envelope the
    #: estimator scores against).  Unknown names fail eagerly with
    #: :class:`~repro.errors.UnknownDeviceError`.
    device: str = "xcvu9p"

    def __post_init__(self) -> None:
        self.resolve_device()           # fail on a bad name eagerly
        if self.jobs < 1:
            raise DSEError(f"jobs must be >= 1, got {self.jobs}")
        if not 0.0 <= self.prune_fraction < 1.0:
            raise DSEError("prune_fraction must be in [0, 1), got "
                           f"{self.prune_fraction}")
        if self.resume and not self.checkpoint_dir:
            raise DSEError(
                "resume=True needs checkpoint_dir (there is nowhere to "
                "resume from)")
        if self.workers < 1:
            raise DSEError(f"workers must be >= 1, got {self.workers}")
        if self.max_partitions < 1:
            raise DSEError(
                f"max_partitions must be >= 1, got {self.max_partitions}")
        if self.time_limit_minutes <= 0:
            raise DSEError("time_limit_minutes must be positive, got "
                           f"{self.time_limit_minutes}")

    def replace(self, **changes) -> "ExploreConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    def resolve_device(self):
        """The registered :class:`~repro.hls.device.Device` for
        ``device`` (typed error on an unknown name)."""
        from .hls.device import get_device

        return get_device(self.device)


@dataclass(frozen=True)
class DatasetConfig:
    """Knobs of ``s2fa dataset build`` (the QoR dataset factory).

    The factory sweeps kernels (the built-in app suite plus
    fuzz-generated ones) crossed with sampled Merlin configurations
    through the analytical estimator, and writes one versioned JSONL
    record per (kernel, config) pair.  The sweep is deterministic in
    ``seed``; with ``resume=True`` records already present in ``out``
    are kept and the sweep continues after them.
    """

    #: Output JSONL path.
    out: str = "dataset.jsonl"
    #: Sweep RNG seed (kernel generation and config sampling).
    seed: int = 0
    #: Number of fuzz-generated kernels (on top of the app suite).
    kernels: int = 4
    #: Sampled design configurations per kernel.
    configs: int = 64
    #: Include the built-in application suite kernels.
    apps: bool = True
    #: Real process-pool width for HLS estimation.
    jobs: int = 1
    #: Persistent evaluation cache directory (``None`` disables).
    cache_dir: Optional[str] = None
    #: Keep existing records in ``out`` and continue after them.
    resume: bool = False

    def __post_init__(self) -> None:
        if not self.out:
            raise DatasetError("out must name an output file")
        if self.kernels < 0:
            raise DatasetError(
                f"kernels must be >= 0, got {self.kernels}")
        if self.configs < 1:
            raise DatasetError(
                f"configs must be >= 1, got {self.configs}")
        if self.jobs < 1:
            raise DatasetError(f"jobs must be >= 1, got {self.jobs}")
        if not self.apps and self.kernels == 0:
            raise DatasetError(
                "nothing to sweep: apps=False and kernels=0")

    def replace(self, **changes) -> "DatasetConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class RuntimeConfig:
    """Knobs of ``session.run`` (Spark + Blaze deployment).

    ``fault_plan`` is the textual schedule spec of
    :meth:`repro.fpga.faults.FaultPlan.parse` (e.g.
    ``"transient=0.2,hang=0.05,lose_after=40"``); the offload knobs
    mirror :class:`repro.blaze.runtime.OffloadPolicy` field for field.
    """

    #: Spark partitions (each partition is one accelerator batch).
    partitions: int = 4
    #: Device fault schedule spec (``None`` = fault-free hardware).
    fault_plan: Optional[str] = None
    #: Seed of the fault schedule.
    fault_seed: int = 0
    #: Invocation attempts per batch before the board is quarantined.
    max_attempts: int = 3
    #: Host deadline per batch, virtual seconds.
    batch_deadline_seconds: float = 0.05
    #: Backoff before retry ``i`` is ``base * factor**(i-1)``.
    backoff_base_seconds: float = 1e-4
    backoff_factor: float = 2.0
    #: Quarantine ``q`` lasts ``base * factor**q`` before a probe.
    quarantine_base_seconds: float = 1e-2
    quarantine_factor: float = 2.0
    #: Functional execution engine: ``"tac"`` (flattened register-IR
    #: engines) or ``"stack"`` (the original stack/tree walkers, kept
    #: as differential oracles).  ``None`` defers to ``$S2FA_ENGINE``,
    #: then the default (see :mod:`repro.engines`).
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        from .engines import resolve_engine

        resolve_engine(self.engine)     # fail on a bad name eagerly
        if self.partitions < 1:
            raise BlazeError(
                f"partitions must be >= 1, got {self.partitions}")
        if self.max_attempts < 1:
            raise BlazeError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.batch_deadline_seconds <= 0:
            raise BlazeError("batch_deadline_seconds must be positive, "
                             f"got {self.batch_deadline_seconds}")
        # Parse eagerly so a bad spec fails at construction time.
        self.plan()

    def replace(self, **changes) -> "RuntimeConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)

    def policy(self):
        """The :class:`~repro.blaze.runtime.OffloadPolicy` equivalent."""
        from .blaze.runtime import OffloadPolicy

        return OffloadPolicy(
            max_attempts=self.max_attempts,
            batch_deadline_seconds=self.batch_deadline_seconds,
            backoff_base_seconds=self.backoff_base_seconds,
            backoff_factor=self.backoff_factor,
            quarantine_base_seconds=self.quarantine_base_seconds,
            quarantine_factor=self.quarantine_factor)

    def plan(self):
        """The parsed :class:`~repro.fpga.faults.FaultPlan` (or None)."""
        if self.fault_plan is None:
            return None
        from .fpga.faults import FaultPlan

        return FaultPlan.parse(self.fault_plan, seed=self.fault_seed)


@dataclass(frozen=True)
class StreamConfig:
    """Knobs of ``session.stream`` / the ``s2fa stream`` CLI verb.

    Batch *content* is pinned by ``(data_seed, batch_records)`` alone —
    micro-batch ``n`` always covers source offsets
    ``[n * batch_records, (n+1) * batch_records)`` — so every other knob
    here (intervals, lag thresholds, fault schedules in ``runtime``)
    changes only timing and placement, never what the sink records.
    The offload-path knobs (fault schedule, deadlines, engine) ride
    along in ``runtime``, like :class:`ServeConfig`.
    """

    #: Source records admitted per micro-batch.
    batch_records: int = 32
    #: Micro-batch interval, virtual seconds.
    interval_seconds: float = 0.05
    #: Bounded source size (``None`` = unbounded; ``max_batches`` must
    #: then bound the run).
    total_records: Optional[int] = 256
    #: Hard cap on micro-batches this run (``None`` = until the source
    #: is exhausted).
    max_batches: Optional[int] = None
    #: Seed of the deterministic record source.
    data_seed: int = 21
    #: Admission depth while keeping up (shrinks to 1 under LAGGING).
    prefetch_batches: int = 2
    #: LAGGING threshold: completion slip past the next batch's due
    #: time, in batch intervals.
    max_lag_intervals: float = 2.0
    #: Sink JSONL path (``None`` = in-memory sink).
    sink: Optional[str] = None
    #: Streaming checkpoint directory (``None`` disables crash-safe
    #: exactly-once recovery; the sink stays idempotent regardless).
    checkpoint_dir: Optional[str] = None
    #: Resume from the checkpoint in ``checkpoint_dir`` if one exists
    #: (otherwise start fresh — idempotent restart semantics).
    resume: bool = False
    #: Offload-path configuration (fault schedule, policy, engine).
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def __post_init__(self) -> None:
        if self.batch_records < 1:
            raise StreamError(
                f"batch_records must be >= 1, got {self.batch_records}")
        if self.interval_seconds <= 0:
            raise StreamError(
                "interval_seconds must be positive, got "
                f"{self.interval_seconds}")
        if self.total_records is not None and self.total_records < 0:
            raise StreamError(
                f"total_records must be >= 0, got {self.total_records}")
        if self.max_batches is not None and self.max_batches < 1:
            raise StreamError(
                f"max_batches must be >= 1, got {self.max_batches}")
        if self.total_records is None and self.max_batches is None:
            raise StreamError(
                "an unbounded source (total_records=None) needs "
                "max_batches to bound the run")
        if self.prefetch_batches < 1:
            raise StreamError(
                "prefetch_batches must be >= 1, got "
                f"{self.prefetch_batches}")
        if self.max_lag_intervals <= 0:
            raise StreamError(
                "max_lag_intervals must be positive, got "
                f"{self.max_lag_intervals}")
        if self.resume and not self.checkpoint_dir:
            raise StreamError(
                "resume=True needs checkpoint_dir (there is nowhere to "
                "resume from)")

    def replace(self, **changes) -> "StreamConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the ``s2fa serve`` multi-tenant daemon.

    The offload-path knobs (deadlines, backoff, quarantine, fault
    schedule, engine) ride along in ``runtime``; everything else here is
    the serving surface itself: admission bounds, fair-share weights,
    the board fleet width, circuit breaking, and drain behaviour.
    """

    #: Bounded per-tenant queue depth; a full queue sheds (OVERLOADED).
    queue_depth: int = 64
    #: Per-tenant weighted-round-robin weights; unlisted tenants get
    #: ``default_weight``.  (Do not mutate the mapping after
    #: construction — the config is conceptually frozen.)
    tenant_weights: Mapping[str, int] = field(default_factory=dict)
    default_weight: int = 1
    #: Virtual FPGA boards deployed per kernel (the fleet width).
    replicas: int = 2
    #: Registered device name the serve core compiles and explores
    #: against (and the board model of a homogeneous fleet).
    device: str = "xcvu9p"
    #: Heterogeneous fleet: registered device names assigned to the
    #: replicas of every kernel round-robin (replica ``i`` runs on
    #: ``fleet_devices[i % len]``).  Empty = homogeneous on ``device``.
    #: Placement is device-aware (fastest board first) but results stay
    #: bit-identical to a homogeneous fleet under any fault schedule.
    fleet_devices: tuple = ()
    #: Default per-request deadline, virtual seconds (None: unbounded).
    default_deadline_s: Optional[float] = None
    #: Circuit breaker: consecutive hardware failures before a kernel's
    #: circuit opens, and the virtual-seconds cooldown before a probe.
    breaker_threshold: int = 3
    breaker_reset_s: float = 0.5
    #: Virtual time budget for ``explore=True`` requests (DSE minutes).
    explore_time_limit_minutes: float = 20.0
    #: Grace period (real seconds) for the in-flight request to finish
    #: during a drain before the daemon gives up and exits anyway.
    drain_grace_s: float = 10.0
    #: Offload-path configuration (fault schedule, policy, engine).
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)

    def __post_init__(self) -> None:
        from .hls.device import get_device

        get_device(self.device)         # fail on a bad name eagerly
        for name in self.fleet_devices:
            get_device(name)
        if self.queue_depth < 1:
            raise ServeError(
                f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.replicas < 1:
            raise ServeError(
                f"replicas must be >= 1, got {self.replicas}")
        if self.default_weight < 1:
            raise ServeError(
                f"default_weight must be >= 1, got {self.default_weight}")
        for tenant, weight in self.tenant_weights.items():
            if weight < 1:
                raise ServeError(
                    f"tenant {tenant!r}: weight must be >= 1, "
                    f"got {weight}")
        if (self.default_deadline_s is not None
                and self.default_deadline_s <= 0):
            raise ServeError(
                "default_deadline_s must be positive, got "
                f"{self.default_deadline_s}")
        if self.breaker_threshold < 1:
            raise ServeError(
                f"breaker_threshold must be >= 1, "
                f"got {self.breaker_threshold}")
        if self.breaker_reset_s <= 0:
            raise ServeError(
                f"breaker_reset_s must be positive, "
                f"got {self.breaker_reset_s}")
        if self.explore_time_limit_minutes <= 0:
            raise ServeError(
                "explore_time_limit_minutes must be positive, got "
                f"{self.explore_time_limit_minutes}")
        if self.drain_grace_s <= 0:
            raise ServeError(
                f"drain_grace_s must be positive, "
                f"got {self.drain_grace_s}")

    def replace(self, **changes) -> "ServeConfig":
        """A copy with the given fields changed (re-validated)."""
        return dataclasses.replace(self, **changes)
