"""Pluggable cost models: what a design point *costs*, asked abstractly.

Everything in the DSE used to call :func:`repro.hls.estimator.estimate`
directly.  This package turns that hard-coded dependency into a small
protocol so the expensive analytical model and cheap learned surrogates
are interchangeable:

* :class:`CostModel` — the protocol: ``score(kernel, config, device)``
  returns a :class:`QoR`, and ``identity()`` names the model + version
  for cache keys (evaluations from different cost models must never mix);
* :class:`AnalyticalCostModel` — wraps the analytical HLS estimator
  (the default everywhere, behaviorally identical to the old free
  functions);
* :class:`SurrogateCostModel` — a trained ridge/GBDT artifact from
  ``s2fa dataset train`` that predicts QoR from a
  :class:`~repro.cost.features.FeatureVector` in microseconds; the DSE
  uses it to *prune* candidate batches, never to report an optimum.
"""

from .base import QoR, CostModel  # noqa: F401
from .analytical import AnalyticalCostModel  # noqa: F401
from .features import (  # noqa: F401
    FEATURE_NAMES,
    FEATURE_SCHEMA_VERSION,
    FeatureVector,
    extract_features,
)
from .models import (  # noqa: F401
    GBDTModel,
    RidgeModel,
    load_model,
    train_gbdt,
    train_ridge,
)
from .surrogate import (  # noqa: F401
    SURROGATE_MINUTES,
    SurrogateCostModel,
)

__all__ = [
    "QoR",
    "CostModel",
    "AnalyticalCostModel",
    "SurrogateCostModel",
    "SURROGATE_MINUTES",
    "FeatureVector",
    "FEATURE_NAMES",
    "FEATURE_SCHEMA_VERSION",
    "extract_features",
    "RidgeModel",
    "GBDTModel",
    "train_ridge",
    "train_gbdt",
    "load_model",
]
