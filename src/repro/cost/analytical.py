"""The analytical HLS estimator wrapped as a :class:`CostModel`.

This is the default cost model everywhere — behaviorally identical to the
old direct ``hls.estimator.estimate`` calls, including the virtual
synthesis minutes each evaluation charges to the clock.
"""

from __future__ import annotations

from ..hls.device import Device, VU9P
from ..hls.estimator import ESTIMATOR_VERSION, estimate
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER
from .base import CostModel, QoR


class AnalyticalCostModel(CostModel):
    """Scores points with the full analytical model (the ground truth).

    The only model whose results may enter the persistent DSE cache:
    its numbers *are* the estimates other models approximate.
    """

    name = "analytical"
    persistable = True

    def identity(self) -> str:
        return f"analytical:v{ESTIMATOR_VERSION}"

    def score(self, kernel, config: DesignConfig,
              device: Device = VU9P, *, tracer=NULL_TRACER) -> QoR:
        result = estimate(kernel, config, device, tracer=tracer)
        return QoR(
            value=result.normalized_cycles,
            cycles=float(result.cycles),
            feasible=result.feasible,
            minutes=result.synthesis_minutes,
            result=result,
            source=self.identity(),
        )
