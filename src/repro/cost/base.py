"""The :class:`CostModel` protocol and its :class:`QoR` return type.

A cost model answers one question — "what does this design point cost?" —
without promising *how*.  The analytical HLS estimator answers it in
virtual synthesis minutes; a trained surrogate answers it in microseconds
from a feature vector.  The DSE machinery only ever talks to this
interface, so the two are interchangeable wherever a full
:class:`~repro.hls.result.HLSResult` is not required.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..hls.device import Device, VU9P
from ..hls.result import HLSResult, Resources
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER


@dataclass(frozen=True)
class QoR:
    """Quality-of-result of one scored design point.

    ``value`` is the optimization objective — normalized execution cycles,
    lower is better, ``inf`` when infeasible — so tuners can compare QoRs
    from *different* cost models on one axis.  ``minutes`` is the virtual
    synthesis time the scoring charges to the clock (the analytical model
    charges real synthesis minutes; a surrogate charges almost nothing).
    ``result`` carries the full HLS report when the model produced one;
    surrogates leave it ``None``.  ``source`` names the model identity
    that produced this QoR.
    """

    value: float
    cycles: float
    feasible: bool
    minutes: float
    result: Optional[HLSResult] = None
    source: str = ""

    def to_result(self, device: Device = VU9P) -> HLSResult:
        """A (possibly synthetic) :class:`HLSResult` view of this QoR.

        When the model produced a full report, that report is returned
        unchanged.  Otherwise a minimal placeholder is synthesized so
        code paths that require an ``HLSResult`` (reports, caches that
        were *not* supposed to receive surrogate data — see
        ``CostModel.persistable``) keep working.
        """
        if self.result is not None:
            return self.result
        if not self.feasible:
            return HLSResult(
                feasible=False, cycles=0, freq_mhz=device.target_mhz,
                resources=Resources(),
                utilization={"lut": 0.0, "ff": 0.0, "dsp": 0.0,
                             "bram": 0.0},
                ii_top=None, synthesis_minutes=self.minutes,
                infeasible_reason=f"predicted infeasible [{self.source}]")
        return HLSResult(
            feasible=True, cycles=int(round(self.cycles)),
            freq_mhz=device.target_mhz, resources=Resources(),
            utilization={"lut": 0.0, "ff": 0.0, "dsp": 0.0, "bram": 0.0},
            ii_top=None, synthesis_minutes=self.minutes)


class CostModel:
    """Scores a design point for one kernel on one device.

    Subclasses implement :meth:`score`; everything else is shared
    plumbing.  Two invariants every implementation must keep:

    * **identity is honest** — :meth:`identity` changes whenever the
      model would return different numbers for the same inputs, because
      the identity is hashed into DSE cache keys and checkpoint
      signatures;
    * **infeasible is a result, not an error** — a design that blows the
      device envelope returns ``QoR(feasible=False, value=inf)``;
      exceptions are reserved for broken inputs and are converted to
      infeasible QoRs by the :meth:`safe_score` firewall exactly like
      the old ``safe_estimate`` free function did.
    """

    #: short human name ("analytical", "surrogate:ridge", ...).
    name: str = "costmodel"

    #: whether results from this model may enter the *persistent* DSE
    #: cache.  Only models whose numbers are true estimates (i.e. the
    #: analytical model) may persist; surrogate predictions must never
    #: masquerade as cached analytical evaluations.
    persistable: bool = False

    def identity(self) -> str:
        """Stable versioned identity, part of every cache key."""
        raise NotImplementedError

    def score(self, kernel, config: DesignConfig,
              device: Device = VU9P, *, tracer=NULL_TRACER) -> QoR:
        """Score one design point; raise only on broken inputs."""
        raise NotImplementedError

    def safe_score(self, kernel, point: dict, device: Device = VU9P,
                   tracer=NULL_TRACER) -> QoR:
        """Score one flat point, converting exceptions to infeasible QoRs.

        The exception firewall: a model bug degrades a single point
        identically at any ``--jobs`` instead of crashing the
        exploration.  Failure QoRs carry the ``evaluation error`` reason
        prefix so the evaluator never persists them.
        """
        from ..dse.evaluator import error_result
        try:
            config = DesignConfig.from_point(point)
            return self.score(kernel, config, device, tracer=tracer)
        except Exception as exc:  # noqa: BLE001 - deliberate firewall
            result = error_result(f"evaluation error: {exc}", device)
            return QoR(value=float("inf"), cycles=0.0, feasible=False,
                       minutes=result.synthesis_minutes, result=result,
                       source=self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.identity()}>"
