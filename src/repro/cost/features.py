"""Stable feature extraction: (kernel IR, design config) → FeatureVector.

The surrogate never sees source code — it sees a fixed-width vector of
named features derived from the kernel's loop tree (static per kernel)
and the *effective* design config (factor dependencies resolved, so a
loop buried under a ``flatten`` pipeline contributes its forced
full-unroll factors, not the dead knob settings the tuner proposed —
the same resolution the analytical model applies).

The schema is versioned: ``FEATURE_SCHEMA_VERSION`` is stored in every
dataset record and model artifact, and a model trained under one schema
refuses to score vectors from another.  Feature order is part of the
schema — append new features, never reorder.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..hls.device import Device, VU9P
from ..hlsc.analysis import LoopInfo, flatten_loop_tree, kernel_loop_tree
from ..merlin.config import DesignConfig
from ..errors import CostModelError

#: Bump when features are added or their meaning changes.
#: v2: the device envelope joined the feature row (``d_*`` features) —
#: the device is a first-class DSE dimension, so a surrogate must see
#: which envelope a point was scored against.
FEATURE_SCHEMA_VERSION = 2

#: Names, in vector order.  ``k_*`` are static kernel facts, ``c_*``
#: describe the (effective) config, ``p_*`` are physics proxies that
#: couple the two (lane counts, serial work, memory traffic).
FEATURE_NAMES = (
    # -- kernel ------------------------------------------------------
    "k_loops",            # number of loops in the tree
    "k_max_depth",        # deepest nesting level
    "k_log_trips",        # sum of log2(trip count) over loops
    "k_log_ops",          # log2(1 + trip-weighted total op count)
    "k_frac_float",       # float share of trip-weighted ops
    "k_frac_mem",         # load/store share of trip-weighted ops
    "k_frac_div",         # divide share (long pipelines) of ops
    "k_reductions",       # loops with a tree-reducible reduction
    "k_carried",          # loops with a non-reducible carried dep
    "k_arrays",           # distinct arrays touched
    # -- config ------------------------------------------------------
    "c_log_parallel",     # sum of log2(effective parallel factor)
    "c_log_tile",         # sum of log2(effective tile factor)
    "c_pipe_on",          # loops pipelined "on"
    "c_pipe_flatten",     # loops pipelined "flatten"
    "c_frac_pipelined",   # pipelined share of loops
    "c_log_bw",           # sum of log2(bitwidth / 16) over buffers
    "c_bw_max",           # log2 of the widest interface buffer
    # -- interaction proxies ----------------------------------------
    "p_log_lanes",        # log2 of the largest parallel-factor product
                          # along any root-to-leaf path (PE count proxy)
    "p_log_serial_work",  # log2(1 + trip-weighted ops / local lanes)
    "p_log_mem_traffic",  # log2(1 + accesses·trips / bitwidth words)
    "p_log_dsp",          # log2(1 + lanes · multiply-ish ops)
    "p_recurrence",       # worst recurrence depth under a pipeline (II)
    "p_log_bram_tiles",   # log2(1 + Σ tile · arrays touched) (BRAM)
    "p_flatten_unroll",   # log2 of iterations forced by flattening
    # -- device envelope (appended in schema v2) ---------------------
    "d_log_luts",         # log2 of the usable LUT budget
    "d_log_dsps",         # log2 of the usable DSP budget
    "d_log_bram",         # log2 of the usable BRAM-18k budget
    "d_log_mem_bw",       # log2 of off-chip bytes per kernel cycle
    "d_mhz",              # target clock / 100 MHz
)

_FLOAT_OPS = ("fadd", "fmul", "fdiv", "fspec")
_MEM_OPS = ("load", "store")
_DIV_OPS = ("idiv", "fdiv", "fspec")


def _log2p(x: float) -> float:
    return math.log2(1.0 + max(0.0, x))


@dataclass(frozen=True)
class FeatureVector:
    """One fixed-width, schema-versioned feature row."""

    values: tuple
    schema_version: int = FEATURE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        if len(self.values) != len(FEATURE_NAMES) \
                and self.schema_version == FEATURE_SCHEMA_VERSION:
            raise CostModelError(
                f"feature vector has {len(self.values)} values, schema "
                f"v{FEATURE_SCHEMA_VERSION} defines {len(FEATURE_NAMES)}")

    def as_list(self) -> list[float]:
        return list(self.values)

    def as_dict(self) -> dict[str, float]:
        return dict(zip(FEATURE_NAMES, self.values))


@dataclass
class KernelProfile:
    """Static per-kernel facts, computed once and reused per point.

    Scoring thousands of configs against one kernel must not re-analyze
    the kernel every time; :class:`~repro.cost.surrogate.SurrogateCostModel`
    keeps one profile per kernel digest.
    """

    roots: list = field(default_factory=list)
    loops: list = field(default_factory=list)
    #: trip-count product of each loop's ancestors *including itself*
    trip_weight: dict = field(default_factory=dict)
    static: dict = field(default_factory=dict)


def profile_kernel(kernel) -> KernelProfile:
    """Analyze a kernel once into the static half of the features."""
    roots = kernel_loop_tree(kernel)
    loops = flatten_loop_tree(roots)
    profile = KernelProfile(roots=roots, loops=loops)

    def visit(info: LoopInfo, outer: float) -> None:
        weight = outer * float(info.trip_count or 1)
        profile.trip_weight[info.label] = weight
        for child in info.children:
            visit(child, weight)

    for root in roots:
        visit(root, 1.0)

    weighted = {}
    arrays: set[str] = set()
    for info in loops:
        w = profile.trip_weight[info.label]
        for category, count in info.body_ops.counts.items():
            weighted[category] = weighted.get(category, 0.0) + w * count
        arrays |= info.arrays_read | info.arrays_written
    total = sum(weighted.values()) or 1.0
    profile.static = {
        "k_loops": float(len(loops)),
        "k_max_depth": float(max((i.depth for i in loops), default=0)),
        "k_log_trips": sum(
            math.log2(max(1, i.trip_count or 1)) for i in loops),
        "k_log_ops": _log2p(sum(weighted.values())),
        "k_frac_float": sum(weighted.get(c, 0.0)
                            for c in _FLOAT_OPS) / total,
        "k_frac_mem": sum(weighted.get(c, 0.0) for c in _MEM_OPS) / total,
        "k_frac_div": sum(weighted.get(c, 0.0) for c in _DIV_OPS) / total,
        "k_reductions": float(sum(1 for i in loops if i.is_reduction)),
        "k_carried": float(sum(
            1 for i in loops
            if i.carried_array_dep or i.carried_scalar_dep)),
        "k_arrays": float(len(arrays)),
    }
    return profile


def extract_features(kernel, config: DesignConfig,
                     device: Device = VU9P,
                     profile: KernelProfile | None = None) -> FeatureVector:
    """Extract the full feature row for one (kernel, config, device)."""
    if profile is None:
        profile = profile_kernel(kernel)
    effective = config.effective(profile.roots)

    values = dict(profile.static)
    log_parallel = log_tile = 0.0
    pipe_on = pipe_flatten = 0
    recurrence = 0.0
    bram_tiles = 0.0
    flatten_unroll = 0.0
    n_loops = max(1, len(profile.loops))

    for info in profile.loops:
        cfg = effective.loop(info.label)
        proposed = config.loop(info.label)
        log_parallel += math.log2(max(1, cfg.parallel))
        log_tile += math.log2(max(1, cfg.tile))
        if cfg.pipeline == "on":
            pipe_on += 1
        elif cfg.pipeline == "flatten":
            pipe_flatten += 1
        if cfg.pipeline != "off" and info.has_carried_dep:
            recurrence = max(recurrence,
                             float(info.recurrence_ops.total))
        bram_tiles += cfg.tile * len(
            info.arrays_read | info.arrays_written)
        # Iterations a flatten forced beyond what the tuner asked for.
        if cfg.parallel > proposed.parallel:
            flatten_unroll += (math.log2(max(1, cfg.parallel))
                               - math.log2(max(1, proposed.parallel)))

    values["c_log_parallel"] = log_parallel
    values["c_log_tile"] = log_tile
    values["c_pipe_on"] = float(pipe_on)
    values["c_pipe_flatten"] = float(pipe_flatten)
    values["c_frac_pipelined"] = (pipe_on + pipe_flatten) / n_loops

    bitwidths = effective.bitwidths or {}
    if bitwidths:
        values["c_log_bw"] = sum(
            math.log2(max(16, b) / 16.0) for b in bitwidths.values())
        values["c_bw_max"] = math.log2(max(bitwidths.values()))
        mean_words = (sum(max(16, b) for b in bitwidths.values())
                      / len(bitwidths)) / 32.0
    else:
        values["c_log_bw"] = 0.0
        values["c_bw_max"] = 5.0  # log2(32), the scalar default
        mean_words = 1.0

    # Largest lane product along any root-to-leaf path: the PE count the
    # duplicated datapath would need.
    def path_lanes(info: LoopInfo) -> float:
        own = math.log2(max(1, effective.loop(info.label).parallel))
        return own + max((path_lanes(c) for c in info.children),
                         default=0.0)

    log_lanes = max((path_lanes(r) for r in profile.roots), default=0.0)
    lanes = 2.0 ** log_lanes

    weighted_ops = 2.0 ** values["k_log_ops"] - 1.0
    mem_share = values["k_frac_mem"]
    # Multiply-ish share: float + divide ops dominate DSP packing.
    mul_like = weighted_ops * (values["k_frac_float"]
                               + values["k_frac_div"])
    values["p_log_lanes"] = log_lanes
    values["p_log_serial_work"] = _log2p(weighted_ops / max(1.0, lanes))
    values["p_log_mem_traffic"] = _log2p(
        weighted_ops * mem_share / max(0.25, mean_words))
    values["p_log_dsp"] = _log2p(lanes * (mul_like + 1.0))
    values["p_recurrence"] = recurrence
    values["p_log_bram_tiles"] = _log2p(bram_tiles)
    values["p_flatten_unroll"] = flatten_unroll

    values["d_log_luts"] = _log2p(device.usable("lut"))
    values["d_log_dsps"] = _log2p(device.usable("dsp"))
    values["d_log_bram"] = _log2p(device.usable("bram"))
    values["d_log_mem_bw"] = _log2p(device.mem_bytes_per_cycle)
    values["d_mhz"] = device.target_mhz / 100.0

    return FeatureVector(tuple(values[name] for name in FEATURE_NAMES))
