"""Pure-python regressors for the QoR surrogate: ridge and a small GBDT.

No numpy, no sklearn — the container must not need them.  Both models

* train on plain ``list[list[float]]`` feature rows and ``list[float]``
  targets,
* predict deterministically,
* round-trip losslessly through JSON (``to_dict`` / ``from_dict``), so a
  trained artifact is a portable text file.

The ridge solves the L2-regularized normal equations with Gaussian
elimination; the GBDT is least-squares gradient boosting over shallow
regression trees with quantile-capped split candidates.  Training sets
here are thousands of rows × ~25 features, where O(n·d·splits) python
is perfectly adequate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CostModelError

# ---------------------------------------------------------------------------
# Shared plumbing
# ---------------------------------------------------------------------------


def _standardize_fit(rows: list[list[float]]) -> tuple[list, list]:
    """Per-column mean and standard deviation (σ=1 for constants)."""
    n, d = len(rows), len(rows[0])
    means = [sum(r[j] for r in rows) / n for j in range(d)]
    stds = []
    for j in range(d):
        var = sum((r[j] - means[j]) ** 2 for r in rows) / n
        stds.append(var ** 0.5 if var > 1e-12 else 1.0)
    return means, stds


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float]:
    """Gaussian elimination with partial pivoting (in-place copies)."""
    n = len(rhs)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(a[r][col]))
        if abs(a[pivot][col]) < 1e-12:
            raise CostModelError("singular normal equations (is the "
                                 "regularization strength zero?)")
        a[col], a[pivot] = a[pivot], a[col]
        for row in range(col + 1, n):
            factor = a[row][col] / a[col][col]
            if factor == 0.0:
                continue
            for k in range(col, n + 1):
                a[row][k] -= factor * a[col][k]
    x = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = a[row][n] - sum(a[row][k] * x[k] for k in range(row + 1, n))
        x[row] = acc / a[row][row]
    return x


def _validate_training_set(rows, targets) -> None:
    if not rows:
        raise CostModelError("cannot train on an empty dataset")
    if len(rows) != len(targets):
        raise CostModelError(
            f"{len(rows)} feature rows but {len(targets)} targets")
    width = len(rows[0])
    if any(len(r) != width for r in rows):
        raise CostModelError("ragged feature rows")
    if any(t != t or t in (float("inf"), float("-inf"))
           for t in targets):
        raise CostModelError(
            "non-finite target — encode infeasibility before training")


# ---------------------------------------------------------------------------
# Ridge regression
# ---------------------------------------------------------------------------


@dataclass
class RidgeModel:
    """Standardized linear model: ŷ = intercept + Σ wⱼ·(xⱼ−μⱼ)/σⱼ."""

    weights: list = field(default_factory=list)
    intercept: float = 0.0
    means: list = field(default_factory=list)
    stds: list = field(default_factory=list)
    alpha: float = 1.0

    kind = "ridge"

    def predict_one(self, row: list[float]) -> float:
        if len(row) != len(self.weights):
            raise CostModelError(
                f"row has {len(row)} features, model expects "
                f"{len(self.weights)}")
        return self.intercept + sum(
            w * (x - m) / s for w, x, m, s
            in zip(self.weights, row, self.means, self.stds))

    def predict(self, rows: list[list[float]]) -> list[float]:
        return [self.predict_one(r) for r in rows]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "weights": list(self.weights),
                "intercept": self.intercept, "means": list(self.means),
                "stds": list(self.stds), "alpha": self.alpha}

    @classmethod
    def from_dict(cls, data: dict) -> "RidgeModel":
        return cls(weights=[float(w) for w in data["weights"]],
                   intercept=float(data["intercept"]),
                   means=[float(m) for m in data["means"]],
                   stds=[float(s) for s in data["stds"]],
                   alpha=float(data.get("alpha", 1.0)))


def train_ridge(rows: list[list[float]], targets: list[float],
                alpha: float = 1.0) -> RidgeModel:
    """Fit ridge regression via the regularized normal equations."""
    _validate_training_set(rows, targets)
    means, stds = _standardize_fit(rows)
    n, d = len(rows), len(rows[0])
    z = [[(r[j] - means[j]) / stds[j] for j in range(d)] for r in rows]
    intercept = sum(targets) / n
    y = [t - intercept for t in targets]
    # Gram matrix ZᵀZ + αI and moment vector Zᵀy.
    gram = [[sum(z[i][a] * z[i][b] for i in range(n))
             + (alpha if a == b else 0.0)
             for b in range(d)] for a in range(d)]
    moment = [sum(z[i][a] * y[i] for i in range(n)) for a in range(d)]
    weights = _solve(gram, moment)
    return RidgeModel(weights=weights, intercept=intercept,
                      means=means, stds=stds, alpha=alpha)


# ---------------------------------------------------------------------------
# Gradient-boosted regression trees
# ---------------------------------------------------------------------------


@dataclass
class _TreeNode:
    """One node of a regression tree, stored flat-dict serializable."""

    feature: int = -1           # -1 marks a leaf
    threshold: float = 0.0
    value: float = 0.0          # leaf prediction
    left: "_TreeNode | None" = None
    right: "_TreeNode | None" = None

    def predict(self, row: list[float]) -> float:
        node = self
        while node.feature >= 0:
            node = (node.left if row[node.feature] <= node.threshold
                    else node.right)
        return node.value

    def to_dict(self) -> dict:
        if self.feature < 0:
            return {"value": self.value}
        return {"feature": self.feature, "threshold": self.threshold,
                "left": self.left.to_dict(),
                "right": self.right.to_dict()}

    @classmethod
    def from_dict(cls, data: dict) -> "_TreeNode":
        if "feature" not in data:
            return cls(value=float(data["value"]))
        return cls(feature=int(data["feature"]),
                   threshold=float(data["threshold"]),
                   left=cls.from_dict(data["left"]),
                   right=cls.from_dict(data["right"]))


def _split_candidates(values: list[float], cap: int = 16) -> list[float]:
    """At most ``cap`` thresholds at quantile midpoints."""
    distinct = sorted(set(values))
    if len(distinct) < 2:
        return []
    if len(distinct) <= cap:
        return [(a + b) / 2.0
                for a, b in zip(distinct, distinct[1:])]
    step = len(distinct) / (cap + 1.0)
    picks = {distinct[min(len(distinct) - 1, int(step * (i + 1)))]
             for i in range(cap)}
    ordered = sorted(picks)
    return [(a + b) / 2.0 for a, b in zip(ordered, ordered[1:])] \
        or [sum(distinct) / len(distinct)]


def _fit_tree(rows: list[list[float]], residuals: list[float],
              indices: list[int], depth: int, max_depth: int,
              min_leaf: int) -> _TreeNode:
    mean = sum(residuals[i] for i in indices) / len(indices)
    if depth >= max_depth or len(indices) < 2 * min_leaf:
        return _TreeNode(value=mean)
    base_sse = sum((residuals[i] - mean) ** 2 for i in indices)
    best = None  # (gain, feature, threshold, left_idx, right_idx)
    d = len(rows[0])
    for j in range(d):
        for threshold in _split_candidates([rows[i][j] for i in indices]):
            left = [i for i in indices if rows[i][j] <= threshold]
            if len(left) < min_leaf or len(indices) - len(left) < min_leaf:
                continue
            right = [i for i in indices if rows[i][j] > threshold]
            ml = sum(residuals[i] for i in left) / len(left)
            mr = sum(residuals[i] for i in right) / len(right)
            sse = (sum((residuals[i] - ml) ** 2 for i in left)
                   + sum((residuals[i] - mr) ** 2 for i in right))
            gain = base_sse - sse
            if best is None or gain > best[0] + 1e-12:
                best = (gain, j, threshold, left, right)
    if best is None or best[0] <= 1e-9:
        return _TreeNode(value=mean)
    _, j, threshold, left, right = best
    return _TreeNode(
        feature=j, threshold=threshold,
        left=_fit_tree(rows, residuals, left, depth + 1, max_depth,
                       min_leaf),
        right=_fit_tree(rows, residuals, right, depth + 1, max_depth,
                        min_leaf))


@dataclass
class GBDTModel:
    """Least-squares gradient boosting: ŷ = base + η·Σ treeₖ(x)."""

    base: float = 0.0
    learning_rate: float = 0.1
    trees: list = field(default_factory=list)

    kind = "gbdt"

    def predict_one(self, row: list[float]) -> float:
        return self.base + self.learning_rate * sum(
            tree.predict(row) for tree in self.trees)

    def predict(self, rows: list[list[float]]) -> list[float]:
        return [self.predict_one(r) for r in rows]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "base": self.base,
                "learning_rate": self.learning_rate,
                "trees": [t.to_dict() for t in self.trees]}

    @classmethod
    def from_dict(cls, data: dict) -> "GBDTModel":
        return cls(base=float(data["base"]),
                   learning_rate=float(data["learning_rate"]),
                   trees=[_TreeNode.from_dict(t)
                          for t in data["trees"]])


def train_gbdt(rows: list[list[float]], targets: list[float],
               n_trees: int = 40, max_depth: int = 3,
               learning_rate: float = 0.1,
               min_leaf: int = 2) -> GBDTModel:
    """Fit gradient-boosted trees on squared error."""
    _validate_training_set(rows, targets)
    n = len(rows)
    base = sum(targets) / n
    model = GBDTModel(base=base, learning_rate=learning_rate)
    predictions = [base] * n
    indices = list(range(n))
    for _ in range(n_trees):
        residuals = [targets[i] - predictions[i] for i in range(n)]
        tree = _fit_tree(rows, residuals, indices, 0, max_depth, min_leaf)
        model.trees.append(tree)
        for i in range(n):
            predictions[i] += learning_rate * tree.predict(rows[i])
    return model


# ---------------------------------------------------------------------------


_MODEL_KINDS = {"ridge": RidgeModel, "gbdt": GBDTModel}


def load_model(data: dict):
    """Deserialize either model kind from its ``to_dict`` form."""
    kind = data.get("kind")
    if kind not in _MODEL_KINDS:
        raise CostModelError(f"unknown model kind {kind!r} "
                             f"(expected one of {sorted(_MODEL_KINDS)})")
    return _MODEL_KINDS[kind].from_dict(data)
