"""A trained surrogate as a :class:`CostModel` — microsecond QoR guesses.

The artifact produced by ``s2fa dataset train`` is a single JSON file:
the serialized regressor, the feature-schema and estimator versions it
was trained under, the target encoding, and the fidelity report measured
on held-out data.  :meth:`SurrogateCostModel.load` refuses artifacts
whose schema does not match this build, because silently scoring with
mismatched features is how surrogates go quietly wrong.

A surrogate's predictions are *never* persisted to the DSE cache
(``persistable = False``) and never trusted for a final optimum — the
engine uses them only to rank-and-prune candidate batches.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from ..errors import CostModelError
from ..hls.device import Device, VU9P
from ..hls.estimator import ESTIMATOR_VERSION
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER
from .base import CostModel, QoR
from .features import (
    FEATURE_SCHEMA_VERSION,
    extract_features,
    profile_kernel,
)
from .models import load_model

#: Virtual minutes one surrogate prediction charges to the clock.  Same
#: magnitude as an in-run cache hit: effectively free next to the 1.5–10
#: minutes a real synthesis estimate costs.
SURROGATE_MINUTES = 0.05

#: Artifact format marker + version.
ARTIFACT_FORMAT = "s2fa-surrogate"
ARTIFACT_VERSION = 1


class SurrogateCostModel(CostModel):
    """Predicts QoR from features; used to prune, never to decide.

    ``target`` names the encoding of the regression target; the only
    supported encoding is ``log2_qor`` (log2 of normalized cycles, with
    infeasible points trained at ``infeasible_cutoff`` — predictions at
    or beyond the cutoff are reported infeasible).
    """

    persistable = False

    def __init__(self, model, *, target: str = "log2_qor",
                 infeasible_cutoff: Optional[float] = None,
                 fidelity: Optional[dict] = None,
                 trained_on: Optional[dict] = None):
        if target != "log2_qor":
            raise CostModelError(
                f"unsupported surrogate target {target!r}")
        self.model = model
        self.target = target
        self.infeasible_cutoff = infeasible_cutoff
        self.fidelity = dict(fidelity or {})
        self.trained_on = dict(trained_on or {})
        self.name = f"surrogate:{model.kind}"
        self._profiles: dict[int, object] = {}
        self._identity: Optional[str] = None

    # ------------------------------------------------------------------
    # CostModel interface
    # ------------------------------------------------------------------

    def identity(self) -> str:
        if self._identity is None:
            payload = json.dumps(self.model.to_dict(), sort_keys=True)
            digest = hashlib.sha256(payload.encode()).hexdigest()[:12]
            self._identity = (f"surrogate:{self.model.kind}"
                              f":fs{FEATURE_SCHEMA_VERSION}:{digest}")
        return self._identity

    def _profile(self, kernel):
        profile = self._profiles.get(id(kernel))
        if profile is None:
            profile = profile_kernel(kernel)
            self._profiles[id(kernel)] = profile
        return profile

    def score(self, kernel, config: DesignConfig,
              device: Device = VU9P, *, tracer=NULL_TRACER) -> QoR:
        features = extract_features(kernel, config, device,
                                    profile=self._profile(kernel))
        predicted = self.model.predict_one(features.as_list())
        feasible = (self.infeasible_cutoff is None
                    or predicted < self.infeasible_cutoff)
        value = 2.0 ** predicted if feasible else float("inf")
        tracer.metrics.incr("cost.surrogate.predictions")
        return QoR(value=value,
                   cycles=2.0 ** predicted,
                   feasible=feasible,
                   minutes=SURROGATE_MINUTES,
                   result=None,
                   source=self.identity())

    # ------------------------------------------------------------------
    # Artifact I/O
    # ------------------------------------------------------------------

    def to_artifact(self) -> dict:
        return {
            "format": ARTIFACT_FORMAT,
            "version": ARTIFACT_VERSION,
            "feature_schema": FEATURE_SCHEMA_VERSION,
            "estimator_version": ESTIMATOR_VERSION,
            "target": self.target,
            "infeasible_cutoff": self.infeasible_cutoff,
            "model": self.model.to_dict(),
            "fidelity": self.fidelity,
            "trained_on": self.trained_on,
        }

    def save(self, path) -> None:
        Path(path).write_text(
            json.dumps(self.to_artifact(), indent=2, sort_keys=True)
            + "\n")

    @classmethod
    def load(cls, path) -> "SurrogateCostModel":
        try:
            data = json.loads(Path(path).read_text())
        except FileNotFoundError:
            raise CostModelError(f"surrogate artifact not found: {path}") \
                from None
        except json.JSONDecodeError as exc:
            raise CostModelError(
                f"surrogate artifact {path} is not valid JSON: {exc}") \
                from None
        return cls.from_artifact(data)

    @classmethod
    def from_artifact(cls, data: dict) -> "SurrogateCostModel":
        if data.get("format") != ARTIFACT_FORMAT:
            raise CostModelError(
                f"not a surrogate artifact (format="
                f"{data.get('format')!r})")
        if data.get("version") != ARTIFACT_VERSION:
            raise CostModelError(
                f"surrogate artifact version {data.get('version')} "
                f"unsupported (expected {ARTIFACT_VERSION})")
        if data.get("feature_schema") != FEATURE_SCHEMA_VERSION:
            raise CostModelError(
                f"surrogate trained under feature schema "
                f"v{data.get('feature_schema')}, this build extracts "
                f"v{FEATURE_SCHEMA_VERSION} — retrain the model")
        cutoff = data.get("infeasible_cutoff")
        return cls(load_model(data["model"]),
                   target=data.get("target", "log2_qor"),
                   infeasible_cutoff=(float(cutoff)
                                      if cutoff is not None else None),
                   fidelity=data.get("fidelity"),
                   trained_on=data.get("trained_on"))
