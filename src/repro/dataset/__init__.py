"""The QoR dataset factory and surrogate trainer (``s2fa dataset``).

* :mod:`repro.dataset.schema` — the versioned JSONL record format
  (tolerant reader, per-record-durable writer);
* :mod:`repro.dataset.build` — the deterministic, resumable sweep of
  kernels x sampled configs through the analytical estimator;
* :mod:`repro.dataset.train` — pure-python surrogate training (ridge /
  gradient-boosted stumps) with rank-fidelity reporting.

The products plug into the DSE through the pluggable cost-model API:
``s2fa dataset train`` writes a :class:`~repro.cost.SurrogateCostModel`
artifact that ``s2fa explore --surrogate MODEL.json`` loads to prune
proposal batches (see :mod:`repro.dse.engine`).
"""

from .schema import (  # noqa: F401
    DATASET_SCHEMA_VERSION,
    DatasetRecord,
    DatasetWriter,
    read_records,
)
from .build import (  # noqa: F401
    BuildReport,
    build_dataset,
    dataset_kernels,
    sample_points,
)
from .train import (  # noqa: F401
    FidelityReport,
    fidelity_of,
    spearman,
    top_k_recall,
    train_surrogate,
)

__all__ = [
    "DATASET_SCHEMA_VERSION",
    "DatasetRecord",
    "DatasetWriter",
    "read_records",
    "BuildReport",
    "build_dataset",
    "dataset_kernels",
    "sample_points",
    "FidelityReport",
    "fidelity_of",
    "spearman",
    "top_k_recall",
    "train_surrogate",
]
