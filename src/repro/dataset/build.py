"""The QoR dataset factory behind ``s2fa dataset build``.

Sweeps kernels (the built-in application suite plus fuzz-generated
ones) crossed with sampled Merlin configurations through the analytical
estimator and writes one :class:`~repro.dataset.schema.DatasetRecord`
per pair.  Three properties the surrogate trainer depends on:

* **deterministic** — the kernel sequence and the sampled points are a
  pure function of ``DatasetConfig.seed`` (per-kernel RNGs are seeded
  from the seed and the kernel name, so adding a kernel never reshuffles
  the others' samples);
* **resumable** — with ``resume=True`` records already present in the
  output file are kept and their (digest, point) pairs skipped, and the
  optional :class:`~repro.dse.cache.CacheStore` makes re-estimation of
  already-seen points free;
* **honest** — every record stores the feature-schema and estimator
  versions, so a trainer can refuse stale data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..config import DatasetConfig
from ..cost import FEATURE_SCHEMA_VERSION, extract_features
from ..cost.features import profile_kernel
from ..dse.cache import CacheStore, canonical_key
from ..dse.parallel import ParallelEvaluator
from ..dse.space import build_space
from ..errors import S2FAError
from ..hls.device import Device, VU9P
from ..hls.estimator import ESTIMATOR_VERSION
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER
from .schema import DatasetRecord, DatasetWriter, read_records


@dataclass
class BuildReport:
    """Outcome of one ``s2fa dataset build`` sweep."""

    path: str
    records: int = 0
    kernels: int = 0
    skipped_existing: int = 0
    skipped_corrupt: int = 0
    failed_kernels: list = field(default_factory=list)
    infeasible: int = 0
    minutes_total: float = 0.0


def dataset_kernels(cfg: DatasetConfig) -> list:
    """The kernel sweep: ``(name, CompiledKernel)`` pairs.

    The application suite comes first (in registry order), then
    ``cfg.kernels`` fuzz-generated kernels biased toward loops and
    arrays.  A generated kernel the compiler rejects is skipped (the
    fuzzer's job is to find those; the dataset's is not) — callers see
    the skip in :attr:`BuildReport.failed_kernels`.
    """
    from ..compiler.driver import compile_kernel
    from ..fuzz.gen import dataset_kernel

    out = []
    if cfg.apps:
        from ..apps import ALL_APPS

        for spec in ALL_APPS:
            out.append((spec.name, spec.compile()))
    rng = random.Random(f"s2fa-dataset:{cfg.seed}")
    for index in range(cfg.kernels):
        fuzz = dataset_kernel(rng, name=f"Ds{index + 1}")
        try:
            compiled = compile_kernel(
                fuzz.scala(), layout_config=fuzz.layout_config(),
                batch_size=64)
        except S2FAError as exc:
            out.append((fuzz.name, exc))
            continue
        out.append((fuzz.name, compiled))
    return out


def sample_points(space, rng: random.Random, count: int) -> list:
    """``count`` distinct design points: the default point plus draws.

    Small spaces may not have ``count`` distinct points; sampling stops
    after a bounded number of duplicate draws rather than spinning.
    """
    points = [space.default_point()]
    seen = {canonical_key(points[0])}
    misses = 0
    while len(points) < count and misses < 20 * count:
        point = space.random_point(rng)
        key = canonical_key(point)
        if key in seen:
            misses += 1
            continue
        seen.add(key)
        points.append(point)
    return points


def build_dataset(cfg: DatasetConfig, *, device: Device = VU9P,
                  tracer=NULL_TRACER) -> BuildReport:
    """Run the sweep and write the JSONL dataset at ``cfg.out``."""
    report = BuildReport(path=cfg.out)
    existing: set = set()
    if cfg.resume:
        try:
            records, report.skipped_corrupt = read_records(cfg.out)
            existing = {r.key() for r in records}
        except S2FAError:
            pass                        # no file yet: a fresh build
    store = CacheStore(cfg.cache_dir) if cfg.cache_dir else None

    with DatasetWriter(cfg.out, append=bool(existing)) as writer:
        for name, compiled in dataset_kernels(cfg):
            if isinstance(compiled, Exception):
                report.failed_kernels.append((name, str(compiled)))
                continue
            report.kernels += 1
            space = build_space(compiled)
            profile = profile_kernel(compiled.kernel)
            rng = random.Random(f"s2fa-dataset:{cfg.seed}:{name}")
            points = sample_points(space, rng, cfg.configs)
            with ParallelEvaluator(compiled, device, store=store,
                                   jobs=cfg.jobs,
                                   tracer=tracer) as evaluator:
                digest = evaluator.kernel_digest
                todo = []
                for point in points:
                    if (digest, canonical_key(point)) in existing:
                        report.skipped_existing += 1
                        continue
                    todo.append(point)
                evaluations = evaluator.evaluate_batch(todo) if todo \
                    else []
            for point, evaluation in zip(todo, evaluations):
                result = evaluation.result
                features = extract_features(
                    compiled.kernel, DesignConfig.from_point(point),
                    device, profile=profile)
                writer.write(DatasetRecord(
                    kernel=name,
                    digest=digest,
                    point=point,
                    features=features.values,
                    feature_schema=FEATURE_SCHEMA_VERSION,
                    feasible=result.feasible,
                    qor=evaluation.qor if result.feasible else None,
                    cycles=float(result.cycles),
                    minutes=evaluation.minutes,
                    estimator_version=ESTIMATOR_VERSION))
                report.records += 1
                report.minutes_total += evaluation.minutes
                if not result.feasible:
                    report.infeasible += 1
    return report
