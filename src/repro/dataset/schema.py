"""Versioned JSONL schema of the QoR dataset.

One record per (kernel, design point) pair: the extracted feature
vector, the analytical QoR, and enough provenance (kernel digest,
feature-schema and estimator versions) to detect stale data.  Records
are stored one JSON object per line so the factory can append
incrementally and a torn tail from a killed build never poisons the
file — :func:`read_records` skips lines it cannot parse (and records
whose schema version it does not know) unless asked to be strict.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..errors import DatasetError

#: Bump when a record field changes meaning.  Readers skip (or, in
#: strict mode, reject) records from other versions.
DATASET_SCHEMA_VERSION = 1

_REQUIRED = ("v", "kernel", "digest", "point", "features", "fs",
             "feasible", "cycles", "minutes", "estimator")


@dataclass(frozen=True)
class DatasetRecord:
    """One (kernel, design point) sample of the QoR dataset."""

    #: Kernel name (app name or generated-kernel name).
    kernel: str
    #: Cache digest of the kernel/device context (see
    #: :func:`repro.dse.cache.kernel_digest`).
    digest: str
    #: The flat design point the features were extracted from.
    point: dict
    #: Feature values, in :data:`repro.cost.FEATURE_NAMES` order.
    features: tuple
    #: :data:`repro.cost.FEATURE_SCHEMA_VERSION` at extraction time.
    feature_schema: int
    #: Whether the analytical estimator found the design feasible.
    feasible: bool
    #: Normalized cycles (the DSE's QoR); ``None`` when infeasible.
    qor: Optional[float]
    #: Raw cycle count (0 when infeasible).
    cycles: float
    #: Virtual synthesis minutes the evaluation cost.
    minutes: float
    #: :data:`repro.hls.estimator.ESTIMATOR_VERSION` that scored it.
    estimator_version: int

    def key(self) -> tuple:
        """Identity of the sample (digest + canonicalized point)."""
        from ..dse.cache import canonical_key

        return (self.digest, canonical_key(self.point))

    def to_json(self) -> dict:
        return {
            "v": DATASET_SCHEMA_VERSION,
            "kernel": self.kernel,
            "digest": self.digest,
            "point": self.point,
            "features": list(self.features),
            "fs": self.feature_schema,
            "feasible": self.feasible,
            "qor": self.qor,
            "cycles": self.cycles,
            "minutes": self.minutes,
            "estimator": self.estimator_version,
        }

    @staticmethod
    def from_json(data: dict) -> "DatasetRecord":
        """Parse one record; raises :class:`DatasetError` on bad shape."""
        if not isinstance(data, dict):
            raise DatasetError(f"record is not an object: {data!r}")
        missing = [k for k in _REQUIRED if k not in data]
        if missing:
            raise DatasetError(f"record is missing {missing}")
        if data["v"] != DATASET_SCHEMA_VERSION:
            raise DatasetError(
                f"unknown dataset schema version {data['v']!r} "
                f"(this reader knows v{DATASET_SCHEMA_VERSION})")
        features = data["features"]
        if not isinstance(features, list) or not all(
                isinstance(x, (int, float)) for x in features):
            raise DatasetError(f"bad feature vector: {features!r}")
        if not isinstance(data["point"], dict):
            raise DatasetError(f"bad point: {data['point']!r}")
        qor = data.get("qor")
        return DatasetRecord(
            kernel=str(data["kernel"]),
            digest=str(data["digest"]),
            point=data["point"],
            features=tuple(float(x) for x in features),
            feature_schema=int(data["fs"]),
            feasible=bool(data["feasible"]),
            qor=None if qor is None else float(qor),
            cycles=float(data["cycles"]),
            minutes=float(data["minutes"]),
            estimator_version=int(data["estimator"]))


class DatasetWriter:
    """Append-only JSONL writer with per-record durability.

    Each record is written as one line and flushed immediately, so a
    killed build loses at most the line being written — which the
    tolerant reader then skips on resume.
    """

    def __init__(self, path, *, append: bool = False):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if append else "w",
                        encoding="utf-8")
        self.written = 0

    def write(self, record: DatasetRecord) -> None:
        self._fh.write(json.dumps(record.to_json(),
                                  sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.written += 1

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "DatasetWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_records(path, *, strict: bool = False
                 ) -> tuple[list[DatasetRecord], int]:
    """Read a dataset file; returns ``(records, skipped_lines)``.

    Corrupt lines (torn tails, hand-edits) and records from unknown
    schema versions are counted and skipped; with ``strict=True`` they
    raise :class:`DatasetError` instead.  A missing file raises either
    way — that is a caller error, not corruption.
    """
    source = Path(path)
    if not source.exists():
        raise DatasetError(f"no such dataset file: {path}")
    records: list[DatasetRecord] = []
    skipped = 0
    for lineno, line in enumerate(
            source.read_text(encoding="utf-8").splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(DatasetRecord.from_json(json.loads(line)))
        except (json.JSONDecodeError, DatasetError, ValueError) as exc:
            if strict:
                raise DatasetError(
                    f"{path}:{lineno}: bad record: {exc}") from None
            skipped += 1
    return records, skipped
