"""Surrogate training and fidelity evaluation (``s2fa dataset train``).

The target is ``log2(normalized cycles)`` — QoR spans orders of
magnitude and the DSE only needs the surrogate to *rank* points, so a
log target keeps the squared-error losses from being dominated by the
slowest designs.  Infeasible points get a penalty target just above the
worst feasible one, and the artifact records the cutoff so the
surrogate can call a prediction above it infeasible.

Fidelity is reported on a deterministic holdout (every fourth record)
with rank metrics, because ranking is what the pruner consumes:

* **Spearman** rank correlation (tie-averaged ranks) between predicted
  and true targets — how well the surrogate orders the space;
* **top-k recall** — of the truly best ``k`` points, the fraction the
  surrogate also ranks in its best ``k`` (the pruner must not drop
  these);
* plain MSE on the log target, for trend watching.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cost import (
    FEATURE_SCHEMA_VERSION,
    SurrogateCostModel,
    train_gbdt,
    train_ridge,
)
from ..errors import DatasetError
from ..hls.estimator import ESTIMATOR_VERSION
from .schema import DatasetRecord

#: Penalty added to the worst feasible log-QoR to place infeasible
#: targets; the infeasibility cutoff sits halfway, at ``+1.0``.
INFEASIBLE_PENALTY = 2.0

#: Holdout stride: every ``HOLDOUT_EVERY``-th record is held out.
HOLDOUT_EVERY = 4

_TRAINERS = {"ridge": train_ridge, "gbdt": train_gbdt}


@dataclass
class FidelityReport:
    """How faithfully the surrogate ranks the holdout."""

    spearman: float
    top_k_recall: dict = field(default_factory=dict)
    mse: float = 0.0
    count: int = 0
    infeasible: int = 0

    def to_dict(self) -> dict:
        return {
            "spearman": self.spearman,
            "top_k_recall": {str(k): v
                             for k, v in self.top_k_recall.items()},
            "mse": self.mse,
            "count": self.count,
            "infeasible": self.infeasible,
        }


def _ranks(values: list) -> list:
    """Tie-averaged ranks (1-based), the Spearman convention."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) \
                and values[order[j + 1]] == values[order[i]]:
            j += 1
        mean_rank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = mean_rank
        i = j + 1
    return ranks


def spearman(xs: list, ys: list) -> float:
    """Spearman rank correlation with tie-averaged ranks.

    Returns 0.0 for degenerate inputs (fewer than two points, or a
    constant series) rather than dividing by zero.
    """
    if len(xs) != len(ys):
        raise DatasetError(
            f"spearman needs equal-length series, got "
            f"{len(xs)} and {len(ys)}")
    n = len(xs)
    if n < 2:
        return 0.0
    rx, ry = _ranks(xs), _ranks(ys)
    mx = sum(rx) / n
    my = sum(ry) / n
    cov = sum((a - mx) * (b - my) for a, b in zip(rx, ry))
    vx = sum((a - mx) ** 2 for a in rx)
    vy = sum((b - my) ** 2 for b in ry)
    if vx == 0.0 or vy == 0.0:
        return 0.0
    return cov / math.sqrt(vx * vy)


def top_k_recall(true_vals: list, pred_vals: list, k: int) -> float:
    """Fraction of the truly best ``k`` also in the predicted best ``k``.

    "Best" is *lowest* (QoR is minimized).  Degenerate inputs (k
    larger than the series) clamp rather than fail.
    """
    n = len(true_vals)
    if n == 0 or k < 1:
        return 0.0
    k = min(k, n)
    true_top = set(sorted(range(n),
                          key=lambda i: true_vals[i])[:k])
    pred_top = set(sorted(range(n),
                          key=lambda i: pred_vals[i])[:k])
    return len(true_top & pred_top) / k


def targets_for(records: list) -> tuple[list, float]:
    """Per-record log2 targets and the infeasibility cutoff.

    Feasible records map to ``log2(qor)``; infeasible ones to the worst
    feasible target plus :data:`INFEASIBLE_PENALTY` (so regression has
    a finite value to fit).  The returned cutoff sits between the two
    bands; a prediction above it is read back as "infeasible".
    """
    finite = [math.log2(r.qor) for r in records
              if r.feasible and r.qor and r.qor > 0]
    worst = max(finite) if finite else 0.0
    cutoff = worst + INFEASIBLE_PENALTY / 2.0
    targets = []
    for record in records:
        if record.feasible and record.qor and record.qor > 0:
            targets.append(math.log2(record.qor))
        else:
            targets.append(worst + INFEASIBLE_PENALTY)
    return targets, cutoff


def _check_records(records: list) -> None:
    if not records:
        raise DatasetError("the dataset has no usable records")
    for record in records:
        if record.feature_schema != FEATURE_SCHEMA_VERSION:
            raise DatasetError(
                f"record from feature schema v{record.feature_schema} "
                f"(trainer expects v{FEATURE_SCHEMA_VERSION}); rebuild "
                "the dataset")
        if record.estimator_version != ESTIMATOR_VERSION:
            raise DatasetError(
                f"record from estimator v{record.estimator_version} "
                f"(current is v{ESTIMATOR_VERSION}); rebuild the "
                "dataset")


def split_records(records: list) -> tuple[list, list]:
    """Deterministic train/holdout split (every fourth record out)."""
    train = [r for i, r in enumerate(records)
             if i % HOLDOUT_EVERY != HOLDOUT_EVERY - 1]
    hold = [r for i, r in enumerate(records)
            if i % HOLDOUT_EVERY == HOLDOUT_EVERY - 1]
    if not train:                       # tiny datasets: train on all
        train = records
    if not hold:
        hold = records
    return train, hold


def fidelity_of(model, records: list, *,
                ks: tuple = (5, 10)) -> FidelityReport:
    """Rank fidelity of ``model`` against the analytical truth."""
    _check_records(records)
    targets, _ = targets_for(records)
    rows = [list(r.features) for r in records]
    preds = [model.predict_one(row) for row in rows]
    mse = sum((p - t) ** 2 for p, t in zip(preds, targets)) \
        / len(targets)
    return FidelityReport(
        spearman=spearman(targets, preds),
        top_k_recall={k: top_k_recall(targets, preds, k) for k in ks},
        mse=mse,
        count=len(records),
        infeasible=sum(1 for r in records if not r.feasible))


def train_surrogate(records: list, *, model: str = "gbdt",
                    **params) -> tuple[SurrogateCostModel, FidelityReport]:
    """Train a surrogate on ``records``; fidelity is on the holdout.

    ``model`` picks the learner (``"ridge"`` or ``"gbdt"``); ``params``
    pass through to it (``alpha`` for ridge, ``n_trees``/``max_depth``/
    ``learning_rate`` for GBDT).  Returns the ready-to-save
    :class:`~repro.cost.SurrogateCostModel` and its
    :class:`FidelityReport`.
    """
    _check_records(records)
    trainer = _TRAINERS.get(model)
    if trainer is None:
        raise DatasetError(
            f"unknown surrogate model {model!r} "
            f"(known: {sorted(_TRAINERS)})")
    train, hold = split_records(records)
    targets, cutoff = targets_for(train)
    fitted = trainer([list(r.features) for r in train], targets,
                     **params)
    report = fidelity_of(fitted, hold)
    surrogate = SurrogateCostModel(
        fitted, infeasible_cutoff=cutoff,
        fidelity=report.to_dict(),
        trained_on={
            "records": len(train),
            "holdout": len(hold),
            "kernels": sorted({r.kernel for r in train}),
            "model": model,
        })
    return surrogate, report
