"""Learning-based parallel design space exploration (Section 4)."""

from .bandit import AUCBandit, BanditTuner, default_techniques  # noqa: F401
from .cache import (  # noqa: F401
    CacheStore,
    canonical_key,
    kernel_digest,
    point_from_key,
)
from .checkpoint import (  # noqa: F401
    CHECKPOINT_VERSION,
    CheckpointStore,
    validate_checkpoint,
)
from .datuner import DATunerEngine  # noqa: F401
from .engine import S2FAEngine  # noqa: F401
from .parallel import ParallelEvaluator  # noqa: F401
from .exhaustive import (  # noqa: F401
    ExhaustiveResult,
    enumerate_points,
    exhaustive_search,
)
from .evaluator import (  # noqa: F401
    Evaluation,
    Evaluator,
    ExplorationTrace,
    TracePoint,
)
from .opentuner import OpenTunerRuntime  # noqa: F401
from .partition import Partition, build_partitions  # noqa: F401
from .result import DSERun, PartitionReport  # noqa: F401
from .seeds import area_seed, performance_seed, seeds_for  # noqa: F401
from .space import DesignSpace, Parameter, build_space  # noqa: F401
from .stopping import (  # noqa: F401
    EntropyStopping,
    NeverStop,
    NoImprovementStopping,
)
from .vclock import VirtualClock, WorkerPool  # noqa: F401
