"""Multi-armed bandit meta-technique (the OpenTuner core).

OpenTuner lets several search techniques run simultaneously and uses a
sliding-window AUC bandit [Fialho et al.] to allocate the next design
point to the technique that has recently produced new global bests.  The
same machinery serves both our vanilla-OpenTuner baseline and the S2FA
per-partition tuners.
"""

from __future__ import annotations

import math
import random
from collections import deque
from dataclasses import dataclass

from .evaluator import Evaluation
from .space import DesignSpace
from .techniques.base import BestTracker, SearchTechnique
from .techniques.de import DifferentialEvolution
from .techniques.greedy import UniformGreedyMutation
from .techniques.pso import ParticleSwarm
from .techniques.sa import SimulatedAnnealing


def default_techniques(space: DesignSpace,
                       rng: random.Random) -> list[SearchTechnique]:
    """The paper's technique portfolio (Section 4.2)."""
    return [
        UniformGreedyMutation(space, rng),
        DifferentialEvolution(space, rng),
        ParticleSwarm(space, rng),
        SimulatedAnnealing(space, rng),
    ]


@dataclass
class _WindowEntry:
    technique: str
    improved: bool


class AUCBandit:
    """Sliding-window area-under-curve credit assignment.

    A technique earns credit when its proposal improves the global best;
    recent improvements weigh more (AUC over the window).  Selection adds
    an exploration bonus so starved techniques are retried.
    """

    def __init__(self, names: list[str], window: int = 50,
                 exploration: float = 0.3):
        self.names = list(names)
        self.window = deque(maxlen=window)
        self.exploration = exploration
        self.uses = {name: 0 for name in self.names}
        self.total = 0

    def credit(self, name: str) -> float:
        auc = 0.0
        weight = 0
        for rank, entry in enumerate(self.window, start=1):
            if entry.technique == name:
                weight += rank
                if entry.improved:
                    auc += rank
        return auc / weight if weight else 0.0

    def select(self, rng: random.Random) -> str:
        self.total += 1
        scores = {}
        for name in self.names:
            uses = self.uses[name]
            if uses == 0:
                scores[name] = float("inf")
            else:
                bonus = self.exploration * math.sqrt(
                    2.0 * math.log(self.total) / uses)
                scores[name] = self.credit(name) + bonus
        top = max(scores.values())
        candidates = [n for n, s in scores.items() if s == top]
        choice = rng.choice(candidates)
        self.uses[choice] += 1
        return choice

    def report(self, name: str, improved: bool) -> None:
        self.window.append(_WindowEntry(technique=name, improved=improved))


class BanditTuner:
    """One sequential tuner: a bandit over the four techniques.

    ``step()`` proposes one point; ``feed()`` returns the evaluation to
    the owning technique and the bandit.  This is the unit both runtimes
    are built from.
    """

    def __init__(self, space: DesignSpace, rng: random.Random,
                 techniques: list[SearchTechnique] | None = None):
        self.space = space
        self.rng = rng
        self.techniques = techniques or default_techniques(space, rng)
        self.bandit = AUCBandit([t.name for t in self.techniques])
        self.best = BestTracker()
        self._by_name = {t.name: t for t in self.techniques}
        self._seed_queue: list[dict] = []

    def add_seed(self, point: dict) -> None:
        """Queue a seed point to be proposed before any technique runs."""
        self._seed_queue.append(self.space.project(point))

    def step(self) -> tuple[str, dict]:
        """Pick a technique and get its proposal (or a queued seed)."""
        if self._seed_queue:
            return ("seed", self._seed_queue.pop(0))
        name = self.bandit.select(self.rng)
        point = self._by_name[name].propose(self.best)
        return (name, self.space.project(point))

    def feed(self, technique: str, evaluation: Evaluation) -> bool:
        """Report a finished evaluation; returns True on a new best."""
        improved = self.best.update(evaluation)
        if technique != "seed":
            self._by_name[technique].observe(evaluation)
            self.bandit.report(technique, improved)
        else:
            # Seeds prime every population-based technique.
            for t in self.techniques:
                t.observe(evaluation)
        return improved
