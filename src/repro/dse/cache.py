"""Persistent on-disk evaluation cache for the DSE.

HLS estimation dominates the wall clock of every benchmark run, yet its
results are pure functions of (kernel, design point, device).  This module
gives the evaluator a durable memo: a JSON-lines store keyed by kernel
digest + canonicalized design point, so repeated benchmark runs skip
re-estimation entirely.

Design constraints (and how they are met):

* **Canonical keys** — a point is a plain ``{param: value}`` dict and two
  logically equal points may arrive with different key insertion orders
  (or with ``True`` where another tuner used ``1``).  :func:`canonical_key`
  sorts the parameters and serializes values through JSON, which keeps
  ``True``/``1``/``1.0`` distinct (they serialize to ``true``/``1``/``1.0``).
* **Atomic, durable append** — each record is one ``os.write`` to an
  ``O_APPEND`` file descriptor (taken under a shared ``flock``), followed
  by an ``fsync``: concurrent appenders lose no records, and an
  acknowledged record survives a crash.
* **Torn-write repair** — a crash mid-append leaves a final line without
  its newline terminator.  On load the store takes an exclusive ``flock``
  (so it cannot race an in-flight append), truncates an unparsable torn
  tail, and newline-terminates a parsable one; either way every complete
  record before the tear still loads.  Garbage lines elsewhere are
  skipped and counted in ``corrupt_lines``.
* **Versioned records** — every record carries the store format version
  (``"v"``).  Records from another version are *skipped with a warning*
  (counted in ``stale_records``) instead of mis-parsed; bumping
  :data:`FORMAT_VERSION` also changes the kernel digest, so new runs get
  fresh files.
* **Virtual-clock neutrality** — the store keeps the original
  ``synthesis_minutes`` of every result, so a warm-cache run charges the
  same virtual time as a cold run: persistence accelerates the *real*
  clock only and cannot change the science.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Optional

from ..hls.device import Device
from ..hls.result import HLSResult
from ..hlsc.ast import CKernel
from ..hlsc.printer import kernel_to_c

try:
    import fcntl
except ImportError:             # pragma: no cover - non-POSIX platform
    fcntl = None

LOGGER = logging.getLogger("repro.dse.cache")

#: Store format version; bumping it invalidates old stores (both through
#: the per-record ``"v"`` field and through the kernel digest).
#: v3: the digest incorporates the cost-model identity, so evaluations
#: produced under different cost models (or estimator versions) can
#: never poison each other.
FORMAT_VERSION = 3


def canonical_key(point: dict) -> str:
    """Order-independent, type-preserving key for a design point.

    Parameters are sorted by name; values keep their JSON spelling, so
    ``1``, ``1.0`` and ``True`` produce distinct keys.  NaN/Infinity
    values are rejected (they would not round-trip).
    """
    return json.dumps([[name, point[name]] for name in sorted(point)],
                      separators=(",", ":"), allow_nan=False)


def point_from_key(key: str) -> dict:
    """Inverse of :func:`canonical_key`."""
    return {name: value for name, value in json.loads(key)}


def kernel_digest(kernel: CKernel, device: Device,
                  cost_model: str = "") -> str:
    """Identity of an estimation context: C + batch + device + model.

    The digest is over the printed HLS C (which pins the full loop/op
    structure), the kernel metadata, the device's *full envelope
    identity* (:meth:`~repro.hls.device.Device.identity` — not just the
    name, so two scaled devices sharing a name can never collide), and
    the identity of the cost model that produced the numbers —
    everything that can change what an evaluation returns.
    ``cost_model`` is the model's ``identity()`` string; the empty
    default means "the analytical model, version unpinned" and exists
    for callers that only need a kernel identity, not a cache namespace.
    """
    hasher = hashlib.sha256()
    hasher.update(kernel_to_c(kernel).encode())
    hasher.update(json.dumps(kernel.metadata, sort_keys=True,
                             default=str).encode())
    hasher.update(device.identity().encode())
    hasher.update(str(FORMAT_VERSION).encode())
    if cost_model:
        hasher.update(cost_model.encode())
    return hasher.hexdigest()[:24]


def _flock(fd: int, mode: int) -> None:
    if fcntl is not None:
        fcntl.flock(fd, mode)


class CacheStore:
    """JSON-lines persistent store of HLS evaluations.

    One file per kernel digest (``<dir>/<digest>.jsonl``); each line is
    ``{"v": <format>, "key": <canonical point>, "minutes": <float>,
    "result": {...}}``.  Later records win, so re-appending a key is
    harmless.
    """

    def __init__(self, directory: os.PathLike | str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._tables: dict[str, dict[str, dict]] = {}
        self.hits = 0
        self.misses = 0
        self.appends = 0
        self.corrupt_lines = 0
        self.stale_records = 0

    # ------------------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.directory / f"{digest}.jsonl"

    def _table(self, digest: str) -> dict[str, dict]:
        table = self._tables.get(digest)
        if table is None:
            table = self._load(digest)
            self._tables[digest] = table
        return table

    def _repair_torn_tail(self, path: Path) -> None:
        """Fix a crash-torn final line in place, under an exclusive lock.

        A record is written as one ``content + newline`` write, so a file
        not ending in a newline was torn mid-append.  An unparsable tail
        is truncated away (the record never fully landed); a parsable one
        merely lost its terminator and gets it back.  The exclusive lock
        waits out any append in flight, so a concurrent writer's record
        is never mistaken for a tear.
        """
        try:
            fd = os.open(path, os.O_RDWR)
        except OSError:
            return
        try:
            _flock(fd, fcntl.LOCK_EX if fcntl is not None else 0)
            chunks = []
            while True:
                chunk = os.read(fd, 1 << 20)
                if not chunk:
                    break
                chunks.append(chunk)
            raw = b"".join(chunks)
            if not raw or raw.endswith(b"\n"):
                return
            cut = raw.rfind(b"\n") + 1
            tail = raw[cut:]
            try:
                json.loads(tail)
            except (ValueError, UnicodeDecodeError):
                self.corrupt_lines += 1
                LOGGER.warning(
                    "cache %s: truncating torn final record (%d bytes)",
                    path.name, len(tail))
                os.ftruncate(fd, cut)
            else:
                os.write(fd, b"\n")
        finally:
            if fcntl is not None:
                _flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _load(self, digest: str) -> dict[str, dict]:
        table: dict[str, dict] = {}
        path = self._path(digest)
        if not path.exists():
            return table
        self._repair_torn_tail(path)
        try:
            raw = path.read_bytes()
        except OSError:
            return table
        stale_before = self.stale_records
        for line in raw.split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                self.corrupt_lines += 1
                continue
            if (not isinstance(record, dict)
                    or not isinstance(record.get("key"), str)
                    or not isinstance(record.get("minutes"), (int, float))
                    or not isinstance(record.get("result"), dict)):
                self.corrupt_lines += 1
                continue
            if record.get("v") != FORMAT_VERSION:
                self.stale_records += 1
                continue
            table[record["key"]] = record
        if self.stale_records > stale_before:
            LOGGER.warning(
                "cache %s: skipped %d record(s) from another store format "
                "(this build writes v%d); they will be re-estimated",
                path.name, self.stale_records - stale_before,
                FORMAT_VERSION)
        return table

    # ------------------------------------------------------------------

    def size(self, digest: str) -> int:
        return len(self._table(digest))

    def contains(self, digest: str, key: str) -> bool:
        """Membership test; does not touch the hit/miss counters."""
        return key in self._table(digest)

    def get(self, digest: str, key: str
            ) -> Optional[tuple[float, HLSResult]]:
        """Stored ``(synthesis_minutes, result)`` for a point, if any."""
        record = self._table(digest).get(key)
        if record is None:
            self.misses += 1
            return None
        try:
            result = HLSResult.from_dict(record["result"])
        except (KeyError, TypeError, ValueError):
            # Schema drift in an old store: treat as absent.
            self.corrupt_lines += 1
            del self._table(digest)[key]
            self.misses += 1
            return None
        self.hits += 1
        return float(record["minutes"]), result

    def put(self, digest: str, key: str, minutes: float,
            result: HLSResult) -> None:
        """Append one record atomically+durably; update the in-memory table."""
        table = self._table(digest)   # load (and repair) before appending
        record = {"v": FORMAT_VERSION, "key": key, "minutes": minutes,
                  "result": result.to_dict()}
        data = (json.dumps(record, separators=(",", ":")) + "\n").encode()
        fd = os.open(self._path(digest),
                     os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            _flock(fd, fcntl.LOCK_SH if fcntl is not None else 0)
            os.write(fd, data)
            os.fsync(fd)
        finally:
            if fcntl is not None:
                _flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        table[key] = record
        self.appends += 1

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "directory": str(self.directory),
            "hits": self.hits,
            "misses": self.misses,
            "appends": self.appends,
            "corrupt_lines": self.corrupt_lines,
            "stale_records": self.stale_records,
        }
