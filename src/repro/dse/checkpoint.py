"""Crash-safe exploration checkpointing.

The DSE is the longest-lived process in the pipeline, so it must survive
preemption: this module journals the *complete* explorer state — the
decision-tree partitions, every bandit's sliding window and technique
populations, the stopping rules' entropy history, all RNG streams, the
virtual-clock budget accounting, and the best-so-far design — into one
atomic, versioned, schema-validated JSON file per kernel digest.

Guarantees:

* **Atomicity** — a checkpoint is written to a temp file, fsynced,
  ``os.replace``d over the previous one, and the directory entry is
  fsynced; a crash at any instant leaves either the old or the new
  checkpoint intact, never a torn file.
* **Batch-boundary semantics** — the engine snapshots only between
  batches, when the event heap is empty and no partition has an
  in-flight evaluation, so the saved state is exactly "the run up to
  round *N*".
* **Determinism under resume** — restoring the RNG streams and learner
  state replays the identical proposal sequence, and the persistent
  :class:`~repro.dse.cache.CacheStore` replays the killed batch's
  already-estimated points as store hits with their original synthesis
  minutes.  (checkpoint + cache) therefore reproduces the bit-identical
  trajectory of an uninterrupted run with zero duplicate backend
  evaluations.

Checkpoint files are JSON with the Python extensions for non-finite
floats (``Infinity`` appears wherever a QoR is infinite); they are
written and read only by this module.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from pathlib import Path
from typing import Optional

from ..errors import DSEError
from ..hls.result import HLSResult
from .bandit import AUCBandit, BanditTuner, _WindowEntry
from .evaluator import Evaluation, Evaluator
from .partition import Partition
from .space import DesignSpace
from .stopping import StoppingCriterion

#: Checkpoint format version; bumping it invalidates old checkpoints.
#: v2: samples are 5-tuples (the 5th element inlines the payload of a
#: surrogate-pruned evaluation, null for real ones) and evaluations
#: carry a ``pruned`` flag; the identity section names the cost model.
CHECKPOINT_VERSION = 2

#: ``kind`` marker distinguishing a checkpoint from other JSON files.
CHECKPOINT_KIND = "s2fa-dse-checkpoint"


# ----------------------------------------------------------------------
# RNG streams
# ----------------------------------------------------------------------

def rng_state_to_json(rng: random.Random) -> list:
    """JSON-encodable form of ``random.Random.getstate()``."""
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_state_from_json(data) -> tuple:
    """Inverse of :func:`rng_state_to_json` (feeds ``setstate``)."""
    if (not isinstance(data, (list, tuple)) or len(data) != 3
            or not isinstance(data[1], (list, tuple))):
        raise DSEError(f"malformed RNG state in checkpoint: {data!r}")
    return (data[0], tuple(data[1]), data[2])


# ----------------------------------------------------------------------
# Space / identity fingerprints
# ----------------------------------------------------------------------

def space_fingerprint(space: DesignSpace) -> str:
    """Stable digest of a design space's parameter lists."""
    payload = [[p.name, list(p.values), p.kind, p.loop]
               for p in space.parameters]
    return hashlib.sha256(
        json.dumps(payload, separators=(",", ":"),
                   default=str).encode()).hexdigest()[:24]


# ----------------------------------------------------------------------
# Evaluations (the evaluator's in-run cache)
# ----------------------------------------------------------------------

def evaluation_to_json(evaluation: Evaluation) -> dict:
    return {
        "point": dict(evaluation.point),
        "qor": evaluation.qor,
        "minutes": evaluation.minutes,
        "cached": evaluation.cached,
        "pruned": evaluation.pruned,
        "result": evaluation.result.to_dict(),
    }


def evaluation_from_json(data: dict) -> Evaluation:
    try:
        return Evaluation(
            point=dict(data["point"]), qor=data["qor"],
            result=HLSResult.from_dict(data["result"]),
            minutes=data["minutes"], cached=bool(data.get("cached")),
            pruned=bool(data.get("pruned")))
    except (KeyError, TypeError, ValueError) as exc:
        raise DSEError(
            f"malformed evaluation in checkpoint: {exc}") from exc


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------

def partition_to_json(partition: Partition) -> dict:
    return {
        "constraints": [[name, list(values)]
                        for name, values in partition.constraints.items()],
        "predicted_qor": partition.predicted_qor,
        "rules": list(partition.rules),
        "index": partition.index,
    }


def partition_from_json(data: dict) -> Partition:
    try:
        return Partition(
            constraints={name: tuple(values)
                         for name, values in data["constraints"]},
            predicted_qor=data["predicted_qor"],
            rules=list(data["rules"]), index=data["index"])
    except (KeyError, TypeError, ValueError) as exc:
        raise DSEError(
            f"malformed partition in checkpoint: {exc}") from exc


# ----------------------------------------------------------------------
# Search-technique populations
#
# Each codec pair captures exactly the mutable attributes the technique
# evolves during a run; constructor-time randomness is irrelevant because
# the tuner's RNG stream is restored afterwards.
# ----------------------------------------------------------------------

def _dump_greedy(t) -> dict:
    return {}


def _load_greedy(t, data: dict) -> None:
    pass


def _dump_de(t) -> dict:
    return {
        "members": [{"indices": list(m.indices), "qor": m.qor,
                     "pending": m.pending} for m in t.members],
        "cursor": t._cursor,
        "initializing": t._initializing,
    }


def _load_de(t, data: dict) -> None:
    from .techniques.de import _Member

    t.members = [
        _Member(indices=list(m["indices"]), qor=m["qor"],
                pending=m["pending"])
        for m in data["members"]
    ]
    t._cursor = data["cursor"]
    t._initializing = data["initializing"]


def _dump_pso(t) -> dict:
    return {
        "particles": [
            {"position": list(p.position), "velocity": list(p.velocity),
             "best_position": list(p.best_position),
             "best_qor": p.best_qor, "pending": p.pending}
            for p in t.particles
        ],
        "cursor": t._cursor,
        "initializing": t._initializing,
    }


def _load_pso(t, data: dict) -> None:
    from .techniques.pso import _Particle

    t.particles = [
        _Particle(position=list(p["position"]),
                  velocity=list(p["velocity"]),
                  best_position=list(p["best_position"]),
                  best_qor=p["best_qor"], pending=p["pending"])
        for p in data["particles"]
    ]
    t._cursor = data["cursor"]
    t._initializing = data["initializing"]


def _dump_sa(t) -> dict:
    return {
        "temperature": t.temperature,
        "current": list(t.current),
        "current_qor": t.current_qor,
        "pending": t._pending,
        "pending_indices": list(getattr(t, "_pending_indices", None) or [])
        or None,
    }


def _load_sa(t, data: dict) -> None:
    t.temperature = data["temperature"]
    t.current = list(data["current"])
    t.current_qor = data["current_qor"]
    t._pending = data["pending"]
    if data.get("pending_indices") is not None:
        t._pending_indices = list(data["pending_indices"])


_TECHNIQUE_CODECS = {
    "greedy-mutation": (_dump_greedy, _load_greedy),
    "differential-evolution": (_dump_de, _load_de),
    "particle-swarm": (_dump_pso, _load_pso),
    "simulated-annealing": (_dump_sa, _load_sa),
}


# ----------------------------------------------------------------------
# Bandit tuners
# ----------------------------------------------------------------------

def tuner_to_json(tuner: BanditTuner) -> dict:
    techniques = {}
    for t in tuner.techniques:
        dump, _ = _TECHNIQUE_CODECS.get(t.name, (_dump_greedy, None))
        techniques[t.name] = dump(t)
    return {
        "rng": rng_state_to_json(tuner.rng),
        "seed_queue": [dict(point) for point in tuner._seed_queue],
        "best": {"point": tuner.best.point, "qor": tuner.best.qor},
        "bandit": {
            "window": [[e.technique, e.improved]
                       for e in tuner.bandit.window],
            "uses": dict(tuner.bandit.uses),
            "total": tuner.bandit.total,
            "exploration": tuner.bandit.exploration,
        },
        "techniques": techniques,
    }


def restore_tuner(tuner: BanditTuner, data: dict) -> None:
    """Overwrite a freshly constructed tuner with checkpointed state."""
    try:
        names = {t.name for t in tuner.techniques}
        saved = set(data["techniques"])
        if names != saved:
            raise DSEError(
                f"checkpoint technique portfolio {sorted(saved)} does not "
                f"match this build's {sorted(names)}")
        tuner.rng.setstate(rng_state_from_json(data["rng"]))
        tuner._seed_queue = [dict(point) for point in data["seed_queue"]]
        tuner.best.point = (dict(data["best"]["point"])
                            if data["best"]["point"] is not None else None)
        tuner.best.qor = data["best"]["qor"]
        bandit: AUCBandit = tuner.bandit
        bandit.window.clear()
        for technique, improved in data["bandit"]["window"]:
            bandit.window.append(_WindowEntry(technique=technique,
                                              improved=improved))
        bandit.uses = {name: int(count)
                       for name, count in data["bandit"]["uses"].items()}
        bandit.total = int(data["bandit"]["total"])
        bandit.exploration = data["bandit"]["exploration"]
        for t in tuner.techniques:
            _, load = _TECHNIQUE_CODECS.get(t.name, (None, _load_greedy))
            load(t, data["techniques"][t.name])
    except DSEError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise DSEError(f"malformed tuner state in checkpoint: "
                       f"{type(exc).__name__}: {exc}") from exc


# ----------------------------------------------------------------------
# Stopping rules
# ----------------------------------------------------------------------

def stopping_to_json(stopping: StoppingCriterion) -> dict:
    return {
        "class": type(stopping).__name__,
        "state": dict(stopping.__dict__),
    }


def restore_stopping(stopping: StoppingCriterion, data: dict) -> None:
    """Overwrite a factory-fresh stopping rule with checkpointed state."""
    try:
        if data["class"] != type(stopping).__name__:
            raise DSEError(
                f"checkpoint stopping rule {data['class']!r} does not "
                f"match this run's {type(stopping).__name__!r}")
        stopping.__dict__.update(data["state"])
    except DSEError:
        raise
    except (KeyError, TypeError) as exc:
        raise DSEError(f"malformed stopping state in checkpoint: "
                       f"{exc}") from exc


# ----------------------------------------------------------------------
# Schema validation
# ----------------------------------------------------------------------

def validate_checkpoint(payload) -> list[str]:
    """Structural problems of a checkpoint payload (empty = valid).

    A version mismatch is reported as a problem too: old checkpoints are
    rejected, never mis-parsed.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return [f"checkpoint is {type(payload).__name__}, expected object"]
    if payload.get("kind") != CHECKPOINT_KIND:
        problems.append(f"kind is {payload.get('kind')!r}, "
                        f"expected {CHECKPOINT_KIND!r}")
    if payload.get("version") != CHECKPOINT_VERSION:
        problems.append(
            f"checkpoint version {payload.get('version')!r} is not "
            f"supported (this build reads version {CHECKPOINT_VERSION})")
        return problems      # do not inspect an alien schema further
    if not isinstance(payload.get("identity"), dict):
        problems.append("identity is missing or not an object")
    rng = payload.get("rng")
    if not (isinstance(rng, list) and len(rng) == 3
            and isinstance(rng[1], list)):
        problems.append("rng stream is missing or malformed")
    for name in ("rounds", "sequence"):
        if not isinstance(payload.get(name), int):
            problems.append(f"{name} is missing or not an integer")
    states = payload.get("states")
    if not isinstance(states, list) or not states:
        problems.append("states is missing or empty")
        states = []
    for i, state in enumerate(states):
        if not isinstance(state, dict):
            problems.append(f"states[{i}] is not an object")
            continue
        for name in ("partition", "tuner", "stopping"):
            if not isinstance(state.get(name), dict):
                problems.append(f"states[{i}].{name} is missing")
    for name in ("pending", "running"):
        ids = payload.get(name)
        if (not isinstance(ids, list)
                or not all(isinstance(i, int) and 0 <= i < len(states)
                           for i in ids)):
            problems.append(f"{name} is missing or indexes out of range")
    samples = payload.get("samples")
    if not isinstance(samples, list) or not all(
            isinstance(s, list) and len(s) == 5
            and isinstance(s[0], (int, float)) and isinstance(s[1], int)
            and isinstance(s[2], str) and isinstance(s[3], bool)
            and (s[4] is None or isinstance(s[4], dict))
            for s in samples):
        problems.append("samples is missing or malformed")
    cache = payload.get("cache")
    if not isinstance(cache, list) or not all(
            isinstance(e, dict) and isinstance(e.get("point"), dict)
            and isinstance(e.get("result"), dict)
            for e in cache or []):
        problems.append("cache is missing or malformed")
    evaluator = payload.get("evaluator")
    if not isinstance(evaluator, dict) or not all(
            isinstance(evaluator.get(k), int)
            for k in ("evaluations", "cache_hits", "store_hits",
                      "batches", "batched_points", "max_batch")):
        problems.append("evaluator counters are missing or malformed")
    return problems


# ----------------------------------------------------------------------
# Evaluator counters (budget accounting carried across a resume)
# ----------------------------------------------------------------------

def evaluator_counters(evaluator: Evaluator) -> dict:
    return {
        "evaluations": evaluator.evaluations,
        "cache_hits": evaluator.cache_hits,
        "store_hits": evaluator.store_hits,
        "batches": evaluator.batches,
        "batched_points": evaluator.batched_points,
        "max_batch": evaluator.max_batch,
    }


def restore_evaluator_counters(evaluator: Evaluator, data: dict) -> None:
    evaluator.evaluations = data["evaluations"]
    evaluator.cache_hits = data["cache_hits"]
    evaluator.store_hits = data["store_hits"]
    evaluator.batches = data["batches"]
    evaluator.batched_points = data["batched_points"]
    evaluator.max_batch = data["max_batch"]


# ----------------------------------------------------------------------
# Atomic on-disk store
# ----------------------------------------------------------------------

def atomic_write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` so a crash leaves either the old or new file."""
    data = json.dumps(payload, separators=(",", ":")).encode()
    tmp = path.with_name(path.name + ".tmp")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    dir_fd = os.open(path.parent, os.O_RDONLY)
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class CheckpointStore:
    """One checkpoint file per kernel digest in a directory.

    ``save`` is atomic and overwrites the previous checkpoint for the
    digest; ``load`` validates the schema and raises
    :class:`~repro.errors.DSEError` on corruption or a version mismatch
    rather than resuming from garbage; ``discard`` removes the file once
    a run completes, so a later ``--resume`` starts fresh.
    """

    def __init__(self, directory: os.PathLike | str):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.saves = 0
        self.loads = 0

    def path(self, digest: str) -> Path:
        return self.directory / f"{digest}.ckpt.json"

    def has(self, digest: str) -> bool:
        return self.path(digest).exists()

    def save(self, digest: str, payload: dict) -> Path:
        target = self.path(digest)
        atomic_write_json(target, payload)
        self.saves += 1
        return target

    def load(self, digest: str) -> Optional[dict]:
        """The validated checkpoint payload, or ``None`` if absent."""
        target = self.path(digest)
        if not target.exists():
            return None
        try:
            payload = json.loads(target.read_text())
        except (OSError, ValueError) as exc:
            raise DSEError(
                f"checkpoint {target} is corrupt and cannot be resumed "
                f"({exc}); delete it to start over") from exc
        problems = validate_checkpoint(payload)
        if problems:
            raise DSEError(
                f"checkpoint {target} failed validation: "
                + "; ".join(problems))
        self.loads += 1
        return payload

    def discard(self, digest: str) -> None:
        try:
            os.unlink(self.path(digest))
        except FileNotFoundError:
            pass
