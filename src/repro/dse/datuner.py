"""A DATuner-style dynamically partitioned explorer (comparison point).

Section 4.3 contrasts S2FA's *static* partitioning with DATuner
[Xu et al., FPGA'17], which "dynamically partition[s] the design space and
allocat[es] more CPU cores to the partition with higher QoR", at the cost
of "several iterations for sampling at the beginning of the DSE process
for every partition".

This module implements that flow faithfully enough to quantify the
trade-off on our kernels:

1. start with the whole space as one partition;
2. every epoch, rank partitions by their recent best QoR;
3. split the most promising partition on a structural factor (doubling
   focus there) and give the freed workers to the best partitions;
4. every *new* partition must first spend ``setup_samples`` random
   evaluations characterizing itself before its bandit tuner starts
   exploiting — the set-up time S2FA's offline rules avoid.

The explorer runs to the full time limit (DATuner terminates on a fixed
time budget).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from .bandit import BanditTuner
from .evaluator import Evaluator, ExplorationTrace
from .result import DSERun, PartitionReport
from .space import DesignSpace, Parameter
from .vclock import WorkerPool

DEFAULT_TIME_LIMIT_MINUTES = 240.0


@dataclass
class _DynamicPartition:
    constraints: dict[str, tuple]
    tuner: BanditTuner
    rng: random.Random
    setup_left: int
    index: int
    evaluations: int = 0
    best_qor: float = float("inf")
    start_minutes: float = 0.0
    end_minutes: float = 0.0
    rules: list[str] = field(default_factory=list)

    def describe(self) -> str:
        return " AND ".join(self.rules) if self.rules else "(whole space)"


class DATunerEngine:
    """Dynamically partitioned parallel exploration."""

    def __init__(self, evaluator: Evaluator, space: DesignSpace, *,
                 seed: int = 0, workers: int = 8,
                 time_limit_minutes: float = DEFAULT_TIME_LIMIT_MINUTES,
                 setup_samples: int = 5,
                 split_every: int = 16):
        self.evaluator = evaluator
        self.space = space
        self.rng = random.Random(seed)
        self.workers = workers
        self.time_limit = time_limit_minutes
        self.setup_samples = setup_samples
        self.split_every = split_every
        self._partition_counter = 0

    # ------------------------------------------------------------------

    def _splittable_params(self, constraints: dict) -> list[Parameter]:
        params = []
        for p in self.space.parameters:
            if p.kind not in ("pipeline", "parallel"):
                continue
            allowed = constraints.get(p.name, p.values)
            if len(allowed) > 1:
                params.append(p)
        return params

    def _make_partition(self, constraints: dict,
                        rules: list[str]) -> _DynamicPartition:
        subspace = self.space.restrict(constraints) if constraints \
            else self.space
        rng = random.Random(self.rng.randrange(2**31))
        tuner = BanditTuner(subspace, rng)
        partition = _DynamicPartition(
            constraints=dict(constraints), tuner=tuner, rng=rng,
            setup_left=self.setup_samples,
            index=self._partition_counter, rules=list(rules))
        self._partition_counter += 1
        return partition

    def _split(self, partition: _DynamicPartition
               ) -> Optional[tuple[_DynamicPartition, _DynamicPartition]]:
        candidates = self._splittable_params(partition.constraints)
        if not candidates:
            return None
        param = partition.rng.choice(candidates)
        allowed = list(partition.constraints.get(param.name, param.values))
        half = max(1, len(allowed) // 2)
        left_vals, right_vals = tuple(allowed[:half]), tuple(allowed[half:])
        left = dict(partition.constraints)
        left[param.name] = left_vals
        right = dict(partition.constraints)
        right[param.name] = right_vals
        return (
            self._make_partition(
                left, partition.rules + [f"{param.name} in {left_vals}"]),
            self._make_partition(
                right, partition.rules + [f"{param.name} in {right_vals}"]),
        )

    # ------------------------------------------------------------------

    def run(self) -> DSERun:
        pool = WorkerPool(self.workers)
        trace = ExplorationTrace()
        global_best = {"qor": float("inf"), "point": None, "eval": None}
        first = {"qor": float("inf"), "seen": False}
        active: list[_DynamicPartition] = [self._make_partition({}, [])]
        retired: list[_DynamicPartition] = []
        #: round-robin queue of partitions wanting worker time
        ready: deque = deque(active)
        evals_since_split = {"count": 0}

        def next_point(partition: _DynamicPartition):
            if partition.setup_left > 0:
                partition.setup_left -= 1
                subspace = partition.tuner.space
                return ("setup", subspace.random_point(partition.rng))
            return partition.tuner.step()

        def submit(partition: _DynamicPartition) -> None:
            def job():
                name, point = next_point(partition)
                evaluation = self.evaluator.evaluate(point)
                duration = 0.05 if evaluation.cached else evaluation.minutes

                def on_done(now: float) -> None:
                    partition.evaluations += 1
                    if not first["seen"]:
                        first["qor"] = evaluation.qor
                        first["seen"] = True
                    if name != "setup":
                        partition.tuner.feed(name, evaluation)
                    else:
                        partition.tuner.best.update(evaluation)
                    partition.best_qor = min(partition.best_qor,
                                             evaluation.qor)
                    if evaluation.qor < global_best["qor"]:
                        global_best["qor"] = evaluation.qor
                        global_best["point"] = dict(evaluation.point)
                        global_best["eval"] = evaluation
                    trace.record(now, global_best["qor"],
                                 self.evaluator.evaluations)
                    evals_since_split["count"] += 1
                    if evals_since_split["count"] >= self.split_every \
                            and active:
                        evals_since_split["count"] = 0
                        best = min(active, key=lambda p: p.best_qor)
                        children = self._split(best)
                        if children is not None:
                            active.remove(best)
                            best.end_minutes = now
                            retired.append(best)
                            for child in children:
                                child.start_minutes = now
                                active.append(child)
                                ready.append(child)
                    if now < self.time_limit:
                        # Allocate the freed worker to the best ready
                        # partition (more cores to higher QoR).
                        if ready:
                            ready.rotate(-1)
                        pool_target = partition
                        if partition not in active and active:
                            pool_target = min(active,
                                              key=lambda p: p.best_qor)
                        submit(pool_target)
                    else:
                        partition.end_minutes = now

                return duration, on_done

            pool.submit(job)

        for _ in range(self.workers):
            submit(active[0] if len(active) == 1
                   else self.rng.choice(active))
        end = pool.run(until=self.time_limit)

        for partition in active + retired:
            if partition.end_minutes == 0.0:
                partition.end_minutes = end
        reports = [
            PartitionReport(
                index=p.index, description=p.describe(),
                evaluations=p.evaluations, best_qor=p.best_qor,
                stopped_early=False, start_minutes=p.start_minutes,
                end_minutes=p.end_minutes)
            for p in retired + active if p.evaluations
        ]
        best_eval = global_best["eval"]
        return DSERun(
            name="datuner",
            trace=trace,
            best_point=global_best["point"],
            best_qor=global_best["qor"],
            best_result=best_eval.result if best_eval else None,
            evaluations=self.evaluator.evaluations,
            termination_minutes=end,
            first_qor=first["qor"],
            partitions=reports,
            space_size=self.space.size(),
        )
