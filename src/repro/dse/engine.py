"""The S2FA parallel learning-based DSE engine (Fig. 2, solid lines in
Fig. 3).

Pipeline per run:

1. identify the design space (Table 1),
2. statically partition it with the decision tree (Section 4.3.1),
3. give each partition its own bandit tuner with the two generated seeds
   (Section 4.3.2),
4. schedule partitions onto the eight workers first-come-first-served on
   the virtual clock (each partition's tuner is inherently sequential, so
   one partition occupies one worker),
5. terminate each partition by the Shannon-entropy criterion
   (Section 4.3.3) or the global time limit, whichever first.

Scheduling is round-based: every round, each running partition proposes
its next candidate, the whole candidate set goes to the evaluator as one
batch (which a :class:`~repro.dse.parallel.ParallelEvaluator` computes on
a real process pool), and the results are merged back onto the virtual
clock at each partition's own completion time.  Because a partition's
tuner sequence depends only on its own history and evaluation is a pure
function of the point, the reported DSE minutes are identical to the
serial path at any ``jobs`` setting.

Crash safety: with a :class:`~repro.dse.checkpoint.CheckpointStore` the
engine journals its complete state at every batch boundary (the event
heap is empty and no partition is in flight there), and
:meth:`S2FAEngine.resume` restores a killed run so that (cache +
checkpoint) replays the bit-identical trajectory of an uninterrupted
run.  :meth:`S2FAEngine.request_stop` arms a graceful stop: the current
batch finishes, the checkpoint is flushed, and the run raises
:class:`~repro.errors.ExplorationInterrupted`.
"""

from __future__ import annotations

import heapq
import math
import os
import random
import signal
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import DSEError, ExplorationInterrupted
from ..hls.estimator import estimate
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER
from .bandit import BanditTuner
from .checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    CheckpointStore,
    evaluation_from_json,
    evaluation_to_json,
    evaluator_counters,
    partition_from_json,
    partition_to_json,
    restore_evaluator_counters,
    restore_stopping,
    restore_tuner,
    rng_state_from_json,
    rng_state_to_json,
    space_fingerprint,
    stopping_to_json,
    tuner_to_json,
)
from .cache import canonical_key
from .evaluator import Evaluation, Evaluator, ExplorationTrace
from .partition import Partition, build_partitions
from .result import DSERun, PartitionReport
from .seeds import seeds_for
from .space import DesignSpace
from .stopping import EntropyStopping, StoppingCriterion

DEFAULT_TIME_LIMIT_MINUTES = 240.0

#: Virtual minutes charged for re-visiting an already-evaluated point
#: (the tuner only pays a bookkeeping cost, not an HLS run).
CACHED_EVALUATION_MINUTES = 0.05

#: Fault-injection hook for the chaos harness: ``boundary:N`` hard-kills
#: the process right after checkpoint N is flushed, ``mid:N`` hard-kills
#: after batch N is evaluated but *before* its merge/checkpoint, and
#: ``stop:N`` requests a graceful stop after batch N (exercising the
#: SIGINT/SIGTERM path deterministically).
CHAOS_KILL_ENV = "S2FA_CHAOS_KILL"


def _parse_chaos(spec: Optional[str]) -> Optional[tuple[str, int]]:
    if not spec:
        return None
    kind, _, value = spec.partition(":")
    if kind not in ("boundary", "mid", "stop") or not value.isdigit():
        raise DSEError(
            f"bad {CHAOS_KILL_ENV} spec {spec!r}; expected "
            f"'boundary:N', 'mid:N', or 'stop:N'")
    return kind, int(value)


@dataclass
class _PartitionState:
    partition: Partition
    tuner: BanditTuner
    stopping: StoppingCriterion
    evaluations: int = 0
    stopped_early: bool = False
    start_minutes: float = 0.0
    end_minutes: float = 0.0
    started: bool = False
    #: virtual time at which this partition's worker becomes free
    free_at: float = 0.0
    #: (technique, Evaluation) currently occupying the worker
    in_flight: Optional[tuple] = None


@dataclass
class _RunState:
    """Everything the main loop mutates (and the checkpoint captures)."""

    states: list[_PartitionState]
    pending: deque
    running: list[_PartitionState] = field(default_factory=list)
    #: completed evaluations as (virtual time, dispatch order, eval)
    samples: list[tuple[float, int, Evaluation]] = field(
        default_factory=list)
    truncated: bool = False
    last_event: float = 0.0
    sequence: int = 0
    rounds: int = 0
    resumed: bool = False


class S2FAEngine:
    """Runs the full S2FA DSE for one compiled kernel."""

    def __init__(self, evaluator: Evaluator, space: DesignSpace, *,
                 seed: int = 0, workers: int = 8,
                 time_limit_minutes: float = DEFAULT_TIME_LIMIT_MINUTES,
                 max_partitions: int = 8,
                 use_partitioning: bool = True,
                 use_seeds: bool = True,
                 stopping_factory: Optional[
                     Callable[[], StoppingCriterion]] = None,
                 checkpoint_store: Optional[CheckpointStore] = None,
                 tracer=NULL_TRACER):
        self.evaluator = evaluator
        self.space = space
        self.seed = seed
        self.rng = random.Random(seed)
        self.workers = workers
        self.time_limit = time_limit_minutes
        self.max_partitions = max_partitions
        self.use_partitioning = use_partitioning
        self.use_seeds = use_seeds
        self.stopping_factory = stopping_factory or EntropyStopping
        self.checkpoint_store = checkpoint_store
        self.tracer = tracer
        self._stop_requested = False
        self._chaos = _parse_chaos(os.environ.get(CHAOS_KILL_ENV))

    # ------------------------------------------------------------------

    def _probe(self, point: dict) -> float:
        """Offline rule characterization: model-only, no virtual time."""
        config = DesignConfig.from_point(point)
        result = estimate(self.evaluator.compiled.kernel, config,
                          self.evaluator.device, tracer=self.tracer)
        return result.normalized_cycles

    def _make_partitions(self) -> list[Partition]:
        if not self.use_partitioning:
            return [Partition(constraints={}, predicted_qor=0.0, index=0)]
        with self.tracer.span("dse.partition") as span:
            partitions = build_partitions(
                self.space, self._probe, self.rng,
                max_partitions=self.max_partitions,
                samples=max(96, 12 * self.max_partitions))
            span.set(partitions=len(partitions))
        return partitions

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Arm a graceful stop (signal-handler safe).

        The in-flight batch finishes, its results are merged, the
        checkpoint is flushed, and the run raises
        :class:`~repro.errors.ExplorationInterrupted`.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self) -> DSERun:
        """Execute the exploration (traced as one ``dse.run`` span)."""
        return self._execute(resume=False)

    def resume(self) -> DSERun:
        """Continue a checkpointed exploration to completion.

        Raises :class:`~repro.errors.DSEError` when no checkpoint exists
        for this kernel digest or the checkpoint fails validation or does
        not match this engine's configuration.
        """
        return self._execute(resume=True)

    def _execute(self, resume: bool) -> DSERun:
        with self.tracer.span(
                "dse.run", space_size=self.space.size(),
                workers=self.workers,
                time_limit_minutes=self.time_limit) as root:
            if resume:
                if self.checkpoint_store is None:
                    raise DSEError(
                        "resume requested but the engine has no "
                        "checkpoint store")
                payload = self.checkpoint_store.load(
                    self.evaluator.kernel_digest)
                if payload is None:
                    raise DSEError(
                        f"no checkpoint for kernel digest "
                        f"{self.evaluator.kernel_digest} in "
                        f"{self.checkpoint_store.directory}")
                rs = self._restore_state(payload)
                self.tracer.metrics.incr("dse.checkpoint.resumes")
                root.set(resumed=True, resumed_at_round=rs.rounds)
            else:
                rs = self._fresh_state()
            self._loop(rs)
            run = self._finalize(rs)
            root.set(evaluations=run.evaluations,
                     termination_minutes=run.termination_minutes)
            if math.isfinite(run.best_qor):
                root.set(best_qor=run.best_qor)
            stats = run.evaluator_stats
            if stats:
                self.tracer.metrics.gauge("dse.cache.hit_rate",
                                          stats.get("hit_rate", 0.0))
        return run

    # ------------------------------------------------------------------
    # State construction / restoration
    # ------------------------------------------------------------------

    def _fresh_state(self) -> _RunState:
        partitions = self._make_partitions()
        states: list[_PartitionState] = []
        for partition in partitions:
            subspace = partition.subspace(self.space)
            tuner = BanditTuner(subspace, random.Random(
                self.rng.randrange(2**31)))
            if self.use_seeds:
                for seed_point in seeds_for(subspace):
                    tuner.add_seed(seed_point)
            else:
                tuner.add_seed(subspace.random_point(self.rng))
            states.append(_PartitionState(
                partition=partition, tuner=tuner,
                stopping=self.stopping_factory()))
        rs = _RunState(states=states, pending=deque(states))
        for _ in range(min(self.workers, len(rs.pending))):
            self._start_partition(rs, 0.0)
        return rs

    def _identity(self) -> dict:
        """What a checkpoint must agree with to be resumable here."""
        return {
            "kernel_digest": self.evaluator.kernel_digest,
            "space": space_fingerprint(self.space),
            "seed": self.seed,
            "workers": self.workers,
            "time_limit_minutes": self.time_limit,
            "max_partitions": self.max_partitions,
            "use_partitioning": self.use_partitioning,
            "use_seeds": self.use_seeds,
            "stopping": type(self.stopping_factory()).__name__,
            "frequency_aware": bool(
                getattr(self.evaluator, "frequency_aware", True)),
        }

    def _snapshot(self, rs: _RunState) -> dict:
        """Checkpoint payload for a batch boundary (nothing in flight)."""
        assert all(s.in_flight is None for s in rs.states), \
            "checkpoint requested while evaluations are in flight"
        index = {id(s): i for i, s in enumerate(rs.states)}
        return {
            "kind": CHECKPOINT_KIND,
            "version": CHECKPOINT_VERSION,
            "identity": self._identity(),
            "rng": rng_state_to_json(self.rng),
            "rounds": rs.rounds,
            "sequence": rs.sequence,
            "truncated": rs.truncated,
            "last_event": rs.last_event,
            "states": [
                {
                    "partition": partition_to_json(s.partition),
                    "tuner": tuner_to_json(s.tuner),
                    "stopping": stopping_to_json(s.stopping),
                    "evaluations": s.evaluations,
                    "stopped_early": s.stopped_early,
                    "start_minutes": s.start_minutes,
                    "end_minutes": s.end_minutes,
                    "started": s.started,
                    "free_at": s.free_at,
                }
                for s in rs.states
            ],
            "pending": [index[id(s)] for s in rs.pending],
            "running": [index[id(s)] for s in rs.running],
            "samples": [[finish, order, canonical_key(e.point), e.cached]
                        for finish, order, e in rs.samples],
            "cache": [evaluation_to_json(e)
                      for e in self.evaluator.cache_snapshot()],
            "evaluator": evaluator_counters(self.evaluator),
        }

    def _restore_state(self, payload: dict) -> _RunState:
        identity = self._identity()
        saved = payload.get("identity", {})
        mismatched = sorted(
            key for key in set(identity) | set(saved)
            if identity.get(key) != saved.get(key))
        if mismatched:
            detail = ", ".join(
                f"{key}: checkpoint={saved.get(key)!r} "
                f"run={identity.get(key)!r}" for key in mismatched)
            raise DSEError(
                f"checkpoint does not match this run's configuration "
                f"({detail}); start a fresh run or restore the original "
                f"settings")

        states: list[_PartitionState] = []
        for sdata in payload["states"]:
            partition = partition_from_json(sdata["partition"])
            subspace = partition.subspace(self.space)
            tuner = BanditTuner(subspace, random.Random(0))
            restore_tuner(tuner, sdata["tuner"])
            stopping = self.stopping_factory()
            restore_stopping(stopping, sdata["stopping"])
            states.append(_PartitionState(
                partition=partition, tuner=tuner, stopping=stopping,
                evaluations=sdata["evaluations"],
                stopped_early=sdata["stopped_early"],
                start_minutes=sdata["start_minutes"],
                end_minutes=sdata["end_minutes"],
                started=sdata["started"],
                free_at=sdata["free_at"]))

        cache = {}
        for entry in payload["cache"]:
            evaluation = evaluation_from_json(entry)
            cache[canonical_key(evaluation.point)] = evaluation
        self.evaluator.prime_cache(cache.values())
        restore_evaluator_counters(self.evaluator, payload["evaluator"])

        samples: list[tuple[float, int, Evaluation]] = []
        for finish, order, key, cached in payload["samples"]:
            base = cache.get(key)
            if base is None:
                raise DSEError(
                    f"checkpoint sample references point {key} missing "
                    f"from its own cache section")
            samples.append((finish, order, Evaluation(
                point=dict(base.point), qor=base.qor, result=base.result,
                minutes=(CACHED_EVALUATION_MINUTES if cached
                         else base.minutes),
                cached=cached)))

        self.rng.setstate(rng_state_from_json(payload["rng"]))
        return _RunState(
            states=states,
            pending=deque(states[i] for i in payload["pending"]),
            running=[states[i] for i in payload["running"]],
            samples=samples,
            truncated=payload["truncated"],
            last_event=payload["last_event"],
            sequence=payload["sequence"],
            rounds=payload["rounds"],
            resumed=True)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _start_partition(self, rs: _RunState, at: float) -> None:
        state = rs.pending.popleft()
        state.started = True
        state.start_minutes = at
        state.free_at = at
        rs.running.append(state)

    def _retire(self, rs: _RunState, state: _PartitionState,
                at: float) -> None:
        state.end_minutes = at
        rs.running.remove(state)

    def _write_checkpoint(self, rs: _RunState):
        if self.checkpoint_store is None:
            return None
        path = self.checkpoint_store.save(self.evaluator.kernel_digest,
                                          self._snapshot(rs))
        self.tracer.metrics.incr("dse.checkpoint.writes")
        return path

    def _chaos_fire(self, kind: str, round_index: int) -> None:
        if self._chaos != (kind, round_index):
            return
        if kind == "stop":
            self.request_stop()
            return
        os.kill(os.getpid(), signal.SIGKILL)

    def _loop(self, rs: _RunState) -> None:
        events: list[tuple[float, int, _PartitionState]] = []
        while rs.running:
            # Dispatch: every free partition proposes its next candidate;
            # the whole round goes to the evaluator as one batch.
            with self.tracer.span("dse.batch", round=rs.rounds) as bspan:
                proposals = []
                for state in rs.running:
                    if state.in_flight is not None:
                        continue
                    with self.tracer.span(
                            "dse.propose",
                            partition=state.partition.index) as pspan:
                        name, point = state.tuner.step()
                        pspan.set(technique=name)
                    proposals.append((state, name, point))
                evaluations = self.evaluator.evaluate_batch(
                    [point for _, _, point in proposals])
                bspan.set(
                    proposals=len(proposals),
                    cached=sum(1 for e in evaluations if e.cached),
                    techniques=",".join(sorted(
                        {name for _, name, _ in proposals})))
                self.tracer.metrics.incr("dse.batches")
            rs.rounds += 1
            self._chaos_fire("mid", rs.rounds)
            self._chaos_fire("stop", rs.rounds)
            for (state, name, _), evaluation in zip(proposals,
                                                    evaluations):
                duration = CACHED_EVALUATION_MINUTES \
                    if evaluation.cached else evaluation.minutes
                state.in_flight = (name, evaluation)
                rs.sequence += 1
                heapq.heappush(
                    events,
                    (state.free_at + duration, rs.sequence, state))

            # Merge: replay completions in virtual-time order; partitions
            # freed mid-round (early stop starts a pending partition at
            # that completion time) join the next round's batch.
            while events:
                finish, order, state = heapq.heappop(events)
                name, evaluation = state.in_flight
                state.in_flight = None
                if finish > self.time_limit:
                    # The run ends before this evaluation completes; the
                    # work is discarded, exactly like the serial clock.
                    rs.truncated = True
                    self._retire(rs, state, self.time_limit)
                    continue
                rs.last_event = max(rs.last_event, finish)
                state.free_at = finish
                state.evaluations += 1
                rs.samples.append((finish, order, evaluation))
                state.tuner.feed(name, evaluation)
                should_stop = state.stopping.observe(
                    evaluation.point, evaluation.qor)
                if should_stop:
                    state.stopped_early = True
                if should_stop or finish >= self.time_limit:
                    self._retire(rs, state, finish)
                    if rs.pending:
                        self._start_partition(rs, finish)

            # Batch boundary: the event heap is drained and nothing is in
            # flight — journal the complete state, then honor any stop
            # request now that the checkpoint covers this round.
            checkpoint_path = self._write_checkpoint(rs)
            self._chaos_fire("boundary", rs.rounds)
            if self._stop_requested and rs.running:
                where = (f"; checkpoint at {checkpoint_path} "
                         f"(resume with --resume)"
                         if checkpoint_path is not None
                         else " (checkpointing disabled: progress beyond "
                              "the persistent cache is lost)")
                raise ExplorationInterrupted(
                    f"exploration interrupted after {rs.rounds} "
                    f"batches{where}",
                    checkpoint_path=checkpoint_path, rounds=rs.rounds)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def _finalize(self, rs: _RunState) -> DSERun:
        end = self.time_limit if rs.truncated else rs.last_event

        # Rebuild the best-so-far trajectory in virtual-time order (the
        # batched rounds complete out of order across rounds).
        rs.samples.sort(key=lambda s: (s[0], s[1]))
        trace = ExplorationTrace()
        global_best = {"qor": float("inf"), "point": None, "eval": None}
        estimates = 0
        for minutes, _, evaluation in rs.samples:
            if not evaluation.cached:
                estimates += 1
            if evaluation.qor < global_best["qor"]:
                global_best["qor"] = evaluation.qor
                global_best["point"] = dict(evaluation.point)
                global_best["eval"] = evaluation
            trace.record(minutes, global_best["qor"], estimates)
        first_qor = rs.samples[0][2].qor if rs.samples else float("inf")

        for state in rs.states:
            if state.started and state.end_minutes == 0.0:
                state.end_minutes = end

        reports = [
            PartitionReport(
                index=state.partition.index,
                description=state.partition.describe(),
                evaluations=state.evaluations,
                best_qor=state.tuner.best.qor,
                stopped_early=state.stopped_early,
                start_minutes=state.start_minutes,
                end_minutes=state.end_minutes,
            )
            for state in rs.states if state.started
        ]
        best_eval = global_best["eval"]
        if self.checkpoint_store is not None:
            # The run is complete; a later --resume should start fresh.
            self.checkpoint_store.discard(self.evaluator.kernel_digest)
        return DSERun(
            name="s2fa",
            trace=trace,
            best_point=global_best["point"],
            best_qor=global_best["qor"],
            best_result=best_eval.result if best_eval else None,
            evaluations=self.evaluator.evaluations,
            termination_minutes=end,
            first_qor=first_qor,
            partitions=reports,
            space_size=self.space.size(),
            evaluator_stats=self.evaluator.stats()
            if hasattr(self.evaluator, "stats") else None,
            resumed=rs.resumed,
        )
