"""The S2FA parallel learning-based DSE engine (Fig. 2, solid lines in
Fig. 3).

Pipeline per run:

1. identify the design space (Table 1),
2. statically partition it with the decision tree (Section 4.3.1),
3. give each partition its own bandit tuner with the two generated seeds
   (Section 4.3.2),
4. schedule partitions onto the eight workers first-come-first-served on
   the virtual clock (each partition's tuner is inherently sequential, so
   one partition occupies one worker),
5. terminate each partition by the Shannon-entropy criterion
   (Section 4.3.3) or the global time limit, whichever first.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

from ..hls.estimator import estimate
from ..merlin.config import DesignConfig
from .bandit import BanditTuner
from .evaluator import Evaluator, ExplorationTrace
from .partition import Partition, build_partitions
from .result import DSERun, PartitionReport
from .seeds import seeds_for
from .space import DesignSpace
from .stopping import EntropyStopping, StoppingCriterion
from .vclock import WorkerPool

DEFAULT_TIME_LIMIT_MINUTES = 240.0


@dataclass
class _PartitionState:
    partition: Partition
    tuner: BanditTuner
    stopping: StoppingCriterion
    evaluations: int = 0
    stopped_early: bool = False
    start_minutes: float = 0.0
    end_minutes: float = 0.0
    started: bool = False


class S2FAEngine:
    """Runs the full S2FA DSE for one compiled kernel."""

    def __init__(self, evaluator: Evaluator, space: DesignSpace, *,
                 seed: int = 0, workers: int = 8,
                 time_limit_minutes: float = DEFAULT_TIME_LIMIT_MINUTES,
                 max_partitions: int = 8,
                 use_partitioning: bool = True,
                 use_seeds: bool = True,
                 stopping_factory: Optional[
                     Callable[[], StoppingCriterion]] = None):
        self.evaluator = evaluator
        self.space = space
        self.rng = random.Random(seed)
        self.workers = workers
        self.time_limit = time_limit_minutes
        self.max_partitions = max_partitions
        self.use_partitioning = use_partitioning
        self.use_seeds = use_seeds
        self.stopping_factory = stopping_factory or EntropyStopping

    # ------------------------------------------------------------------

    def _probe(self, point: dict) -> float:
        """Offline rule characterization: model-only, no virtual time."""
        config = DesignConfig.from_point(point)
        result = estimate(self.evaluator.compiled.kernel, config,
                          self.evaluator.device)
        return result.normalized_cycles

    def _make_partitions(self) -> list[Partition]:
        if not self.use_partitioning:
            return [Partition(constraints={}, predicted_qor=0.0, index=0)]
        return build_partitions(
            self.space, self._probe, self.rng,
            max_partitions=self.max_partitions,
            samples=max(96, 12 * self.max_partitions))

    # ------------------------------------------------------------------

    def run(self) -> DSERun:
        partitions = self._make_partitions()
        states: list[_PartitionState] = []
        for partition in partitions:
            subspace = partition.subspace(self.space)
            tuner = BanditTuner(subspace, random.Random(
                self.rng.randrange(2**31)))
            if self.use_seeds:
                for seed_point in seeds_for(subspace):
                    tuner.add_seed(seed_point)
            else:
                tuner.add_seed(subspace.random_point(self.rng))
            states.append(_PartitionState(
                partition=partition, tuner=tuner,
                stopping=self.stopping_factory()))

        trace = ExplorationTrace()
        pool = WorkerPool(self.workers)
        pending = deque(states)
        global_best = {"qor": float("inf"), "point": None, "eval": None}
        first = {"qor": float("inf"), "seen": False}

        def start_next_partition() -> None:
            if pending:
                state = pending.popleft()
                state.started = True
                state.start_minutes = pool.now
                submit_step(state)

        def submit_step(state: _PartitionState) -> None:
            def job():
                name, point = state.tuner.step()
                evaluation = self.evaluator.evaluate(point)
                duration = 0.05 if evaluation.cached else evaluation.minutes

                def on_done(now: float) -> None:
                    state.evaluations += 1
                    if not first["seen"]:
                        first["qor"] = evaluation.qor
                        first["seen"] = True
                    state.tuner.feed(name, evaluation)
                    if evaluation.qor < global_best["qor"]:
                        global_best["qor"] = evaluation.qor
                        global_best["point"] = dict(evaluation.point)
                        global_best["eval"] = evaluation
                    trace.record(now, global_best["qor"],
                                 self.evaluator.evaluations)
                    should_stop = state.stopping.observe(
                        evaluation.point, evaluation.qor)
                    if should_stop:
                        state.stopped_early = True
                    if should_stop or now >= self.time_limit:
                        state.end_minutes = now
                        start_next_partition()
                    else:
                        submit_step(state)

                return duration, on_done

            pool.submit(job)

        for _ in range(min(self.workers, len(pending))):
            start_next_partition()
        end = pool.run(until=self.time_limit)

        for state in states:
            if state.started and state.end_minutes == 0.0:
                state.end_minutes = end

        reports = [
            PartitionReport(
                index=state.partition.index,
                description=state.partition.describe(),
                evaluations=state.evaluations,
                best_qor=state.tuner.best.qor,
                stopped_early=state.stopped_early,
                start_minutes=state.start_minutes,
                end_minutes=state.end_minutes,
            )
            for state in states if state.started
        ]
        best_eval = global_best["eval"]
        return DSERun(
            name="s2fa",
            trace=trace,
            best_point=global_best["point"],
            best_qor=global_best["qor"],
            best_result=best_eval.result if best_eval else None,
            evaluations=self.evaluator.evaluations,
            termination_minutes=end,
            first_qor=first["qor"],
            partitions=reports,
            space_size=self.space.size(),
        )
