"""The S2FA parallel learning-based DSE engine (Fig. 2, solid lines in
Fig. 3).

Pipeline per run:

1. identify the design space (Table 1),
2. statically partition it with the decision tree (Section 4.3.1),
3. give each partition its own bandit tuner with the two generated seeds
   (Section 4.3.2),
4. schedule partitions onto the eight workers first-come-first-served on
   the virtual clock (each partition's tuner is inherently sequential, so
   one partition occupies one worker),
5. terminate each partition by the Shannon-entropy criterion
   (Section 4.3.3) or the global time limit, whichever first.

Scheduling is round-based: every round, each running partition proposes
its next candidate, the whole candidate set goes to the evaluator as one
batch (which a :class:`~repro.dse.parallel.ParallelEvaluator` computes on
a real process pool), and the results are merged back onto the virtual
clock at each partition's own completion time.  Because a partition's
tuner sequence depends only on its own history and evaluation is a pure
function of the point, the reported DSE minutes are identical to the
serial path at any ``jobs`` setting.

Crash safety: with a :class:`~repro.dse.checkpoint.CheckpointStore` the
engine journals its complete state at every batch boundary (the event
heap is empty and no partition is in flight there), and
:meth:`S2FAEngine.resume` restores a killed run so that (cache +
checkpoint) replays the bit-identical trajectory of an uninterrupted
run.  :meth:`S2FAEngine.request_stop` arms a graceful stop: the current
batch finishes, the checkpoint is flushed, and the run raises
:class:`~repro.errors.ExplorationInterrupted`.
"""

from __future__ import annotations

import heapq
import math
import os
import random
import signal
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..errors import DSEError, ExplorationInterrupted
from ..obs.span import NULL_TRACER
from .bandit import BanditTuner
from .checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_VERSION,
    CheckpointStore,
    evaluation_from_json,
    evaluation_to_json,
    evaluator_counters,
    partition_from_json,
    partition_to_json,
    restore_evaluator_counters,
    restore_stopping,
    restore_tuner,
    rng_state_from_json,
    rng_state_to_json,
    space_fingerprint,
    stopping_to_json,
    tuner_to_json,
)
from .cache import canonical_key
from .evaluator import Evaluation, Evaluator, ExplorationTrace
from .partition import Partition, build_partitions
from .result import DSERun, PartitionReport
from .seeds import seeds_for
from .space import DesignSpace
from .stopping import EntropyStopping, StoppingCriterion

DEFAULT_TIME_LIMIT_MINUTES = 240.0

#: Virtual minutes charged for re-visiting an already-evaluated point
#: (the tuner only pays a bookkeeping cost, not an HLS run).
CACHED_EVALUATION_MINUTES = 0.05

#: Share of each batch's *unknown* points the surrogate may prune.
DEFAULT_PRUNE_FRACTION = 0.5

#: How many of the best-predicted pruned points are re-scored by the
#: analytical model at finalize, so a surrogate mistake on a would-be
#: optimum is caught instead of silently lost.
REVALIDATE_TOP_K = 5

#: Pruned points predicted within this factor of the incumbent best are
#: revalidated too (the near-top band is where a ranking error hurts).
REVALIDATE_MARGIN = 2.0

#: Hard bound on finalize revalidations.  When the run pruned at most
#: this many distinct points, *all* of them are revalidated — on an
#: exhaustively-checkable micro space the pruned run therefore returns
#: the identical optimum, by construction rather than by luck.
REVALIDATE_CAP = 32

#: Fault-injection hook for the chaos harness: ``boundary:N`` hard-kills
#: the process right after checkpoint N is flushed, ``mid:N`` hard-kills
#: after batch N is evaluated but *before* its merge/checkpoint, and
#: ``stop:N`` requests a graceful stop after batch N (exercising the
#: SIGINT/SIGTERM path deterministically).
CHAOS_KILL_ENV = "S2FA_CHAOS_KILL"


def _parse_chaos(spec: Optional[str]) -> Optional[tuple[str, int]]:
    if not spec:
        return None
    kind, _, value = spec.partition(":")
    if kind not in ("boundary", "mid", "stop") or not value.isdigit():
        raise DSEError(
            f"bad {CHAOS_KILL_ENV} spec {spec!r}; expected "
            f"'boundary:N', 'mid:N', or 'stop:N'")
    return kind, int(value)


@dataclass
class _PartitionState:
    partition: Partition
    tuner: BanditTuner
    stopping: StoppingCriterion
    evaluations: int = 0
    stopped_early: bool = False
    start_minutes: float = 0.0
    end_minutes: float = 0.0
    started: bool = False
    #: virtual time at which this partition's worker becomes free
    free_at: float = 0.0
    #: (technique, Evaluation) currently occupying the worker
    in_flight: Optional[tuple] = None


@dataclass
class _RunState:
    """Everything the main loop mutates (and the checkpoint captures)."""

    states: list[_PartitionState]
    pending: deque
    running: list[_PartitionState] = field(default_factory=list)
    #: completed evaluations as (virtual time, dispatch order, eval)
    samples: list[tuple[float, int, Evaluation]] = field(
        default_factory=list)
    truncated: bool = False
    last_event: float = 0.0
    sequence: int = 0
    rounds: int = 0
    resumed: bool = False


class S2FAEngine:
    """Runs the full S2FA DSE for one compiled kernel."""

    def __init__(self, evaluator: Evaluator, space: DesignSpace, *,
                 seed: int = 0, workers: int = 8,
                 time_limit_minutes: float = DEFAULT_TIME_LIMIT_MINUTES,
                 max_partitions: int = 8,
                 use_partitioning: bool = True,
                 use_seeds: bool = True,
                 stopping_factory: Optional[
                     Callable[[], StoppingCriterion]] = None,
                 checkpoint_store: Optional[CheckpointStore] = None,
                 surrogate=None,
                 prune_fraction: float = DEFAULT_PRUNE_FRACTION,
                 tracer=NULL_TRACER):
        self.evaluator = evaluator
        self.space = space
        self.seed = seed
        self.rng = random.Random(seed)
        self.workers = workers
        self.time_limit = time_limit_minutes
        self.max_partitions = max_partitions
        self.use_partitioning = use_partitioning
        self.use_seeds = use_seeds
        self.stopping_factory = stopping_factory or EntropyStopping
        self.checkpoint_store = checkpoint_store
        if not 0.0 <= prune_fraction < 1.0:
            raise DSEError(
                f"prune_fraction must be in [0, 1), got {prune_fraction}")
        #: an optional :class:`~repro.cost.SurrogateCostModel` used to
        #: prune each batch; never a source of truth for the optimum.
        self.surrogate = surrogate
        self.prune_fraction = prune_fraction
        self.tracer = tracer
        self._stop_requested = False
        self._chaos = _parse_chaos(os.environ.get(CHAOS_KILL_ENV))

    # ------------------------------------------------------------------

    def _probe(self, point: dict) -> float:
        """Offline rule characterization: model-only, no virtual time."""
        qor = self.evaluator.cost_model.safe_score(
            self.evaluator.compiled.kernel, point, self.evaluator.device,
            tracer=self.tracer)
        return qor.value

    def _make_partitions(self) -> list[Partition]:
        if not self.use_partitioning:
            return [Partition(constraints={}, predicted_qor=0.0, index=0)]
        with self.tracer.span("dse.partition") as span:
            partitions = build_partitions(
                self.space, self._probe, self.rng,
                max_partitions=self.max_partitions,
                samples=max(96, 12 * self.max_partitions))
            span.set(partitions=len(partitions))
        return partitions

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------

    def request_stop(self) -> None:
        """Arm a graceful stop (signal-handler safe).

        The in-flight batch finishes, its results are merged, the
        checkpoint is flushed, and the run raises
        :class:`~repro.errors.ExplorationInterrupted`.
        """
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def run(self) -> DSERun:
        """Execute the exploration (traced as one ``dse.run`` span)."""
        return self._execute(resume=False)

    def resume(self) -> DSERun:
        """Continue a checkpointed exploration to completion.

        Raises :class:`~repro.errors.DSEError` when no checkpoint exists
        for this kernel digest or the checkpoint fails validation or does
        not match this engine's configuration.
        """
        return self._execute(resume=True)

    def _execute(self, resume: bool) -> DSERun:
        with self.tracer.span(
                "dse.run", space_size=self.space.size(),
                workers=self.workers,
                time_limit_minutes=self.time_limit) as root:
            if resume:
                if self.checkpoint_store is None:
                    raise DSEError(
                        "resume requested but the engine has no "
                        "checkpoint store")
                payload = self.checkpoint_store.load(
                    self.evaluator.kernel_digest)
                if payload is None:
                    raise DSEError(
                        f"no checkpoint for kernel digest "
                        f"{self.evaluator.kernel_digest} in "
                        f"{self.checkpoint_store.directory}")
                rs = self._restore_state(payload)
                self.tracer.metrics.incr("dse.checkpoint.resumes")
                root.set(resumed=True, resumed_at_round=rs.rounds)
            else:
                rs = self._fresh_state()
            self._loop(rs)
            run = self._finalize(rs)
            root.set(evaluations=run.evaluations,
                     termination_minutes=run.termination_minutes)
            if math.isfinite(run.best_qor):
                root.set(best_qor=run.best_qor)
            stats = run.evaluator_stats
            if stats:
                self.tracer.metrics.gauge("dse.cache.hit_rate",
                                          stats.get("hit_rate", 0.0))
        return run

    # ------------------------------------------------------------------
    # State construction / restoration
    # ------------------------------------------------------------------

    def _fresh_state(self) -> _RunState:
        partitions = self._make_partitions()
        states: list[_PartitionState] = []
        for partition in partitions:
            subspace = partition.subspace(self.space)
            tuner = BanditTuner(subspace, random.Random(
                self.rng.randrange(2**31)))
            if self.use_seeds:
                for seed_point in seeds_for(subspace):
                    tuner.add_seed(seed_point)
            else:
                tuner.add_seed(subspace.random_point(self.rng))
            states.append(_PartitionState(
                partition=partition, tuner=tuner,
                stopping=self.stopping_factory()))
        rs = _RunState(states=states, pending=deque(states))
        for _ in range(min(self.workers, len(rs.pending))):
            self._start_partition(rs, 0.0)
        return rs

    def _identity(self) -> dict:
        """What a checkpoint must agree with to be resumable here."""
        return {
            "kernel_digest": self.evaluator.kernel_digest,
            "space": space_fingerprint(self.space),
            "seed": self.seed,
            "workers": self.workers,
            "time_limit_minutes": self.time_limit,
            "max_partitions": self.max_partitions,
            "use_partitioning": self.use_partitioning,
            "use_seeds": self.use_seeds,
            "stopping": type(self.stopping_factory()).__name__,
            "frequency_aware": bool(
                getattr(self.evaluator, "frequency_aware", True)),
            "cost_model": self.evaluator.cost_model.identity(),
            "surrogate": (self.surrogate.identity()
                          if self.surrogate is not None else None),
            "prune_fraction": (self.prune_fraction
                               if self.surrogate is not None else None),
        }

    def _snapshot(self, rs: _RunState) -> dict:
        """Checkpoint payload for a batch boundary (nothing in flight)."""
        assert all(s.in_flight is None for s in rs.states), \
            "checkpoint requested while evaluations are in flight"
        index = {id(s): i for i, s in enumerate(rs.states)}
        return {
            "kind": CHECKPOINT_KIND,
            "version": CHECKPOINT_VERSION,
            "identity": self._identity(),
            "rng": rng_state_to_json(self.rng),
            "rounds": rs.rounds,
            "sequence": rs.sequence,
            "truncated": rs.truncated,
            "last_event": rs.last_event,
            "states": [
                {
                    "partition": partition_to_json(s.partition),
                    "tuner": tuner_to_json(s.tuner),
                    "stopping": stopping_to_json(s.stopping),
                    "evaluations": s.evaluations,
                    "stopped_early": s.stopped_early,
                    "start_minutes": s.start_minutes,
                    "end_minutes": s.end_minutes,
                    "started": s.started,
                    "free_at": s.free_at,
                }
                for s in rs.states
            ],
            "pending": [index[id(s)] for s in rs.pending],
            "running": [index[id(s)] for s in rs.running],
            # Pruned samples never enter the evaluator cache, so they
            # carry their full payload inline (the 5th element); real
            # samples are rebuilt from the cache section and carry null.
            "samples": [[finish, order, canonical_key(e.point), e.cached,
                         evaluation_to_json(e) if e.pruned else None]
                        for finish, order, e in rs.samples],
            "cache": [evaluation_to_json(e)
                      for e in self.evaluator.cache_snapshot()],
            "evaluator": evaluator_counters(self.evaluator),
        }

    def _restore_state(self, payload: dict) -> _RunState:
        identity = self._identity()
        saved = payload.get("identity", {})
        mismatched = sorted(
            key for key in set(identity) | set(saved)
            if identity.get(key) != saved.get(key))
        if mismatched:
            detail = ", ".join(
                f"{key}: checkpoint={saved.get(key)!r} "
                f"run={identity.get(key)!r}" for key in mismatched)
            raise DSEError(
                f"checkpoint does not match this run's configuration "
                f"({detail}); start a fresh run or restore the original "
                f"settings")

        states: list[_PartitionState] = []
        for sdata in payload["states"]:
            partition = partition_from_json(sdata["partition"])
            subspace = partition.subspace(self.space)
            tuner = BanditTuner(subspace, random.Random(0))
            restore_tuner(tuner, sdata["tuner"])
            stopping = self.stopping_factory()
            restore_stopping(stopping, sdata["stopping"])
            states.append(_PartitionState(
                partition=partition, tuner=tuner, stopping=stopping,
                evaluations=sdata["evaluations"],
                stopped_early=sdata["stopped_early"],
                start_minutes=sdata["start_minutes"],
                end_minutes=sdata["end_minutes"],
                started=sdata["started"],
                free_at=sdata["free_at"]))

        cache = {}
        for entry in payload["cache"]:
            evaluation = evaluation_from_json(entry)
            cache[canonical_key(evaluation.point)] = evaluation
        self.evaluator.prime_cache(cache.values())
        restore_evaluator_counters(self.evaluator, payload["evaluator"])

        samples: list[tuple[float, int, Evaluation]] = []
        for finish, order, key, cached, pruned_payload \
                in payload["samples"]:
            if pruned_payload is not None:
                samples.append((finish, order,
                                evaluation_from_json(pruned_payload)))
                continue
            base = cache.get(key)
            if base is None:
                raise DSEError(
                    f"checkpoint sample references point {key} missing "
                    f"from its own cache section")
            samples.append((finish, order, Evaluation(
                point=dict(base.point), qor=base.qor, result=base.result,
                minutes=(CACHED_EVALUATION_MINUTES if cached
                         else base.minutes),
                cached=cached)))

        self.rng.setstate(rng_state_from_json(payload["rng"]))
        return _RunState(
            states=states,
            pending=deque(states[i] for i in payload["pending"]),
            running=[states[i] for i in payload["running"]],
            samples=samples,
            truncated=payload["truncated"],
            last_event=payload["last_event"],
            sequence=payload["sequence"],
            rounds=payload["rounds"],
            resumed=True)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _start_partition(self, rs: _RunState, at: float) -> None:
        state = rs.pending.popleft()
        state.started = True
        state.start_minutes = at
        state.free_at = at
        rs.running.append(state)

    def _retire(self, rs: _RunState, state: _PartitionState,
                at: float) -> None:
        state.end_minutes = at
        rs.running.remove(state)

    def _write_checkpoint(self, rs: _RunState):
        if self.checkpoint_store is None:
            return None
        path = self.checkpoint_store.save(self.evaluator.kernel_digest,
                                          self._snapshot(rs))
        self.tracer.metrics.incr("dse.checkpoint.writes")
        return path

    def _chaos_fire(self, kind: str, round_index: int) -> None:
        if self._chaos != (kind, round_index):
            return
        if kind == "stop":
            self.request_stop()
            return
        os.kill(os.getpid(), signal.SIGKILL)

    def _evaluate_proposals(self, points: list[dict]) -> list[Evaluation]:
        """Evaluate one round's batch, surrogate-pruning the worst misses.

        Without a surrogate this is ``evaluate_batch`` verbatim.  With
        one, every point the caches do not already know is scored by the
        surrogate, and the worst ``prune_fraction`` of those misses is
        answered with the *prediction* (an ``Evaluation`` marked
        ``pruned=True``, charged only the surrogate's virtual minutes)
        instead of a real estimate.  Guarantees:

        * already-known points are never pruned (their answer is paid
          for — pruning would only discard information);
        * at least one point per round survives to the analytical model,
          so the search always makes real progress;
        * pruned evaluations never enter the evaluator caches, and
          :meth:`_finalize` both excludes them from the reported optimum
          and re-scores the best few analytically.
        """
        if self.surrogate is None or not points:
            return self.evaluator.evaluate_batch(points)
        kernel = self.evaluator.compiled.kernel
        device = self.evaluator.device
        predictions: dict[int, object] = {}
        for i, point in enumerate(points):
            if not self.evaluator.is_known(point):
                predictions[i] = self.surrogate.safe_score(
                    kernel, point, device, tracer=self.tracer)
        self.tracer.metrics.incr("dse.surrogate.scored",
                                 len(predictions))
        quota = min(int(len(predictions) * self.prune_fraction),
                    len(points) - 1)
        pruned_indices: set[int] = set()
        if quota > 0:
            # Worst predicted QoR first; the stable sort keeps proposal
            # order among ties, so pruning is deterministic.
            ranked = sorted(predictions,
                            key=lambda i: predictions[i].value,
                            reverse=True)
            pruned_indices = set(ranked[:quota])
            self.tracer.metrics.incr("dse.surrogate.pruned", quota)
        survivors = [p for i, p in enumerate(points)
                     if i not in pruned_indices]
        real = iter(self.evaluator.evaluate_batch(survivors))
        merged: list[Evaluation] = []
        for i, point in enumerate(points):
            if i in pruned_indices:
                qor = predictions[i]
                merged.append(Evaluation(
                    point=dict(point), qor=qor.value,
                    result=qor.to_result(device), minutes=qor.minutes,
                    pruned=True))
            else:
                merged.append(next(real))
        return merged

    def _loop(self, rs: _RunState) -> None:
        events: list[tuple[float, int, _PartitionState]] = []
        while rs.running:
            # Dispatch: every free partition proposes its next candidate;
            # the whole round goes to the evaluator as one batch.
            with self.tracer.span("dse.batch", round=rs.rounds) as bspan:
                proposals = []
                for state in rs.running:
                    if state.in_flight is not None:
                        continue
                    with self.tracer.span(
                            "dse.propose",
                            partition=state.partition.index) as pspan:
                        name, point = state.tuner.step()
                        pspan.set(technique=name)
                    proposals.append((state, name, point))
                evaluations = self._evaluate_proposals(
                    [point for _, _, point in proposals])
                bspan.set(
                    proposals=len(proposals),
                    cached=sum(1 for e in evaluations if e.cached),
                    pruned=sum(1 for e in evaluations if e.pruned),
                    techniques=",".join(sorted(
                        {name for _, name, _ in proposals})))
                self.tracer.metrics.incr("dse.batches")
            rs.rounds += 1
            self._chaos_fire("mid", rs.rounds)
            self._chaos_fire("stop", rs.rounds)
            for (state, name, _), evaluation in zip(proposals,
                                                    evaluations):
                duration = CACHED_EVALUATION_MINUTES \
                    if evaluation.cached else evaluation.minutes
                state.in_flight = (name, evaluation)
                rs.sequence += 1
                heapq.heappush(
                    events,
                    (state.free_at + duration, rs.sequence, state))

            # Merge: replay completions in virtual-time order; partitions
            # freed mid-round (early stop starts a pending partition at
            # that completion time) join the next round's batch.
            while events:
                finish, order, state = heapq.heappop(events)
                name, evaluation = state.in_flight
                state.in_flight = None
                if finish > self.time_limit:
                    # The run ends before this evaluation completes; the
                    # work is discarded, exactly like the serial clock.
                    rs.truncated = True
                    self._retire(rs, state, self.time_limit)
                    continue
                rs.last_event = max(rs.last_event, finish)
                state.free_at = finish
                state.evaluations += 1
                rs.samples.append((finish, order, evaluation))
                state.tuner.feed(name, evaluation)
                should_stop = state.stopping.observe(
                    evaluation.point, evaluation.qor)
                if should_stop:
                    state.stopped_early = True
                if should_stop or finish >= self.time_limit:
                    self._retire(rs, state, finish)
                    if rs.pending:
                        self._start_partition(rs, finish)

            # Batch boundary: the event heap is drained and nothing is in
            # flight — journal the complete state, then honor any stop
            # request now that the checkpoint covers this round.
            checkpoint_path = self._write_checkpoint(rs)
            self._chaos_fire("boundary", rs.rounds)
            if self._stop_requested and rs.running:
                where = (f"; checkpoint at {checkpoint_path} "
                         f"(resume with --resume)"
                         if checkpoint_path is not None
                         else " (checkpointing disabled: progress beyond "
                              "the persistent cache is lost)")
                raise ExplorationInterrupted(
                    f"exploration interrupted after {rs.rounds} "
                    f"batches{where}",
                    checkpoint_path=checkpoint_path, rounds=rs.rounds)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------

    def _finalize(self, rs: _RunState) -> DSERun:
        end = self.time_limit if rs.truncated else rs.last_event

        # Rebuild the best-so-far trajectory in virtual-time order (the
        # batched rounds complete out of order across rounds).
        rs.samples.sort(key=lambda s: (s[0], s[1]))
        trace = ExplorationTrace()
        global_best = {"qor": float("inf"), "point": None, "eval": None}
        estimates = 0
        for minutes, _, evaluation in rs.samples:
            if evaluation.pruned:
                # A surrogate verdict: it fed the tuners, but it is not
                # a real evaluation and can never be the optimum.
                continue
            if not evaluation.cached:
                estimates += 1
            if evaluation.qor < global_best["qor"]:
                global_best["qor"] = evaluation.qor
                global_best["point"] = dict(evaluation.point)
                global_best["eval"] = evaluation
            trace.record(minutes, global_best["qor"], estimates)
        first_qor = rs.samples[0][2].qor if rs.samples else float("inf")

        surrogate_stats = self._revalidate_pruned(rs, global_best)

        for state in rs.states:
            if state.started and state.end_minutes == 0.0:
                state.end_minutes = end

        reports = [
            PartitionReport(
                index=state.partition.index,
                description=state.partition.describe(),
                evaluations=state.evaluations,
                best_qor=state.tuner.best.qor,
                stopped_early=state.stopped_early,
                start_minutes=state.start_minutes,
                end_minutes=state.end_minutes,
            )
            for state in rs.states if state.started
        ]
        best_eval = global_best["eval"]
        if self.checkpoint_store is not None:
            # The run is complete; a later --resume should start fresh.
            self.checkpoint_store.discard(self.evaluator.kernel_digest)
        return DSERun(
            name="s2fa",
            trace=trace,
            best_point=global_best["point"],
            best_qor=global_best["qor"],
            best_result=best_eval.result if best_eval else None,
            evaluations=self.evaluator.evaluations,
            termination_minutes=end,
            first_qor=first_qor,
            partitions=reports,
            space_size=self.space.size(),
            evaluator_stats=self.evaluator.stats()
            if hasattr(self.evaluator, "stats") else None,
            surrogate_stats=surrogate_stats,
            resumed=rs.resumed,
        )

    def _revalidate_pruned(self, rs: _RunState,
                           global_best: dict) -> Optional[dict]:
        """Re-score the best-predicted pruned points analytically.

        The surrogate's one dangerous failure mode is pruning the true
        optimum.  Insurance at finalize: distinct pruned points are
        ranked by prediction and re-scored analytically — all of them
        when at most ``REVALIDATE_CAP`` exist (micro spaces keep their
        exact-optimum guarantee), otherwise the ``REVALIDATE_TOP_K``
        best plus the near-top band predicted within
        ``REVALIDATE_MARGIN`` of the incumbent, capped.  Any point that
        beats the current best is promoted.  Returns the run's
        surrogate statistics (``None`` when no surrogate was used).

        The revalidations go to the evaluator as one batch, and the
        reported ``revalidation_minutes`` is the batch *makespan* over
        the run's worker fleet (longest-processing-time assignment to
        as many workers as partitions ran) — the same parallel virtual
        clock the main loop charges, not a serial sum.
        """
        if self.surrogate is None:
            return None
        pruned = [e for _, _, e in rs.samples if e.pruned]
        distinct: dict = {}
        for evaluation in pruned:
            key = canonical_key(evaluation.point)
            kept = distinct.get(key)
            if kept is None or evaluation.qor < kept.qor:
                distinct[key] = evaluation
        ranked = sorted(distinct.values(), key=lambda e: e.qor)
        if len(ranked) <= REVALIDATE_CAP:
            top = ranked
        else:
            margin = global_best["qor"] * REVALIDATE_MARGIN
            band = sum(1 for e in ranked if e.qor <= margin)
            top = ranked[:min(max(REVALIDATE_TOP_K, band),
                              REVALIDATE_CAP)]
        evaluations = self.evaluator.evaluate_batch(
            [prediction.point for prediction in top]) if top else []
        durations = [CACHED_EVALUATION_MINUTES if e.cached
                     else e.minutes for e in evaluations]
        workers = max(1, sum(1 for s in rs.states if s.started))
        loads = [0.0] * workers
        for duration in sorted(durations, reverse=True):
            loads[loads.index(min(loads))] += duration
        revalidation_minutes = max(loads) if durations else 0.0
        promoted = 0
        for evaluation in evaluations:
            if evaluation.qor < global_best["qor"]:
                global_best["qor"] = evaluation.qor
                global_best["point"] = dict(evaluation.point)
                global_best["eval"] = evaluation
                promoted += 1
        if promoted:
            self.tracer.metrics.incr("dse.surrogate.promotions",
                                     promoted)
        self.tracer.metrics.gauge(
            "dse.surrogate.prune_rate",
            self.tracer.metrics.counter_ratio("dse.surrogate.pruned",
                                              "dse.surrogate.scored"))
        return {
            "model": self.surrogate.identity(),
            "prune_fraction": self.prune_fraction,
            "pruned": len(pruned),
            "pruned_distinct": len(distinct),
            "revalidated": len(top),
            "revalidation_minutes": round(revalidation_minutes, 4),
            "promoted": promoted,
            "fidelity": dict(self.surrogate.fidelity),
        }
