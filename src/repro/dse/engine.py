"""The S2FA parallel learning-based DSE engine (Fig. 2, solid lines in
Fig. 3).

Pipeline per run:

1. identify the design space (Table 1),
2. statically partition it with the decision tree (Section 4.3.1),
3. give each partition its own bandit tuner with the two generated seeds
   (Section 4.3.2),
4. schedule partitions onto the eight workers first-come-first-served on
   the virtual clock (each partition's tuner is inherently sequential, so
   one partition occupies one worker),
5. terminate each partition by the Shannon-entropy criterion
   (Section 4.3.3) or the global time limit, whichever first.

Scheduling is round-based: every round, each running partition proposes
its next candidate, the whole candidate set goes to the evaluator as one
batch (which a :class:`~repro.dse.parallel.ParallelEvaluator` computes on
a real process pool), and the results are merged back onto the virtual
clock at each partition's own completion time.  Because a partition's
tuner sequence depends only on its own history and evaluation is a pure
function of the point, the reported DSE minutes are identical to the
serial path at any ``jobs`` setting.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..hls.estimator import estimate
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER
from .bandit import BanditTuner
from .evaluator import Evaluation, Evaluator, ExplorationTrace
from .partition import Partition, build_partitions
from .result import DSERun, PartitionReport
from .seeds import seeds_for
from .space import DesignSpace
from .stopping import EntropyStopping, StoppingCriterion

DEFAULT_TIME_LIMIT_MINUTES = 240.0

#: Virtual minutes charged for re-visiting an already-evaluated point
#: (the tuner only pays a bookkeeping cost, not an HLS run).
CACHED_EVALUATION_MINUTES = 0.05


@dataclass
class _PartitionState:
    partition: Partition
    tuner: BanditTuner
    stopping: StoppingCriterion
    evaluations: int = 0
    stopped_early: bool = False
    start_minutes: float = 0.0
    end_minutes: float = 0.0
    started: bool = False
    #: virtual time at which this partition's worker becomes free
    free_at: float = 0.0
    #: (technique, Evaluation) currently occupying the worker
    in_flight: Optional[tuple] = None


class S2FAEngine:
    """Runs the full S2FA DSE for one compiled kernel."""

    def __init__(self, evaluator: Evaluator, space: DesignSpace, *,
                 seed: int = 0, workers: int = 8,
                 time_limit_minutes: float = DEFAULT_TIME_LIMIT_MINUTES,
                 max_partitions: int = 8,
                 use_partitioning: bool = True,
                 use_seeds: bool = True,
                 stopping_factory: Optional[
                     Callable[[], StoppingCriterion]] = None,
                 tracer=NULL_TRACER):
        self.evaluator = evaluator
        self.space = space
        self.rng = random.Random(seed)
        self.workers = workers
        self.time_limit = time_limit_minutes
        self.max_partitions = max_partitions
        self.use_partitioning = use_partitioning
        self.use_seeds = use_seeds
        self.stopping_factory = stopping_factory or EntropyStopping
        self.tracer = tracer

    # ------------------------------------------------------------------

    def _probe(self, point: dict) -> float:
        """Offline rule characterization: model-only, no virtual time."""
        config = DesignConfig.from_point(point)
        result = estimate(self.evaluator.compiled.kernel, config,
                          self.evaluator.device, tracer=self.tracer)
        return result.normalized_cycles

    def _make_partitions(self) -> list[Partition]:
        if not self.use_partitioning:
            return [Partition(constraints={}, predicted_qor=0.0, index=0)]
        with self.tracer.span("dse.partition") as span:
            partitions = build_partitions(
                self.space, self._probe, self.rng,
                max_partitions=self.max_partitions,
                samples=max(96, 12 * self.max_partitions))
            span.set(partitions=len(partitions))
        return partitions

    # ------------------------------------------------------------------

    def run(self) -> DSERun:
        """Execute the exploration (traced as one ``dse.run`` span)."""
        with self.tracer.span(
                "dse.run", space_size=self.space.size(),
                workers=self.workers,
                time_limit_minutes=self.time_limit) as root:
            run = self._run()
            root.set(evaluations=run.evaluations,
                     termination_minutes=run.termination_minutes)
            if math.isfinite(run.best_qor):
                root.set(best_qor=run.best_qor)
            stats = run.evaluator_stats
            if stats:
                self.tracer.metrics.gauge("dse.cache.hit_rate",
                                          stats.get("hit_rate", 0.0))
        return run

    def _run(self) -> DSERun:
        partitions = self._make_partitions()
        states: list[_PartitionState] = []
        for partition in partitions:
            subspace = partition.subspace(self.space)
            tuner = BanditTuner(subspace, random.Random(
                self.rng.randrange(2**31)))
            if self.use_seeds:
                for seed_point in seeds_for(subspace):
                    tuner.add_seed(seed_point)
            else:
                tuner.add_seed(subspace.random_point(self.rng))
            states.append(_PartitionState(
                partition=partition, tuner=tuner,
                stopping=self.stopping_factory()))

        pending = deque(states)
        running: list[_PartitionState] = []
        #: completed evaluations as (virtual time, dispatch order, eval)
        samples: list[tuple[float, int, Evaluation]] = []
        events: list[tuple[float, int, _PartitionState]] = []
        truncated = False
        last_event = 0.0
        sequence = 0

        def start_partition(at: float) -> None:
            state = pending.popleft()
            state.started = True
            state.start_minutes = at
            state.free_at = at
            running.append(state)

        def retire(state: _PartitionState, at: float) -> None:
            state.end_minutes = at
            running.remove(state)

        for _ in range(min(self.workers, len(pending))):
            start_partition(0.0)

        rounds = 0
        while running:
            # Dispatch: every free partition proposes its next candidate;
            # the whole round goes to the evaluator as one batch.
            with self.tracer.span("dse.batch", round=rounds) as bspan:
                proposals = []
                for state in running:
                    if state.in_flight is not None:
                        continue
                    with self.tracer.span(
                            "dse.propose",
                            partition=state.partition.index) as pspan:
                        name, point = state.tuner.step()
                        pspan.set(technique=name)
                    proposals.append((state, name, point))
                evaluations = self.evaluator.evaluate_batch(
                    [point for _, _, point in proposals])
                bspan.set(
                    proposals=len(proposals),
                    cached=sum(1 for e in evaluations if e.cached),
                    techniques=",".join(sorted(
                        {name for _, name, _ in proposals})))
                self.tracer.metrics.incr("dse.batches")
            rounds += 1
            for (state, name, _), evaluation in zip(proposals,
                                                    evaluations):
                duration = CACHED_EVALUATION_MINUTES \
                    if evaluation.cached else evaluation.minutes
                state.in_flight = (name, evaluation)
                sequence += 1
                heapq.heappush(events,
                               (state.free_at + duration, sequence, state))

            # Merge: replay completions in virtual-time order; partitions
            # freed mid-round (early stop starts a pending partition at
            # that completion time) join the next round's batch.
            while events:
                finish, order, state = heapq.heappop(events)
                name, evaluation = state.in_flight
                state.in_flight = None
                if finish > self.time_limit:
                    # The run ends before this evaluation completes; the
                    # work is discarded, exactly like the serial clock.
                    truncated = True
                    retire(state, self.time_limit)
                    continue
                last_event = max(last_event, finish)
                state.free_at = finish
                state.evaluations += 1
                samples.append((finish, order, evaluation))
                state.tuner.feed(name, evaluation)
                should_stop = state.stopping.observe(
                    evaluation.point, evaluation.qor)
                if should_stop:
                    state.stopped_early = True
                if should_stop or finish >= self.time_limit:
                    retire(state, finish)
                    if pending:
                        start_partition(finish)

        end = self.time_limit if truncated else last_event

        # Rebuild the best-so-far trajectory in virtual-time order (the
        # batched rounds complete out of order across rounds).
        samples.sort(key=lambda s: (s[0], s[1]))
        trace = ExplorationTrace()
        global_best = {"qor": float("inf"), "point": None, "eval": None}
        estimates = 0
        for minutes, _, evaluation in samples:
            if not evaluation.cached:
                estimates += 1
            if evaluation.qor < global_best["qor"]:
                global_best["qor"] = evaluation.qor
                global_best["point"] = dict(evaluation.point)
                global_best["eval"] = evaluation
            trace.record(minutes, global_best["qor"], estimates)
        first_qor = samples[0][2].qor if samples else float("inf")

        for state in states:
            if state.started and state.end_minutes == 0.0:
                state.end_minutes = end

        reports = [
            PartitionReport(
                index=state.partition.index,
                description=state.partition.describe(),
                evaluations=state.evaluations,
                best_qor=state.tuner.best.qor,
                stopped_early=state.stopped_early,
                start_minutes=state.start_minutes,
                end_minutes=state.end_minutes,
            )
            for state in states if state.started
        ]
        best_eval = global_best["eval"]
        return DSERun(
            name="s2fa",
            trace=trace,
            best_point=global_best["point"],
            best_qor=global_best["qor"],
            best_result=best_eval.result if best_eval else None,
            evaluations=self.evaluator.evaluations,
            termination_minutes=end,
            first_qor=first_qor,
            partitions=reports,
            space_size=self.space.size(),
            evaluator_stats=self.evaluator.stats()
            if hasattr(self.evaluator, "stats") else None,
        )
