"""Design-point evaluation: Merlin transform + HLS estimation, cached.

The evaluator is shared by every tuner (S2FA and the OpenTuner baseline):
it turns a flat point into a :class:`DesignConfig`, invokes the HLS
estimator, and reports both the QoR (normalized execution cycles — lower
is better; infeasible points score infinity) and the synthesis minutes the
evaluation costs on the virtual clock.

Three layers of memoization, consulted in order:

1. the **in-run cache** — a repeated point inside one exploration returns
   ``cached=True`` and costs almost nothing on the virtual clock (the
   tuner "remembers" the result);
2. the optional **persistent store** (:class:`~repro.dse.cache.CacheStore`)
   — a point estimated by *any previous run* of the same kernel returns
   the stored result with its *original* synthesis minutes and
   ``cached=False``, so warm and cold runs produce identical virtual-clock
   timelines (persistence is a real-wall-clock optimization only);
3. the estimator itself.

:class:`~repro.dse.parallel.ParallelEvaluator` extends this class with a
process pool that computes layer 3 out-of-process in batches.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional

from ..compiler.driver import CompiledKernel
from ..cost import AnalyticalCostModel, CostModel
from ..hls.device import Device, VU9P
from ..hls.result import HLSResult, Resources
from ..merlin.config import DesignConfig
from ..obs.span import NULL_TRACER
from .cache import CacheStore, canonical_key, kernel_digest

#: Virtual minutes charged for an evaluation the backend failed to
#: produce (worker crash/timeout or an estimator exception): the point is
#: reported infeasible, and the failed synthesis attempt still costs time.
FAILURE_MINUTES = 1.0

#: ``infeasible_reason`` prefixes marking backend failures (never
#: persisted — they are not true estimates of the design point).
FAILURE_PREFIXES = ("worker failure", "evaluation error")


def error_result(reason: str, device: Device = VU9P) -> HLSResult:
    """Infeasible placeholder for a failed evaluation attempt."""
    return HLSResult(
        feasible=False, cycles=0, freq_mhz=device.target_mhz,
        resources=Resources(),
        utilization={"lut": 0.0, "ff": 0.0, "dsp": 0.0, "bram": 0.0},
        ii_top=None, synthesis_minutes=FAILURE_MINUTES,
        infeasible_reason=reason)


def safe_estimate(kernel, point: dict, device: Device,
                  tracer=NULL_TRACER) -> HLSResult:
    """Deprecated shim over the pluggable cost-model API.

    .. deprecated::
        Use ``AnalyticalCostModel().safe_score(kernel, point, device)``
        (or any other :class:`~repro.cost.CostModel`); the QoR's
        ``to_result()`` recovers the :class:`HLSResult`.
    """
    warnings.warn(
        "safe_estimate() is deprecated; use "
        "repro.cost.AnalyticalCostModel().safe_score(...) instead",
        DeprecationWarning, stacklevel=2)
    qor = AnalyticalCostModel().safe_score(kernel, point, device,
                                           tracer=tracer)
    return qor.to_result(device)


@dataclass
class Evaluation:
    """One evaluated design point.

    ``pruned`` marks a *surrogate verdict*, not a real evaluation: the
    engine skipped the analytical model on the surrogate's say-so, and
    ``qor``/``result`` hold the prediction.  Pruned evaluations never
    enter the evaluator caches and never become the reported optimum.
    """

    point: dict
    qor: float                  # normalized cycles; inf when infeasible
    result: HLSResult
    minutes: float              # synthesis cost charged to the clock
    cached: bool = False
    pruned: bool = False


@dataclass
class Evaluator:
    """Caches HLS estimates per unique (canonicalized) point.

    ``frequency_aware`` selects the QoR metric.  The paper's DSE optimizes
    raw cycle counts and leaves frequency modelling to future work
    (Section 5.2); with ``frequency_aware=True`` (our default, implementing
    that future work) the QoR is the cycle count rescaled to the target
    clock, so a design that only closes timing at 150 MHz is penalized
    accordingly.
    """

    compiled: CompiledKernel
    device: Device = VU9P
    frequency_aware: bool = True
    store: Optional[CacheStore] = None
    #: a :mod:`repro.obs` tracer; estimates and cache hits are recorded
    #: as ``hls.estimate`` spans and ``dse.cache.*`` counters.
    tracer: object = NULL_TRACER
    #: the :class:`~repro.cost.CostModel` that produces fresh results.
    #: Its ``identity()`` is part of the cache namespace, and only
    #: ``persistable`` models may write to the persistent store.
    cost_model: CostModel = field(default_factory=AnalyticalCostModel)
    evaluations: int = 0
    cache_hits: int = 0
    store_hits: int = 0
    batches: int = 0
    batched_points: int = 0
    max_batch: int = 0
    _cache: dict = field(default_factory=dict)
    _digest: Optional[str] = None

    @property
    def kernel_digest(self) -> str:
        """Cache identity of this kernel/device/cost-model context."""
        if self._digest is None:
            self._digest = kernel_digest(self.compiled.kernel, self.device,
                                         self.cost_model.identity())
        return self._digest

    def _qor(self, result) -> float:
        if not result.feasible:
            return float("inf")
        if self.frequency_aware:
            return result.normalized_cycles
        return float(result.cycles)

    # ------------------------------------------------------------------

    def _compute(self, point: dict, key: str) -> tuple[HLSResult, bool]:
        """Produce a fresh result; returns ``(result, persist)``.

        Overridden by the parallel evaluator to consume results computed
        out-of-process.
        """
        qor = self.cost_model.safe_score(self.compiled.kernel, point,
                                         self.device, tracer=self.tracer)
        return qor.to_result(self.device), self.cost_model.persistable

    def _admit(self, point: dict, key: str, result: HLSResult,
               minutes: float, persist: bool) -> Evaluation:
        evaluation = Evaluation(point=dict(point), qor=self._qor(result),
                                result=result, minutes=minutes)
        self._cache[key] = evaluation
        self.evaluations += 1
        if persist and self.store is not None \
                and not result.infeasible_reason.startswith(
                    FAILURE_PREFIXES):
            self.store.put(self.kernel_digest, key, minutes, result)
        return evaluation

    def is_known(self, point: dict) -> bool:
        """Would evaluating this point cost (almost) nothing?

        True when the point is already in the in-run cache or the
        persistent store.  Does not touch the hit/miss counters, so
        callers (the surrogate pruning stage) can ask freely: pruning a
        point whose answer is already paid for would only lose
        information.
        """
        key = canonical_key(point)
        if key in self._cache:
            return True
        return self.store is not None and self.store.contains(
            self.kernel_digest, key)

    def evaluate(self, point: dict) -> Evaluation:
        key = canonical_key(point)
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            self.tracer.metrics.incr("dse.cache.memory_hits")
            return Evaluation(point=dict(point), qor=hit.qor,
                              result=hit.result, minutes=hit.minutes,
                              cached=True)
        if self.store is not None:
            stored = self.store.get(self.kernel_digest, key)
            if stored is not None:
                minutes, result = stored
                self.store_hits += 1
                self.tracer.metrics.incr("dse.cache.store_hits")
                return self._admit(point, key, result, minutes,
                                   persist=False)
        result, persist = self._compute(point, key)
        return self._admit(point, key, result, result.synthesis_minutes,
                           persist)

    def evaluate_batch(self, points: list[dict]) -> list[Evaluation]:
        """Evaluate a candidate batch; results are in input order.

        The base implementation is serial.  Results are identical to
        ``[evaluate(p) for p in points]`` by construction — subclasses
        must preserve that (parallelism must not change the science).
        """
        self.batches += 1
        self.batched_points += len(points)
        self.max_batch = max(self.max_batch, len(points))
        return [self.evaluate(point) for point in points]

    # ------------------------------------------------------------------
    # Checkpoint support: the in-run cache and the budget counters are
    # part of the explorer state (a resumed run must see the same
    # ``cached`` flags and virtual-clock minutes as an uninterrupted one).
    # ------------------------------------------------------------------

    def cache_snapshot(self) -> list[Evaluation]:
        """The in-run cache entries, in admission order."""
        return list(self._cache.values())

    def prime_cache(self, evaluations) -> None:
        """Pre-load the in-run cache (checkpoint restore)."""
        for evaluation in evaluations:
            self._cache.setdefault(canonical_key(evaluation.point),
                                   evaluation)

    def evaluate_config(self, config: DesignConfig) -> Evaluation:
        return self.evaluate(config.to_point())

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Per-run backend statistics (for reports and benchmarks)."""
        probes = self.evaluations + self.cache_hits
        hits = self.cache_hits + self.store_hits
        data = {
            "jobs": 1,
            "unique_points": len(self._cache),
            "estimates": self.evaluations - self.store_hits,
            "memory_hits": self.cache_hits,
            "store_hits": self.store_hits,
            "hit_rate": (hits / probes) if probes else 0.0,
            "batches": self.batches,
            "mean_batch": (self.batched_points / self.batches)
            if self.batches else 0.0,
            "max_batch": self.max_batch,
            "worker_failures": 0,
            "degraded": False,
        }
        if self.store is not None:
            data["store"] = self.store.stats()
        return data


@dataclass
class TracePoint:
    """One sample of the best-so-far trajectory."""

    minutes: float
    best_qor: float
    evaluations: int


@dataclass
class ExplorationTrace:
    """Best-QoR-over-virtual-time record of one DSE run."""

    points: list[TracePoint] = field(default_factory=list)

    def record(self, minutes: float, best_qor: float,
               evaluations: int) -> None:
        self.points.append(TracePoint(minutes, best_qor, evaluations))

    @property
    def final_qor(self) -> float:
        finite = [p.best_qor for p in self.points
                  if p.best_qor != float("inf")]
        return finite[-1] if finite else float("inf")

    @property
    def end_minutes(self) -> float:
        return self.points[-1].minutes if self.points else 0.0

    def best_at(self, minutes: float) -> float:
        """Best QoR achieved by the given virtual time."""
        best = float("inf")
        for p in self.points:
            if p.minutes <= minutes:
                best = min(best, p.best_qor)
        return best

    def merged_with(self, other: "ExplorationTrace") -> "ExplorationTrace":
        merged = ExplorationTrace(sorted(
            self.points + other.points, key=lambda p: p.minutes))
        # Re-normalize to a monotone best-so-far curve.
        best = float("inf")
        out = ExplorationTrace()
        for p in merged.points:
            best = min(best, p.best_qor)
            out.record(p.minutes, best, p.evaluations)
        return out
