"""Design-point evaluation: Merlin transform + HLS estimation, cached.

The evaluator is shared by every tuner (S2FA and the OpenTuner baseline):
it turns a flat point into a :class:`DesignConfig`, invokes the HLS
estimator, and reports both the QoR (normalized execution cycles — lower
is better; infeasible points score infinity) and the synthesis minutes the
evaluation costs on the virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..compiler.driver import CompiledKernel
from ..hls.device import Device, VU9P
from ..hls.estimator import estimate
from ..hls.result import HLSResult
from ..merlin.config import DesignConfig


@dataclass
class Evaluation:
    """One evaluated design point."""

    point: dict
    qor: float                  # normalized cycles; inf when infeasible
    result: HLSResult
    minutes: float              # synthesis cost charged to the clock
    cached: bool = False


@dataclass
class Evaluator:
    """Caches HLS estimates per unique point.

    ``frequency_aware`` selects the QoR metric.  The paper's DSE optimizes
    raw cycle counts and leaves frequency modelling to future work
    (Section 5.2); with ``frequency_aware=True`` (our default, implementing
    that future work) the QoR is the cycle count rescaled to the target
    clock, so a design that only closes timing at 150 MHz is penalized
    accordingly.
    """

    compiled: CompiledKernel
    device: Device = VU9P
    frequency_aware: bool = True
    evaluations: int = 0
    cache_hits: int = 0
    _cache: dict = field(default_factory=dict)

    def _qor(self, result) -> float:
        if not result.feasible:
            return float("inf")
        if self.frequency_aware:
            return result.normalized_cycles
        return float(result.cycles)

    def evaluate(self, point: dict) -> Evaluation:
        key = frozenset(point.items())
        hit = self._cache.get(key)
        if hit is not None:
            self.cache_hits += 1
            return Evaluation(point=dict(point), qor=hit.qor,
                              result=hit.result, minutes=hit.minutes,
                              cached=True)
        config = DesignConfig.from_point(point)
        result = estimate(self.compiled.kernel, config, self.device)
        evaluation = Evaluation(point=dict(point), qor=self._qor(result),
                                result=result,
                                minutes=result.synthesis_minutes)
        self._cache[key] = evaluation
        self.evaluations += 1
        return evaluation

    def evaluate_config(self, config: DesignConfig) -> Evaluation:
        return self.evaluate(config.to_point())


@dataclass
class TracePoint:
    """One sample of the best-so-far trajectory."""

    minutes: float
    best_qor: float
    evaluations: int


@dataclass
class ExplorationTrace:
    """Best-QoR-over-virtual-time record of one DSE run."""

    points: list[TracePoint] = field(default_factory=list)

    def record(self, minutes: float, best_qor: float,
               evaluations: int) -> None:
        self.points.append(TracePoint(minutes, best_qor, evaluations))

    @property
    def final_qor(self) -> float:
        finite = [p.best_qor for p in self.points
                  if p.best_qor != float("inf")]
        return finite[-1] if finite else float("inf")

    @property
    def end_minutes(self) -> float:
        return self.points[-1].minutes if self.points else 0.0

    def best_at(self, minutes: float) -> float:
        """Best QoR achieved by the given virtual time."""
        best = float("inf")
        for p in self.points:
            if p.minutes <= minutes:
                best = min(best, p.best_qor)
        return best

    def merged_with(self, other: "ExplorationTrace") -> "ExplorationTrace":
        merged = ExplorationTrace(sorted(
            self.points + other.points, key=lambda p: p.minutes))
        # Re-normalize to a monotone best-so-far curve.
        best = float("inf")
        out = ExplorationTrace()
        for p in merged.points:
            best = min(best, p.best_qor)
            out.record(p.minutes, best, p.evaluations)
        return out
