"""Exhaustive enumeration for small (sub)spaces.

The full Table 1 spaces are hopeless to enumerate (that is the paper's
point), but a *restricted* subspace can be small enough to brute-force,
which gives a ground-truth optimum to validate the learning-based DSE
against (see ``tests/dse/test_exhaustive_validation.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import DSEError
from .evaluator import Evaluation, Evaluator
from .space import DesignSpace


def enumerate_points(space: DesignSpace,
                     limit: Optional[int] = None) -> Iterator[dict]:
    """Yield every point of the space in a deterministic order.

    ``limit`` guards against accidentally enumerating a huge space.
    """
    if limit is not None and space.size() > limit:
        raise DSEError(
            f"space has {space.size():,} points, refusing to enumerate "
            f"more than {limit:,}")
    names = [p.name for p in space.parameters]
    value_lists = [p.values for p in space.parameters]
    for combo in itertools.product(*value_lists):
        yield dict(zip(names, combo))


@dataclass
class ExhaustiveResult:
    """Ground truth for a small space."""

    best_point: dict
    best_qor: float
    evaluated: int
    feasible: int

    @property
    def feasible_fraction(self) -> float:
        return self.feasible / self.evaluated if self.evaluated else 0.0


def exhaustive_search(evaluator: Evaluator, space: DesignSpace,
                      limit: int = 100_000) -> ExhaustiveResult:
    """Evaluate every point; returns the true optimum of the space."""
    best: Optional[Evaluation] = None
    evaluated = 0
    feasible = 0
    for point in enumerate_points(space, limit=limit):
        evaluation = evaluator.evaluate(point)
        evaluated += 1
        if evaluation.qor != float("inf"):
            feasible += 1
        if best is None or evaluation.qor < best.qor:
            best = evaluation
    if best is None:
        raise DSEError("the space is empty")
    return ExhaustiveResult(
        best_point=dict(best.point),
        best_qor=best.qor,
        evaluated=evaluated,
        feasible=feasible,
    )
