"""Vanilla OpenTuner baseline runtime (the dashed lines in Fig. 3).

Characteristics reproduced from the paper:

* no design-space partitioning — one bandit tuner over the whole space;
* random starting point (no seed generation);
* no systematic stopping criterion — only a wall-clock limit (the paper
  uses four hours);
* eight cores spent evaluating the top-8 candidates of each iteration in
  parallel (footnote 3 — "not scalable in terms of the efficiency"): an
  iteration's wall time is the *slowest* of its eight HLS runs, and the
  sequential bandit cannot hand out more useful parallel work than that.
"""

from __future__ import annotations

import random
from typing import Optional

from .bandit import BanditTuner
from .evaluator import Evaluator, ExplorationTrace
from .result import DSERun
from .space import DesignSpace
from .stopping import StoppingCriterion

DEFAULT_TIME_LIMIT_MINUTES = 240.0


class OpenTunerRuntime:
    """The baseline explorer."""

    def __init__(self, evaluator: Evaluator, space: DesignSpace, *,
                 seed: int = 0, parallelism: int = 8,
                 time_limit_minutes: float = DEFAULT_TIME_LIMIT_MINUTES,
                 stopping: Optional[StoppingCriterion] = None):
        self.evaluator = evaluator
        self.space = space
        self.rng = random.Random(seed)
        self.parallelism = parallelism
        self.time_limit = time_limit_minutes
        self.stopping = stopping

    def _top_k_batch(self, tuner: BanditTuner) -> list[tuple[str, dict]]:
        """One bandit iteration's top-k candidates.

        The sequential tuner produces *one* proposal per iteration; the
        remaining k-1 parallel slots are filled with that candidate's
        next-ranked variations (small perturbations), which is what
        "evaluate top-8 candidates at one iteration" buys you — highly
        correlated points, hence the paper's footnote that this use of
        eight cores "is not scalable in terms of the efficiency".
        """
        name, point = tuner.step()
        batch = [(name, point)]
        for _ in range(self.parallelism - 1):
            variant = dict(point)
            for _ in range(1 + (self.rng.random() < 0.4)):
                param = self.rng.choice(self.space.parameters)
                index = param.index_of(variant[param.name])
                index = param.clamp_index(
                    index + self.rng.choice((-1, 1)))
                variant[param.name] = param.values[index]
            batch.append((name, variant))
        return batch

    def run(self) -> DSERun:
        tuner = BanditTuner(self.space, self.rng)
        tuner.add_seed(self.space.random_point(self.rng))  # random start
        trace = ExplorationTrace()
        now = 0.0
        first_qor: float = float("inf")
        first_seen = False
        best_eval = None
        stopped = False

        while now < self.time_limit and not stopped:
            batch = self._top_k_batch(tuner)
            # The iteration's top-k candidates are one evaluator batch —
            # a ParallelEvaluator estimates the misses on its process
            # pool; results (and cached flags) are independent of jobs.
            results = self.evaluator.evaluate_batch(
                [point for _, point in batch])
            evaluations = [(name, evaluation) for (name, _), evaluation
                           in zip(batch, results)]
            # Wall time of the iteration: slowest HLS run of the batch
            # (cached re-evaluations are free).
            duration = max(
                [e.minutes for _, e in evaluations if not e.cached],
                default=0.5)
            now += duration
            for name, evaluation in evaluations:
                if not first_seen:
                    first_qor = evaluation.qor
                    first_seen = True
                improved = tuner.feed(name, evaluation)
                if improved:
                    best_eval = evaluation
                if self.stopping is not None and self.stopping.observe(
                        evaluation.point, evaluation.qor):
                    stopped = True
            trace.record(min(now, self.time_limit), tuner.best.qor,
                         self.evaluator.evaluations)

        return DSERun(
            name="opentuner",
            trace=trace,
            best_point=tuner.best.point,
            best_qor=tuner.best.qor,
            best_result=best_eval.result if best_eval else None,
            evaluations=self.evaluator.evaluations,
            termination_minutes=min(now, self.time_limit),
            first_qor=first_qor,
            space_size=self.space.size(),
            evaluator_stats=self.evaluator.stats()
            if hasattr(self.evaluator, "stats") else None,
        )
