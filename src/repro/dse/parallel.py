"""Process-parallel design-point evaluation.

The paper's headline DSE fans eight HLS evaluations out over eight cores
(Fig. 3); this module supplies the real concurrency behind our virtual
clock.  :class:`ParallelEvaluator` extends the serial
:class:`~repro.dse.evaluator.Evaluator` with a ``ProcessPoolExecutor``:
each batch of candidate points from the tuners is deduplicated against
the in-run cache and the persistent store, and only genuine misses are
estimated out-of-process.

Invariants:

* **Determinism** — ``evaluate_batch`` returns exactly what the serial
  path would: misses are computed by a pure function of the point, and
  cache admission happens in batch order on the host, so ``--jobs 1`` and
  ``--jobs N`` produce identical evaluations, identical ``cached`` flags,
  and identical virtual-clock timelines.
* **Picklable tasks** — workers receive the compiled kernel's C AST once
  (pool initializer) and then only flat point dicts per task; results
  come back as plain :class:`~repro.hls.result.HLSResult` dataclasses.
* **Supervision** — a watchdog reaps each task against a wall-clock
  heartbeat deadline (``worker_timeout``).  A worker that hangs or dies
  gets its pool killed and respawned and the unfinished points requeued
  with bounded retries (``max_task_retries`` per point,
  ``max_pool_respawns`` per batch); because estimation is a pure
  function of the point, a retry cannot change the science — only the
  wall clock and the ``dse.watchdog.*`` metrics.  Only a point whose
  retries are exhausted is reported infeasible, and repeated pool
  failures still degrade the evaluator to in-process estimation.
* **No orphaned workers** — the evaluator is a context manager, and a
  module ``atexit`` hook plus ``__del__`` close any pool that an
  exception or a forgotten ``close()`` would otherwise leak.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import json
import logging
import os
import pickle
import time
import traceback
import weakref
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Optional

from ..compiler.driver import CompiledKernel
from ..cost import AnalyticalCostModel, CostModel
from ..errors import DSEError
from ..hls.device import Device, VU9P
from ..hls.result import HLSResult
from ..obs.span import NULL_TRACER, TraceContext, worker_tracer
from .cache import CacheStore, canonical_key
from .evaluator import Evaluation, Evaluator, error_result

LOGGER = logging.getLogger("repro.dse.parallel")

#: Pool failures in a row before degrading to in-process evaluation.
DEFAULT_MAX_CONSECUTIVE_FAILURES = 3

#: Times a single point is re-queued after its worker hung or died.
DEFAULT_MAX_TASK_RETRIES = 2

#: Pool kill/respawn cycles tolerated within one batch.
DEFAULT_MAX_POOL_RESPAWNS = 3

#: Fault-injection hook for the watchdog tests: ``substr`` hangs every
#: worker task whose canonical point key contains the substring;
#: ``substr@/path/sentinel`` hangs only the first such task across the
#: whole pool (the sentinel file is created atomically), modelling a
#: transiently wedged worker.
CHAOS_HANG_ENV = "S2FA_CHAOS_HANG"

# ----------------------------------------------------------------------
# Worker-side state: the kernel AST ships once per worker via the pool
# initializer; per-task payloads are just flat point dicts.
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(kernel, device: Device,
                 cost_model: Optional[CostModel] = None) -> None:
    _WORKER_STATE["kernel"] = kernel
    _WORKER_STATE["device"] = device
    _WORKER_STATE["cost_model"] = cost_model or AnalyticalCostModel()


def _maybe_chaos_hang(point: dict) -> None:
    spec = os.environ.get(CHAOS_HANG_ENV)
    if not spec:
        return
    substr, _, sentinel = spec.partition("@")
    if substr not in canonical_key(point):
        return
    if sentinel:
        try:
            os.close(os.open(sentinel,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY))
        except FileExistsError:
            return              # hang-once: already fired
    time.sleep(3600)            # wedged until the watchdog kills us


def _worker_estimate(point: dict) -> HLSResult:
    """Pool task: estimate one point; never raises."""
    _maybe_chaos_hang(point)
    device = _WORKER_STATE["device"]
    qor = _WORKER_STATE["cost_model"].safe_score(
        _WORKER_STATE["kernel"], point, device)
    return qor.to_result(device)


def _worker_estimate_traced(point: dict, ctx: TraceContext
                            ) -> tuple[HLSResult, list[dict]]:
    """Traced pool task: estimate one point and return its span forest.

    The host ships its :class:`~repro.obs.span.TraceContext` along with
    the point; the worker records into a private tracer and returns the
    serialized spans, which the host merges under the dispatching span
    (:meth:`~repro.obs.span.Tracer.absorb`).
    """
    _maybe_chaos_hang(point)
    tracer = worker_tracer(ctx)
    device = _WORKER_STATE["device"]
    result = _WORKER_STATE["cost_model"].safe_score(
        _WORKER_STATE["kernel"], point, device,
        tracer=tracer).to_result(device)
    payload = tracer.export()
    for span in payload:
        span["attrs"]["worker_pid"] = os.getpid()
    return result, payload


def _pickling_failure(exc: BaseException) -> bool:
    """Did this pool-level exception come from (un)pickling a task?"""
    if isinstance(exc, pickle.PicklingError):
        return True
    name = type(exc).__name__.lower()
    return "pickl" in name or "pickle" in str(exc).lower()


# ----------------------------------------------------------------------
# Leak guard: any evaluator still holding a pool at interpreter exit is
# closed, so an exception mid-explore cannot orphan worker processes.
# ----------------------------------------------------------------------

_LIVE_EVALUATORS: "weakref.WeakSet[ParallelEvaluator]" = weakref.WeakSet()


@atexit.register
def _close_leaked_pools() -> None:
    for evaluator in list(_LIVE_EVALUATORS):
        try:
            evaluator.close()
        except Exception:       # noqa: BLE001 - interpreter teardown
            pass


@dataclass
class _Task:
    """One pool task being supervised by the watchdog."""

    key: str
    point: dict
    retries: int = 0


class ParallelEvaluator(Evaluator):
    """Evaluator that fans batch misses out over a process pool.

    ``jobs=1`` (the default) never starts a pool and is byte-identical to
    the serial :class:`Evaluator` — which makes it the uniform evaluator
    for every CLI/benchmark entry point.
    """

    # The :class:`Evaluator` dataclass sets ``__hash__ = None`` (eq=True);
    # identity hashing is required for the weak leak-guard registry.
    __hash__ = object.__hash__

    def __init__(self, compiled: CompiledKernel, device: Device = VU9P, *,
                 frequency_aware: bool = True,
                 store: Optional[CacheStore] = None,
                 jobs: int = 1,
                 max_consecutive_failures: int =
                 DEFAULT_MAX_CONSECUTIVE_FAILURES,
                 worker_timeout: Optional[float] = None,
                 max_task_retries: int = DEFAULT_MAX_TASK_RETRIES,
                 max_pool_respawns: int = DEFAULT_MAX_POOL_RESPAWNS,
                 cost_model: Optional[CostModel] = None,
                 tracer=NULL_TRACER):
        super().__init__(compiled=compiled, device=device,
                         frequency_aware=frequency_aware, store=store,
                         cost_model=cost_model or AnalyticalCostModel(),
                         tracer=tracer)
        self.jobs = max(1, int(jobs))
        self.max_consecutive_failures = max(1, max_consecutive_failures)
        self.worker_timeout = worker_timeout
        self.max_task_retries = max(0, int(max_task_retries))
        self.max_pool_respawns = max(0, int(max_pool_respawns))
        self.worker_failures = 0
        self.consecutive_failures = 0
        self.hung_workers = 0
        self.pool_kills = 0
        self.requeues = 0
        self.degraded = False
        self.events: list[dict] = []
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._precomputed: dict[str, tuple[HLSResult, bool]] = {}
        _LIVE_EVALUATORS.add(self)

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_init_worker,
                initargs=(self.compiled.kernel, self.device,
                          self.cost_model))
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _kill_pool(self, reason: str) -> None:
        """Forcibly terminate the pool (hung workers never finish)."""
        pool, self._pool = self._pool, None
        if pool is None:
            return
        self.pool_kills += 1
        self.tracer.metrics.incr("dse.watchdog.pool_kills")
        self._log_event({"event": "pool_kill", "reason": reason})
        processes = getattr(pool, "_processes", None) or {}
        for proc in list(processes.values()):
            try:
                proc.kill()
            except Exception:   # noqa: BLE001 - process already gone
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut the pool down; the evaluator stays usable (in-process)."""
        self._discard_pool()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:       # noqa: BLE001 - interpreter teardown
            pass

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------

    def _log_event(self, event: dict) -> None:
        self.events.append(event)
        LOGGER.warning("%s", json.dumps(event, sort_keys=True))

    def _record_failure(self, key: str, reason: str,
                        tb: Optional[str] = None) -> None:
        self.worker_failures += 1
        self.consecutive_failures += 1
        event = {
            "event": "worker_failure",
            "reason": reason,
            "point_key": key,
            "consecutive": self.consecutive_failures,
        }
        if tb:
            event["traceback"] = tb
        self.tracer.metrics.incr("dse.worker_failures")
        self._log_event(event)
        self._precomputed[key] = (
            error_result(f"worker failure: {reason}", self.device), False)

    def _maybe_degrade(self) -> None:
        if (not self.degraded and self.consecutive_failures
                >= self.max_consecutive_failures):
            self.degraded = True
            self._log_event({
                "event": "degraded_to_in_process",
                "consecutive_failures": self.consecutive_failures,
            })
            self._discard_pool()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _compute(self, point: dict, key: str) -> tuple[HLSResult, bool]:
        precomputed = self._precomputed.pop(key, None)
        if precomputed is not None:
            return precomputed
        return super()._compute(point, key)

    def _accept(self, task: _Task, payload, ctx) -> None:
        """Admit one successful worker result."""
        if ctx is not None:
            result, spans = payload
            self.tracer.absorb(spans, point_key=task.key)
        else:
            result = payload
        self._precomputed[task.key] = (result, True)
        self.consecutive_failures = 0

    def _requeue_or_fail(self, tasks: list[_Task],
                         penalized: set[str], reason: str) -> list[_Task]:
        """Watchdog requeue with bounded retries.

        Tasks in ``penalized`` (the hung/dead ones) pay a retry; the
        merely-unfinished rest are requeued for free.  A task whose
        retries are exhausted is recorded as a worker failure.
        """
        requeued: list[_Task] = []
        for task in tasks:
            if task.key in penalized:
                task.retries += 1
            if task.retries > self.max_task_retries:
                self._record_failure(task.key, reason)
                continue
            self.requeues += 1
            self.tracer.metrics.incr("dse.watchdog.requeues")
            self._log_event({
                "event": "worker_requeue",
                "point_key": task.key,
                "reason": reason,
                "retry": task.retries,
            })
            requeued.append(task)
        return requeued

    def _run_wave(self, pool, tasks: list[_Task], ctx) -> list[_Task]:
        """Submit one wave and reap it under the watchdog.

        Returns the tasks that must be retried on a fresh pool (empty
        when the wave fully resolved).  The pool is killed before any
        non-empty return.
        """
        submitted: list[tuple[_Task, concurrent.futures.Future]] = []
        for i, task in enumerate(tasks):
            try:
                if ctx is not None:
                    future = pool.submit(_worker_estimate_traced,
                                         task.point, ctx)
                else:
                    future = pool.submit(_worker_estimate, task.point)
            except Exception as exc:  # noqa: BLE001 - broken pool
                if _pickling_failure(exc):
                    self._discard_pool()
                    raise DSEError(
                        f"design point {task.key} could not cross the "
                        f"process boundary (pickling failed): "
                        f"{type(exc).__name__}: {exc}") from exc
                rest = [task] + tasks[i + 1:]
                leftover = self._harvest(submitted, ctx) + rest
                self._kill_pool(f"submit failed: {exc}")
                return self._requeue_or_fail(
                    leftover, {t.key for t in rest},
                    f"submit failed: {exc}")
            submitted.append((task, future))

        poisoned = False
        for i, (task, future) in enumerate(submitted):
            try:
                payload = future.result(timeout=self.worker_timeout)
            except concurrent.futures.TimeoutError:
                # Heartbeat deadline blown: declare the worker hung,
                # kill the pool, and requeue everything unfinished.
                self.hung_workers += 1
                self.tracer.metrics.incr("dse.watchdog.hangs")
                self._log_event({
                    "event": "worker_hang",
                    "point_key": task.key,
                    "deadline_seconds": self.worker_timeout,
                })
                leftover = [task] + self._harvest(submitted[i + 1:], ctx)
                self._kill_pool("hung worker")
                return self._requeue_or_fail(
                    leftover, {task.key},
                    f"hung past {self.worker_timeout}s deadline")
            except BrokenProcessPool as exc:
                leftover = ([task]
                            + self._harvest(submitted[i + 1:], ctx))
                self._kill_pool(f"worker died: {exc}")
                return self._requeue_or_fail(
                    leftover, {t.key for t in leftover},
                    f"worker died: {exc}")
            except Exception as exc:  # noqa: BLE001 - pool-level error
                if _pickling_failure(exc):
                    # The point (or its result) cannot cross the process
                    # boundary: that is a caller bug, not a flaky
                    # worker.  Surface it with the offending point's
                    # canonical key instead of swallowing the traceback
                    # into an "infeasible" placeholder.
                    self._discard_pool()
                    raise DSEError(
                        f"design point {task.key} could not cross the "
                        f"process boundary (pickling failed): "
                        f"{type(exc).__name__}: {exc}") from exc
                self._record_failure(task.key, f"pool error: {exc!r}",
                                     tb=traceback.format_exc())
                poisoned = True
                continue
            self._accept(task, payload, ctx)
        if poisoned:
            self._discard_pool()
        return []

    def _harvest(self, submitted, ctx) -> list[_Task]:
        """Salvage finished futures from an aborted wave.

        Completed results are admitted (their work is not wasted); the
        rest come back for requeueing.
        """
        leftover: list[_Task] = []
        for task, future in submitted:
            if future.done() and future.exception() is None:
                self._accept(task, future.result(), ctx)
            else:
                leftover.append(task)
        return leftover

    def _fan_out(self, need: dict[str, dict]) -> None:
        """Estimate the batch's unique misses under watchdog supervision.

        With tracing on, each task carries the host's trace context and
        returns its worker-side span forest, merged under the current
        span; the untraced task payload is unchanged, so tracing off
        costs nothing on this path.
        """
        ctx = self.tracer.context() if self.tracer.enabled else None
        queue = [_Task(key=key, point=point)
                 for key, point in need.items()]
        respawns = 0
        while queue:
            try:
                pool = self._ensure_pool()
            except Exception as exc:  # noqa: BLE001 - OS-level failure
                for task in queue:
                    self._record_failure(task.key,
                                         f"pool start failed: {exc}")
                break
            queue = self._run_wave(pool, queue, ctx)
            if not queue:
                break
            respawns += 1
            if respawns > self.max_pool_respawns:
                for task in queue:
                    self._record_failure(
                        task.key,
                        f"gave up after {self.max_pool_respawns} pool "
                        f"respawns")
                break
            self.tracer.metrics.incr("dse.watchdog.pool_respawns")
        self._maybe_degrade()

    def evaluate_batch(self, points: list[dict]) -> list[Evaluation]:
        """Batch evaluation with out-of-process misses.

        The three cache layers are consulted exactly as in the serial
        path; only points absent from all of them are shipped to workers.
        Admission (and hence ``cached`` flags, counters, and persistent
        writes) happens in batch order on the host, so the results are
        indistinguishable from serial evaluation.
        """
        if self.jobs > 1 and not self.degraded:
            need: dict[str, dict] = {}
            for point in points:
                key = canonical_key(point)
                if key in self._cache or key in self._precomputed:
                    continue
                if self.store is not None and self.store.contains(
                        self.kernel_digest, key):
                    continue
                need.setdefault(key, point)
            if need:
                self._fan_out(need)
        return super().evaluate_batch(points)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        data = super().stats()
        data.update({
            "jobs": self.jobs,
            "worker_failures": self.worker_failures,
            "hung_workers": self.hung_workers,
            "pool_kills": self.pool_kills,
            "requeues": self.requeues,
            "degraded": self.degraded,
            "events": len(self.events),
        })
        return data
