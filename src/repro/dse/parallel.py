"""Process-parallel design-point evaluation.

The paper's headline DSE fans eight HLS evaluations out over eight cores
(Fig. 3); this module supplies the real concurrency behind our virtual
clock.  :class:`ParallelEvaluator` extends the serial
:class:`~repro.dse.evaluator.Evaluator` with a ``ProcessPoolExecutor``:
each batch of candidate points from the tuners is deduplicated against
the in-run cache and the persistent store, and only genuine misses are
estimated out-of-process.

Invariants:

* **Determinism** — ``evaluate_batch`` returns exactly what the serial
  path would: misses are computed by a pure function of the point, and
  cache admission happens in batch order on the host, so ``--jobs 1`` and
  ``--jobs N`` produce identical evaluations, identical ``cached`` flags,
  and identical virtual-clock timelines.
* **Picklable tasks** — workers receive the compiled kernel's C AST once
  (pool initializer) and then only flat point dicts per task; results
  come back as plain :class:`~repro.hls.result.HLSResult` dataclasses.
* **Fault tolerance** — a worker that raises returns an infeasible
  result (same as in-process, see
  :func:`~repro.dse.evaluator.safe_estimate`); a worker that *dies* or
  times out marks its point infeasible, logs a structured event, and
  counts toward a consecutive-failure threshold after which the evaluator
  permanently degrades to in-process evaluation.
"""

from __future__ import annotations

import concurrent.futures
import json
import logging
import os
import pickle
import traceback
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from ..compiler.driver import CompiledKernel
from ..errors import DSEError
from ..hls.device import Device, VU9P
from ..hls.result import HLSResult
from ..obs.span import NULL_TRACER, TraceContext, worker_tracer
from .cache import CacheStore, canonical_key
from .evaluator import Evaluation, Evaluator, error_result, safe_estimate

LOGGER = logging.getLogger("repro.dse.parallel")

#: Pool failures in a row before degrading to in-process evaluation.
DEFAULT_MAX_CONSECUTIVE_FAILURES = 3

# ----------------------------------------------------------------------
# Worker-side state: the kernel AST ships once per worker via the pool
# initializer; per-task payloads are just flat point dicts.
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _init_worker(kernel, device: Device) -> None:
    _WORKER_STATE["kernel"] = kernel
    _WORKER_STATE["device"] = device


def _worker_estimate(point: dict) -> HLSResult:
    """Pool task: estimate one point; never raises."""
    return safe_estimate(_WORKER_STATE["kernel"], point,
                         _WORKER_STATE["device"])


def _worker_estimate_traced(point: dict, ctx: TraceContext
                            ) -> tuple[HLSResult, list[dict]]:
    """Traced pool task: estimate one point and return its span forest.

    The host ships its :class:`~repro.obs.span.TraceContext` along with
    the point; the worker records into a private tracer and returns the
    serialized spans, which the host merges under the dispatching span
    (:meth:`~repro.obs.span.Tracer.absorb`).
    """
    tracer = worker_tracer(ctx)
    result = safe_estimate(_WORKER_STATE["kernel"], point,
                           _WORKER_STATE["device"], tracer=tracer)
    payload = tracer.export()
    for span in payload:
        span["attrs"]["worker_pid"] = os.getpid()
    return result, payload


def _pickling_failure(exc: BaseException) -> bool:
    """Did this pool-level exception come from (un)pickling a task?"""
    if isinstance(exc, pickle.PicklingError):
        return True
    name = type(exc).__name__.lower()
    return "pickl" in name or "pickle" in str(exc).lower()


class ParallelEvaluator(Evaluator):
    """Evaluator that fans batch misses out over a process pool.

    ``jobs=1`` (the default) never starts a pool and is byte-identical to
    the serial :class:`Evaluator` — which makes it the uniform evaluator
    for every CLI/benchmark entry point.
    """

    def __init__(self, compiled: CompiledKernel, device: Device = VU9P, *,
                 frequency_aware: bool = True,
                 store: Optional[CacheStore] = None,
                 jobs: int = 1,
                 max_consecutive_failures: int =
                 DEFAULT_MAX_CONSECUTIVE_FAILURES,
                 worker_timeout: Optional[float] = None,
                 tracer=NULL_TRACER):
        super().__init__(compiled=compiled, device=device,
                         frequency_aware=frequency_aware, store=store,
                         tracer=tracer)
        self.jobs = max(1, int(jobs))
        self.max_consecutive_failures = max(1, max_consecutive_failures)
        self.worker_timeout = worker_timeout
        self.worker_failures = 0
        self.consecutive_failures = 0
        self.degraded = False
        self.events: list[dict] = []
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None
        self._precomputed: dict[str, tuple[HLSResult, bool]] = {}

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs, initializer=_init_worker,
                initargs=(self.compiled.kernel, self.device))
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def close(self) -> None:
        """Shut the pool down; the evaluator stays usable (in-process)."""
        self._discard_pool()

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Failure accounting
    # ------------------------------------------------------------------

    def _log_event(self, event: dict) -> None:
        self.events.append(event)
        LOGGER.warning("%s", json.dumps(event, sort_keys=True))

    def _record_failure(self, key: str, reason: str,
                        tb: Optional[str] = None) -> None:
        self.worker_failures += 1
        self.consecutive_failures += 1
        event = {
            "event": "worker_failure",
            "reason": reason,
            "point_key": key,
            "consecutive": self.consecutive_failures,
        }
        if tb:
            event["traceback"] = tb
        self.tracer.metrics.incr("dse.worker_failures")
        self._log_event(event)
        self._precomputed[key] = (
            error_result(f"worker failure: {reason}", self.device), False)

    def _maybe_degrade(self) -> None:
        if (not self.degraded and self.consecutive_failures
                >= self.max_consecutive_failures):
            self.degraded = True
            self._log_event({
                "event": "degraded_to_in_process",
                "consecutive_failures": self.consecutive_failures,
            })
            self._discard_pool()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _compute(self, point: dict, key: str) -> tuple[HLSResult, bool]:
        precomputed = self._precomputed.pop(key, None)
        if precomputed is not None:
            return precomputed
        return super()._compute(point, key)

    def _fan_out(self, need: dict[str, dict]) -> None:
        """Estimate the batch's unique misses on the pool.

        With tracing on, each task carries the host's trace context and
        returns its worker-side span forest, merged under the current
        span; the untraced task payload is unchanged, so tracing off
        costs nothing on this path.
        """
        try:
            pool = self._ensure_pool()
        except Exception as exc:  # noqa: BLE001 - OS-level pool failure
            for key in need:
                self._record_failure(key, f"pool start failed: {exc}")
            self._maybe_degrade()
            return

        ctx = self.tracer.context() if self.tracer.enabled else None
        submitted: list[tuple[str, concurrent.futures.Future]] = []
        broken = False
        for key, point in need.items():
            try:
                if ctx is not None:
                    future = pool.submit(_worker_estimate_traced, point,
                                         ctx)
                else:
                    future = pool.submit(_worker_estimate, point)
                submitted.append((key, future))
            except (BrokenProcessPool, RuntimeError) as exc:
                self._record_failure(key, f"submit failed: {exc}")
                broken = True

        for key, future in submitted:
            try:
                payload = future.result(timeout=self.worker_timeout)
                if ctx is not None:
                    result, spans = payload
                    self.tracer.absorb(spans, point_key=key)
                else:
                    result = payload
                self._precomputed[key] = (result, True)
                self.consecutive_failures = 0
            except concurrent.futures.TimeoutError:
                self._record_failure(
                    key, f"timeout after {self.worker_timeout}s")
                broken = True
            except BrokenProcessPool as exc:
                self._record_failure(key, f"worker died: {exc}")
                broken = True
            except Exception as exc:  # noqa: BLE001 - pool-level error
                if _pickling_failure(exc):
                    # The point (or its result) cannot cross the process
                    # boundary: that is a caller bug, not a flaky
                    # worker.  Surface it with the offending point's
                    # canonical key instead of swallowing the traceback
                    # into an "infeasible" placeholder.
                    self._discard_pool()
                    raise DSEError(
                        f"design point {key} could not cross the "
                        f"process boundary (pickling failed): "
                        f"{type(exc).__name__}: {exc}") from exc
                self._record_failure(key, f"pool error: {exc!r}",
                                     tb=traceback.format_exc())
                broken = True

        if broken:
            self._discard_pool()
        self._maybe_degrade()

    def evaluate_batch(self, points: list[dict]) -> list[Evaluation]:
        """Batch evaluation with out-of-process misses.

        The three cache layers are consulted exactly as in the serial
        path; only points absent from all of them are shipped to workers.
        Admission (and hence ``cached`` flags, counters, and persistent
        writes) happens in batch order on the host, so the results are
        indistinguishable from serial evaluation.
        """
        if self.jobs > 1 and not self.degraded:
            need: dict[str, dict] = {}
            for point in points:
                key = canonical_key(point)
                if key in self._cache or key in self._precomputed:
                    continue
                if self.store is not None and self.store.contains(
                        self.kernel_digest, key):
                    continue
                need.setdefault(key, point)
            if need:
                self._fan_out(need)
        return super().evaluate_batch(points)

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        data = super().stats()
        data.update({
            "jobs": self.jobs,
            "worker_failures": self.worker_failures,
            "degraded": self.degraded,
            "events": len(self.events),
        })
        return data
