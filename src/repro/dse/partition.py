"""Static design-space partitioning with a decision tree (Section 4.3.1).

S2FA partitions the space *before* exploration ("some-for-all" static
rules) instead of DATuner's per-run dynamic sampling.  Rules come from two
methodologies the paper describes:

* loop hierarchy — the same loop level tends to impact performance the
  same way across applications, so structural factors (pipeline modes and
  parallel factors, outermost first) are the split candidates;
* RDD transformation semantics — the outermost (task) loop was inserted by
  the compiler for the ``map``/``reduce`` pattern, so its scheduling is
  ranked first.

The tree greedily maximizes information gain (Eq. 1) with variance as the
impurity function (the target is regressed latency).  A root-to-leaf path
conjoins its rules into one partition; partitions are disjoint and cover
the space, preserving optimality.

Training data comes from the analytical model on a rule-characterization
sample.  The paper's rules are established offline from applications with
similar loop hierarchies, so this characterization charges *no* DSE
virtual time — that is exactly the "avoid set-up time" advantage over
DATuner that Section 4.3 claims.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable

from .space import DesignSpace, Parameter


@dataclass
class Partition:
    """A conjunction of rules restricting some parameters."""

    constraints: dict[str, tuple]
    predicted_qor: float
    rules: list[str] = field(default_factory=list)
    index: int = 0

    def subspace(self, space: DesignSpace) -> DesignSpace:
        return space.restrict(self.constraints)

    def describe(self) -> str:
        return " AND ".join(self.rules) if self.rules else "(whole space)"


@dataclass
class _Sample:
    point: dict
    qor: float


def _variance(samples: list[_Sample]) -> float:
    if len(samples) < 2:
        return 0.0
    values = [s.qor for s in samples]
    mean = sum(values) / len(values)
    return sum((v - mean) ** 2 for v in values) / len(values)


def _information_gain(parent: list[_Sample], left: list[_Sample],
                      right: list[_Sample]) -> float:
    """Eq. 1 with variance impurity."""
    n = len(parent)
    if not left or not right:
        return 0.0
    return (_variance(parent)
            - len(left) / n * _variance(left)
            - len(right) / n * _variance(right))


def _candidate_splits(param: Parameter):
    """Yield (predicate, left_values, right_values, rule_text)."""
    values = param.values
    if param.kind == "pipeline":
        for mode in values:
            left = tuple(v for v in values if v == mode)
            right = tuple(v for v in values if v != mode)
            if left and right:
                yield (left, right, f"{param.name} == {mode}")
        return
    # Numeric: thresholds between consecutive values.
    for i in range(len(values) - 1):
        threshold = values[i]
        left = tuple(values[:i + 1])
        right = tuple(values[i + 1:])
        yield (left, right, f"{param.name} <= {threshold}")


def _structural_parameters(space: DesignSpace) -> list[Parameter]:
    """Split candidates: pipeline/parallel factors, outermost loops first.

    Loop depth is approximated by label length (labels are hierarchical:
    ``L0`` is the task loop, ``call_L0_0`` is nested deeper).
    """
    params = [p for p in space.parameters
              if p.kind in ("pipeline", "parallel") and p.cardinality > 1]

    def depth_key(p: Parameter) -> tuple:
        label = p.loop or ""
        is_task = 0 if label.startswith("L") and "_" not in label else 1
        return (is_task, label.count("_"), label, p.kind)

    return sorted(params, key=depth_key)


def characterize(space: DesignSpace, probe: Callable[[dict], float],
                 rng: random.Random, samples: int = 64) -> list[_Sample]:
    """Draw the rule-characterization sample through ``probe``.

    Infeasible points (inf QoR) are kept at a large finite surrogate so
    the tree learns to isolate infeasible regions rather than ignoring
    them.
    """
    data: list[_Sample] = []
    for _ in range(samples):
        point = space.random_point(rng)
        qor = probe(point)
        data.append(_Sample(point=point, qor=qor))
    finite = [s.qor for s in data if math.isfinite(s.qor)]
    surrogate = (max(finite) * 10 if finite else 1.0)
    for s in data:
        if not math.isfinite(s.qor):
            s.qor = surrogate
    return data


def build_partitions(space: DesignSpace, probe: Callable[[dict], float],
                     rng: random.Random, max_partitions: int = 8,
                     samples: int = 64,
                     min_leaf: int = 4) -> list[Partition]:
    """Grow the decision tree and return ranked leaf partitions."""
    data = characterize(space, probe, rng, samples)
    candidates = _structural_parameters(space)
    if not candidates:
        return [Partition(constraints={}, predicted_qor=0.0, index=0)]

    max_depth = max(1, math.ceil(math.log2(max_partitions)))
    leaves: list[Partition] = []

    def grow(samples_here: list[_Sample], constraints: dict,
             rules: list[str], depth: int) -> None:
        if depth >= max_depth or len(samples_here) < 2 * min_leaf:
            _emit_leaf(samples_here, constraints, rules)
            return
        best = None
        # RDD-semantics rule (Section 4.3.1): the scheduling (pipeline
        # mode) of the compiler-inserted loops is ranked ahead of the
        # numeric factors for the first split levels.
        level_candidates = [p for p in candidates if p.kind == "pipeline"] \
            if depth < 2 else candidates
        if not any(len(constraints.get(p.name, p.values)) > 1
                   for p in level_candidates):
            level_candidates = candidates
        for param in level_candidates:
            allowed = constraints.get(param.name, param.values)
            if len(allowed) < 2:
                continue
            restricted = Parameter(name=param.name, values=tuple(allowed),
                                   kind=param.kind, loop=param.loop)
            for left_vals, right_vals, rule in _candidate_splits(restricted):
                left = [s for s in samples_here
                        if s.point[param.name] in left_vals]
                right = [s for s in samples_here
                         if s.point[param.name] in right_vals]
                if len(left) < min_leaf or len(right) < min_leaf:
                    continue
                gain = _information_gain(samples_here, left, right)
                if best is None or gain > best[0]:
                    best = (gain, param, left_vals, right_vals, rule,
                            left, right)
        if best is None or best[0] <= 0:
            _emit_leaf(samples_here, constraints, rules)
            return
        _, param, left_vals, right_vals, rule, left, right = best
        left_constraints = dict(constraints)
        left_constraints[param.name] = left_vals
        right_constraints = dict(constraints)
        right_constraints[param.name] = right_vals
        grow(left, left_constraints, rules + [rule], depth + 1)
        grow(right, right_constraints, rules + [f"NOT({rule})"], depth + 1)

    def _emit_leaf(samples_here: list[_Sample], constraints: dict,
                   rules: list[str]) -> None:
        mean = (sum(s.qor for s in samples_here) / len(samples_here)
                if samples_here else float("inf"))
        leaves.append(Partition(constraints=dict(constraints),
                                predicted_qor=mean, rules=list(rules)))

    grow(data, {}, [], 0)
    # Rank by predicted quality (best first) and index them.
    leaves.sort(key=lambda p: p.predicted_qor)
    for i, leaf in enumerate(leaves):
        leaf.index = i
    return leaves
