"""DSE run results."""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Optional

from ..hls.result import HLSResult
from .evaluator import ExplorationTrace


@dataclass
class PartitionReport:
    """Per-partition outcome inside an S2FA run."""

    index: int
    description: str
    evaluations: int
    best_qor: float
    stopped_early: bool
    start_minutes: float
    end_minutes: float


@dataclass
class DSERun:
    """Outcome of one exploration (S2FA or the OpenTuner baseline)."""

    name: str
    trace: ExplorationTrace
    best_point: Optional[dict]
    best_qor: float
    best_result: Optional[HLSResult]
    evaluations: int
    termination_minutes: float
    #: QoR of the very first evaluated point (seed effectiveness, Fig. 3)
    first_qor: float = float("inf")
    partitions: list[PartitionReport] = field(default_factory=list)
    space_size: int = 0
    #: evaluation-backend statistics (pool size, batching, cache hits,
    #: worker failures) captured at the end of the run
    evaluator_stats: Optional[dict] = None
    #: surrogate pruning statistics (model identity, points pruned,
    #: finalize revalidation outcome); ``None`` when no surrogate ran
    surrogate_stats: Optional[dict] = None
    #: whether this run was restored from a checkpoint.  Deliberately
    #: excluded from :meth:`to_dict`: a resumed run's report must be
    #: bit-identical to the uninterrupted run's.
    resumed: bool = False

    @property
    def best_seconds_per_batch(self) -> float:
        if self.best_result is None:
            return float("inf")
        return self.best_result.seconds_per_batch

    def to_dict(self) -> dict:
        """JSON-serializable summary (for plotting/archiving DSE runs)."""
        def finite(value: float):
            return value if math.isfinite(value) else None

        summary = {
            "name": self.name,
            "best_qor": finite(self.best_qor),
            "best_point": self.best_point,
            "evaluations": self.evaluations,
            "termination_minutes": self.termination_minutes,
            "first_qor": finite(self.first_qor),
            "space_size": float(self.space_size),
            "trace": [
                {"minutes": p.minutes, "best_qor": finite(p.best_qor),
                 "evaluations": p.evaluations}
                for p in self.trace.points
            ],
            "partitions": [
                {"index": p.index, "description": p.description,
                 "evaluations": p.evaluations,
                 "best_qor": finite(p.best_qor),
                 "stopped_early": p.stopped_early,
                 "start_minutes": p.start_minutes,
                 "end_minutes": p.end_minutes}
                for p in self.partitions
            ],
        }
        if self.evaluator_stats is not None:
            summary["evaluator_stats"] = self.evaluator_stats
        if self.surrogate_stats is not None:
            summary["surrogate_stats"] = self.surrogate_stats
        if self.best_result is not None:
            hls = self.best_result
            summary["best_design"] = {
                "cycles": hls.cycles,
                "freq_mhz": hls.freq_mhz,
                "utilization": {k: round(v, 4)
                                for k, v in hls.utilization.items()},
                "memory_bound": hls.memory_bound,
            }
        return summary

    def to_json(self, indent: int = 2) -> str:
        """Serialize :meth:`to_dict` to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)
