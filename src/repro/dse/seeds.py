"""Seed generation for each partition (Section 4.3.2).

Two seeds per partition:

* the **performance-driven** seed enables pipelining on every loop, sets
  every parallel factor to 32, and maxes out buffer bit-widths — it may
  fail synthesis for some designs but slashes iteration counts for the
  rest;
* the **area-driven (conservative)** seed disables every optimization and
  uses minimum widths — guaranteed to start the learner in the feasible
  region, so a partition can never be trapped in an infeasible zone from
  the first step.
"""

from __future__ import annotations

from .space import DesignSpace

PERFORMANCE_PARALLEL = 32


def performance_seed(space: DesignSpace) -> dict:
    """Pipeline everything, parallel factor 32, widest buffers."""
    point = {}
    for p in space.parameters:
        if p.kind == "pipeline":
            point[p.name] = "on" if "on" in p.values else p.values[-1]
        elif p.kind == "parallel":
            candidates = [v for v in p.values
                          if v <= PERFORMANCE_PARALLEL]
            point[p.name] = candidates[-1] if candidates else p.values[0]
        elif p.kind == "bitwidth":
            point[p.name] = p.values[-1]
        else:  # tile
            point[p.name] = p.values[0]
    return point


def area_seed(space: DesignSpace) -> dict:
    """All optimizations off, minimum bit-widths (always feasible)."""
    return space.default_point()


def seeds_for(space: DesignSpace) -> list[dict]:
    """Both seeds, performance-driven first."""
    return [performance_seed(space), area_seed(space)]
