"""Design space identification (Table 1 of the paper).

The space is built from the kernel's loop tree and interface layout:

========================  ==================================================
Factor                    Values
========================  ==================================================
Buffer bit-width          powers of two, element width .. 512
Loop tiling               powers of two, 1 .. trip count
Loop parallel             powers of two, 1 .. min(trip count, 256)
Loop pipeline             off / on / flatten
========================  ==================================================

Every parameter keeps its full value list even when another factor can
invalidate it (Impediment 2) — the space is *not* pruned, matching the
paper's design decision in Section 4.3.2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..compiler.driver import CompiledKernel
from ..errors import DSEError
from ..hlsc.analysis import flatten_loop_tree, kernel_loop_tree
from ..merlin.config import DesignConfig
from ..utils import pow2_range

MAX_PARALLEL = 256
MAX_BITWIDTH = 512


@dataclass(frozen=True)
class Parameter:
    """One tunable factor with its discrete value list."""

    name: str
    values: tuple
    kind: str          # "tile" | "parallel" | "pipeline" | "bitwidth"
    loop: Optional[str] = None   # owning loop label, if any

    @property
    def cardinality(self) -> int:
        return len(self.values)

    def index_of(self, value) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise DSEError(
                f"value {value!r} not in parameter {self.name}") from None

    def clamp_index(self, index: float) -> int:
        return max(0, min(len(self.values) - 1, int(round(index))))


@dataclass
class DesignSpace:
    """The complete factor space of one kernel."""

    parameters: list[Parameter] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {p.name: p for p in self.parameters}

    def parameter(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise DSEError(f"unknown parameter {name!r}") from None

    @property
    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def size(self) -> int:
        total = 1
        for p in self.parameters:
            total *= p.cardinality
        return total

    def default_point(self) -> dict:
        """Most conservative point: factor 1 / off / minimum width."""
        return {p.name: p.values[0] for p in self.parameters}

    def random_point(self, rng: random.Random) -> dict:
        return {p.name: rng.choice(p.values) for p in self.parameters}

    def validate(self, point: dict) -> None:
        if set(point) != set(self._by_name):
            missing = set(self._by_name) - set(point)
            extra = set(point) - set(self._by_name)
            raise DSEError(
                f"point does not match the space (missing={sorted(missing)},"
                f" extra={sorted(extra)})")
        for name, value in point.items():
            if value not in self._by_name[name].values:
                raise DSEError(
                    f"value {value!r} invalid for parameter {name}")

    def to_config(self, point: dict) -> DesignConfig:
        return DesignConfig.from_point(point)

    def restrict(self, constraints: dict[str, tuple]) -> "DesignSpace":
        """Sub-space with some parameters limited to value subsets."""
        params = []
        for p in self.parameters:
            if p.name in constraints:
                allowed = tuple(v for v in p.values
                                if v in constraints[p.name])
                if not allowed:
                    raise DSEError(
                        f"constraints empty out parameter {p.name}")
                params.append(Parameter(name=p.name, values=allowed,
                                        kind=p.kind, loop=p.loop))
            else:
                params.append(p)
        return DesignSpace(parameters=params)

    def project(self, point: dict) -> dict:
        """Clamp a point into this (possibly restricted) space."""
        projected = {}
        for p in self.parameters:
            value = point.get(p.name, p.values[0])
            if value in p.values:
                projected[p.name] = value
            else:
                # Nearest allowed value (numeric), else first.
                numeric = [v for v in p.values
                           if isinstance(v, (int, float))]
                if numeric and isinstance(value, (int, float)):
                    projected[p.name] = min(
                        numeric, key=lambda v: abs(v - value))
                else:
                    projected[p.name] = p.values[0]
        return projected


def build_space(compiled: CompiledKernel) -> DesignSpace:
    """Identify the Table 1 design space of a compiled kernel."""
    roots = kernel_loop_tree(compiled.kernel)
    loops = flatten_loop_tree(roots)
    parameters: list[Parameter] = []
    for info in loops:
        trip = info.trip_count or compiled.batch_size
        tiles = tuple(pow2_range(1, max(1, trip)))
        parallels = tuple(pow2_range(1, max(1, min(trip, MAX_PARALLEL))))
        parameters.append(Parameter(
            name=f"{info.label}.tile", values=tiles, kind="tile",
            loop=info.label))
        parameters.append(Parameter(
            name=f"{info.label}.parallel", values=parallels,
            kind="parallel", loop=info.label))
        parameters.append(Parameter(
            name=f"{info.label}.pipeline", values=("off", "on", "flatten"),
            kind="pipeline", loop=info.label))
    for leaf in compiled.layout.leaves:
        low = max(16, leaf.ctype.width_bits)
        widths = tuple(pow2_range(low, MAX_BITWIDTH))
        parameters.append(Parameter(
            name=f"bw.{leaf.name}", values=widths, kind="bitwidth"))
    return DesignSpace(parameters=parameters)
