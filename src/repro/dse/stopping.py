"""Early-stopping criteria for the DSE process (Section 4.3.3).

:class:`EntropyStopping` implements Eq. 2: track, per design factor, the
experimental probability that mutating the factor produced an "uphill"
(improving) result; terminate when the Shannon entropy of that
distribution stabilizes (|H_i - H_{i-1}| <= theta for N consecutive
iterations) — low uncertainty that the next iteration finds anything new.

:class:`NoImprovementStopping` is the trivial criterion the paper
evaluates against (stop after K idle iterations); it terminates about an
hour later for ~4% QoR in their measurements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional


class StoppingCriterion:
    """Interface: observe evaluations, say when to stop."""

    def observe(self, point: dict, qor: float) -> bool:
        raise NotImplementedError


@dataclass
class EntropyStopping(StoppingCriterion):
    """Shannon-entropy convergence over per-factor uphill probabilities."""

    theta: float = 0.03
    consecutive: int = 3
    min_iterations: int = 16
    #: a partition whose mutations never produce an uphill result is
    #: abandoned after this many iterations (H is identically zero there,
    #: which Eq. 2 reads as "certain that nothing better will come")
    hopeless_iterations: int = 20

    _mutations: dict[str, int] = field(default_factory=dict)
    _uphill: dict[str, int] = field(default_factory=dict)
    _prev_point: Optional[dict] = None
    _prev_qor: float = float("inf")
    _prev_entropy: Optional[float] = None
    _streak: int = 0
    iterations: int = 0

    def entropy(self) -> float:
        probabilities = []
        for factor, count in self._mutations.items():
            if count:
                probabilities.append(self._uphill.get(factor, 0) / count)
        total = sum(probabilities)
        if total <= 0:
            return 0.0
        h = 0.0
        for p in probabilities:
            q = p / total
            if q > 0:
                h -= q * math.log(q)
        return h

    def observe(self, point: dict, qor: float) -> bool:
        self.iterations += 1
        if self._prev_point is not None:
            changed = [name for name, value in point.items()
                       if self._prev_point.get(name) != value]
            improved = qor < self._prev_qor
            for factor in changed:
                self._mutations[factor] = \
                    self._mutations.get(factor, 0) + 1
                if improved:
                    self._uphill[factor] = self._uphill.get(factor, 0) + 1
        self._prev_point = dict(point)
        self._prev_qor = min(self._prev_qor, qor)

        h = self.entropy()
        stop = False
        uphill_total = sum(self._uphill.values())
        if self._prev_entropy is not None:
            if abs(h - self._prev_entropy) <= self.theta:
                self._streak += 1
            else:
                self._streak = 0
            if uphill_total > 0:
                # The uphill distribution is informed: stop once its
                # entropy has stabilized (Eq. 2).
                stop = (self._streak >= self.consecutive
                        and self.iterations >= self.min_iterations)
            else:
                # No mutation has ever improved anything here: H == 0
                # with certainty — abandon after a grace period.
                stop = self.iterations >= self.hopeless_iterations
        self._prev_entropy = h
        return stop


@dataclass
class NoImprovementStopping(StoppingCriterion):
    """Stop after ``patience`` iterations without a new best."""

    patience: int = 10
    min_iterations: int = 5

    _best: float = float("inf")
    _idle: int = 0
    iterations: int = 0

    def observe(self, point: dict, qor: float) -> bool:
        self.iterations += 1
        if qor < self._best:
            self._best = qor
            self._idle = 0
        else:
            self._idle += 1
        return (self._idle >= self.patience
                and self.iterations >= self.min_iterations)


@dataclass
class NeverStop(StoppingCriterion):
    """Vanilla OpenTuner: only the external time limit terminates."""

    def observe(self, point: dict, qor: float) -> bool:
        return False
