"""Reinforcement-learning search techniques (Section 4.2)."""

from .base import BestTracker, SearchTechnique  # noqa: F401
from .de import DifferentialEvolution  # noqa: F401
from .greedy import UniformGreedyMutation  # noqa: F401
from .pso import ParticleSwarm  # noqa: F401
from .sa import SimulatedAnnealing  # noqa: F401
