"""Common machinery for search techniques.

Techniques operate on *index vectors*: each parameter's value is its index
into the parameter's discrete value list, giving every algorithm a uniform
integer box to move in regardless of whether the factor is a power-of-two
range or a categorical pipeline mode.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..evaluator import Evaluation
from ..space import DesignSpace


def point_to_indices(space: DesignSpace, point: dict) -> list[int]:
    return [p.index_of(point[p.name]) for p in space.parameters]


def indices_to_point(space: DesignSpace, indices: list[int]) -> dict:
    return {
        p.name: p.values[p.clamp_index(index)]
        for p, index in zip(space.parameters, indices)
    }


def random_indices(space: DesignSpace, rng: random.Random) -> list[int]:
    return [rng.randrange(p.cardinality) for p in space.parameters]


@dataclass
class BestTracker:
    """Shared best-so-far state handed to every technique."""

    point: dict | None = None
    qor: float = float("inf")

    def update(self, evaluation: Evaluation) -> bool:
        if evaluation.qor < self.qor:
            self.qor = evaluation.qor
            self.point = dict(evaluation.point)
            return True
        return False


class SearchTechnique:
    """Interface every search technique implements."""

    name = "base"

    def __init__(self, space: DesignSpace, rng: random.Random):
        self.space = space
        self.rng = rng

    def propose(self, best: BestTracker) -> dict:
        """Produce the next point to evaluate."""
        raise NotImplementedError

    def observe(self, evaluation: Evaluation) -> None:
        """Feed back the result of a point this technique proposed."""
