"""Differential evolution genetic algorithm."""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..evaluator import Evaluation
from ..space import DesignSpace
from .base import (
    BestTracker,
    SearchTechnique,
    indices_to_point,
    point_to_indices,
    random_indices,
)


@dataclass
class _Member:
    indices: list[int]
    qor: float = float("inf")
    pending: dict | None = None


class DifferentialEvolution(SearchTechnique):
    """DE/rand/1/bin over the parameter index space."""

    name = "differential-evolution"

    def __init__(self, space: DesignSpace, rng: random.Random,
                 population: int = 6, f: float = 0.8, cr: float = 0.8):
        super().__init__(space, rng)
        self.f = f
        self.cr = cr
        self.members = [
            _Member(indices=random_indices(space, rng))
            for _ in range(max(4, population))
        ]
        self._cursor = 0
        self._initializing = len(self.members)

    def propose(self, best: BestTracker) -> dict:
        if self._initializing > 0:
            member = self.members[len(self.members) - self._initializing]
            self._initializing -= 1
            point = indices_to_point(self.space, member.indices)
            member.pending = point
            return point
        target = self.members[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.members)
        a, b, c = self.rng.sample(
            [m for m in self.members if m is not target], 3)
        mutant = [
            round(ai + self.f * (bi - ci))
            for ai, bi, ci in zip(a.indices, b.indices, c.indices)
        ]
        trial = []
        force = self.rng.randrange(len(mutant))
        for i, p in enumerate(self.space.parameters):
            if self.rng.random() < self.cr or i == force:
                trial.append(p.clamp_index(mutant[i]))
            else:
                trial.append(target.indices[i])
        point = indices_to_point(self.space, trial)
        target.pending = point
        return point

    def observe(self, evaluation: Evaluation) -> None:
        for member in self.members:
            if member.pending is not None \
                    and member.pending == evaluation.point:
                if evaluation.qor <= member.qor:
                    member.qor = evaluation.qor
                    member.indices = point_to_indices(
                        self.space, self.space.project(evaluation.point))
                member.pending = None
                return
        # Unsolicited result (a seed or another technique's point):
        # adopt it when it beats the current worst member, so the
        # population benefits from everything the tuner has seen.
        worst = max(self.members, key=lambda m: m.qor)
        if evaluation.qor < worst.qor:
            worst.qor = evaluation.qor
            worst.indices = point_to_indices(
                self.space, self.space.project(evaluation.point))
