"""Uniform greedy mutation (one of the paper's four RL techniques)."""

from __future__ import annotations

import random

from ..space import DesignSpace
from .base import BestTracker, SearchTechnique


class UniformGreedyMutation(SearchTechnique):
    """Mutate the best known point, each parameter with equal probability.

    Before any feasible point exists it explores uniformly at random.
    """

    name = "greedy-mutation"

    def __init__(self, space: DesignSpace, rng: random.Random,
                 mutation_rate: float = 0.15):
        super().__init__(space, rng)
        self.mutation_rate = mutation_rate

    def propose(self, best: BestTracker) -> dict:
        if best.point is None:
            return self.space.random_point(self.rng)
        point = dict(self.space.project(best.point))
        params = self.space.parameters
        mutated = False
        for p in params:
            if self.rng.random() < self.mutation_rate:
                point[p.name] = self.rng.choice(p.values)
                mutated = True
        if not mutated:
            p = self.rng.choice(params)
            point[p.name] = self.rng.choice(p.values)
        return point
