"""Particle swarm optimization."""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..evaluator import Evaluation
from ..space import DesignSpace
from .base import (
    BestTracker,
    SearchTechnique,
    indices_to_point,
    point_to_indices,
    random_indices,
)


@dataclass
class _Particle:
    position: list[float]
    velocity: list[float]
    best_position: list[float] = field(default_factory=list)
    best_qor: float = float("inf")
    pending: dict | None = None


class ParticleSwarm(SearchTechnique):
    """Canonical PSO with inertia/cognitive/social terms in index space."""

    name = "particle-swarm"

    def __init__(self, space: DesignSpace, rng: random.Random,
                 swarm: int = 5, inertia: float = 0.6,
                 cognitive: float = 1.4, social: float = 1.4):
        super().__init__(space, rng)
        self.inertia = inertia
        self.cognitive = cognitive
        self.social = social
        self.particles = []
        for _ in range(max(3, swarm)):
            position = [float(i) for i in random_indices(space, rng)]
            velocity = [rng.uniform(-1.0, 1.0) for _ in space.parameters]
            self.particles.append(_Particle(
                position=position, velocity=velocity,
                best_position=list(position)))
        self._cursor = 0
        self._initializing = len(self.particles)

    def propose(self, best: BestTracker) -> dict:
        if self._initializing > 0:
            particle = self.particles[
                len(self.particles) - self._initializing]
            self._initializing -= 1
            point = indices_to_point(
                self.space, [int(round(x)) for x in particle.position])
            particle.pending = point
            return point
        particle = self.particles[self._cursor]
        self._cursor = (self._cursor + 1) % len(self.particles)
        if best.point is not None:
            global_best = [float(i) for i in point_to_indices(
                self.space, self.space.project(best.point))]
        else:
            global_best = list(particle.best_position)
        for i in range(len(particle.position)):
            r1, r2 = self.rng.random(), self.rng.random()
            particle.velocity[i] = (
                self.inertia * particle.velocity[i]
                + self.cognitive * r1 * (particle.best_position[i]
                                         - particle.position[i])
                + self.social * r2 * (global_best[i]
                                      - particle.position[i]))
            cap = max(1.0, self.space.parameters[i].cardinality / 2)
            particle.velocity[i] = max(-cap, min(cap, particle.velocity[i]))
            particle.position[i] += particle.velocity[i]
            particle.position[i] = max(
                0.0, min(self.space.parameters[i].cardinality - 1,
                         particle.position[i]))
        point = indices_to_point(
            self.space, [int(round(x)) for x in particle.position])
        particle.pending = point
        return point

    def observe(self, evaluation: Evaluation) -> None:
        for particle in self.particles:
            if particle.pending is not None \
                    and particle.pending == evaluation.point:
                if evaluation.qor < particle.best_qor:
                    particle.best_qor = evaluation.qor
                    particle.best_position = [
                        float(i) for i in point_to_indices(
                            self.space,
                            self.space.project(evaluation.point))]
                particle.pending = None
                return
