"""Simulated annealing."""

from __future__ import annotations

import math
import random

from ..evaluator import Evaluation
from ..space import DesignSpace
from .base import (
    BestTracker,
    SearchTechnique,
    indices_to_point,
    point_to_indices,
    random_indices,
)


class SimulatedAnnealing(SearchTechnique):
    """Neighborhood moves with a geometric cooling schedule.

    Acceptance uses relative QoR (cycles span orders of magnitude, so the
    Metropolis criterion is applied to ``log`` QoR).
    """

    name = "simulated-annealing"

    def __init__(self, space: DesignSpace, rng: random.Random,
                 initial_temperature: float = 1.0,
                 cooling: float = 0.95):
        super().__init__(space, rng)
        self.temperature = initial_temperature
        self.cooling = cooling
        self.current = random_indices(space, rng)
        self.current_qor = float("inf")
        self._pending: dict | None = None

    def propose(self, best: BestTracker) -> dict:
        if self.current_qor == float("inf") and best.point is not None:
            # Anneal from the best known point rather than a random one.
            self.current = point_to_indices(
                self.space, self.space.project(best.point))
            self.current_qor = best.qor
        neighbor = list(self.current)
        moves = 1 + (self.rng.random() < 0.3)
        for _ in range(moves):
            i = self.rng.randrange(len(neighbor))
            step = self.rng.choice((-2, -1, 1, 2))
            neighbor[i] = self.space.parameters[i].clamp_index(
                neighbor[i] + step)
        point = indices_to_point(self.space, neighbor)
        self._pending = point
        self._pending_indices = neighbor
        return point

    def observe(self, evaluation: Evaluation) -> None:
        if self._pending is None or evaluation.point != self._pending:
            return
        self._pending = None
        new_qor = evaluation.qor
        accept = False
        if new_qor < self.current_qor:
            accept = True
        elif math.isfinite(new_qor) and math.isfinite(self.current_qor):
            delta = math.log(new_qor) - math.log(self.current_qor)
            accept = self.rng.random() < math.exp(
                -delta / max(1e-6, self.temperature))
        if accept:
            self.current = self._pending_indices
            self.current_qor = new_qor
        self.temperature = max(0.01, self.temperature * self.cooling)
