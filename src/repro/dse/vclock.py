"""Virtual time for the DSE process.

The paper's numbers (Impediment 1, Fig. 3's hours axis) are dominated by
HLS runtime: minutes to an hour per design point.  Reproducing the DSE
behaviour does not require actually waiting; evaluations charge simulated
minutes and an 8-worker discrete-event scheduler replays the parallel
exploration exactly as the paper's 8-core host would.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Optional

from ..errors import DSEError


@dataclass
class VirtualClock:
    """Monotonic simulated wall clock in minutes."""

    now: float = 0.0

    def advance(self, minutes: float) -> float:
        if minutes < 0:
            raise DSEError(f"cannot advance the clock by {minutes}")
        self.now += minutes
        return self.now


@dataclass(order=True)
class _Event:
    time: float
    order: int
    worker: int = field(compare=False)
    job: object = field(compare=False)


class WorkerPool:
    """Discrete-event simulation of N parallel workers.

    Jobs are callables returning their duration in minutes; completion
    callbacks may enqueue more work (that is how a partition's sequential
    tuner keeps one worker busy).
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise DSEError("worker pool needs at least one worker")
        self.workers = workers
        self._free: list[int] = list(range(workers))
        self._events: list[_Event] = []
        self._queue: list = []
        self._counter = 0
        self.now = 0.0

    def submit(self, job) -> None:
        """Queue a job: ``job()`` must return (duration_minutes, on_done).

        ``on_done(finish_time)`` runs at completion and may submit more
        jobs.
        """
        self._queue.append(job)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._free and self._queue:
            worker = self._free.pop()
            job = self._queue.pop(0)
            duration, on_done = job()
            self._counter += 1
            heapq.heappush(self._events, _Event(
                time=self.now + duration, order=self._counter,
                worker=worker, job=on_done))

    def run(self, until: Optional[float] = None) -> float:
        """Process events until the queue drains (or ``until`` minutes)."""
        while self._events:
            event = heapq.heappop(self._events)
            if until is not None and event.time > until:
                heapq.heappush(self._events, event)
                self.now = until
                return self.now
            self.now = event.time
            self._free.append(event.worker)
            if event.job is not None:
                event.job(self.now)
            self._dispatch()
        return self.now
