"""Execution-engine selection for the two functional interpreters.

The repo carries two implementations of each functional execution path:

* **JVM bytecode** — the flattened three-address-code engine
  (:class:`~repro.jvm.tac.TACInterpreter`) and the original stack
  walker (:class:`~repro.jvm.interpreter.Interpreter`);
* **HLS-C kernels** — the closure-compiled flat executor
  (:class:`~repro.fpga.flat.FlatKernelExecutor`) and the original tree
  walker (:class:`~repro.fpga.executor.KernelExecutor`).

The flattened engines are the default everywhere (Blaze fallback, the
FPGA board model, instance baking in the compiler, benchmarks); the
stack/tree walkers survive as differential oracles — the fuzz oracle
cross-checks every kernel on all four engines, and the equivalence
batteries in ``tests/jvm/test_tac_equivalence.py`` /
``tests/fpga/test_flat_equivalence.py`` pin bit-identity.

Selection precedence: an explicit ``engine=`` argument beats the
``S2FA_ENGINE`` environment variable beats the default (``"tac"``).
Both names are deliberately JVM-flavoured — ``"tac"`` selects the
flattened engine and ``"stack"`` the original one on *both* paths, so
one knob switches the whole pipeline.
"""

from __future__ import annotations

import os
from typing import Optional

from .errors import S2FAError

#: Recognized engine names: ``"tac"`` = flattened register-IR engines,
#: ``"stack"`` = the original stack/tree walkers.
ENGINES = ("tac", "stack")

DEFAULT_ENGINE = "tac"

#: Environment override consulted when no explicit ``engine=`` is given.
ENGINE_ENV = "S2FA_ENGINE"


def resolve_engine(engine: Optional[str] = None) -> str:
    """The effective engine name: explicit > ``$S2FA_ENGINE`` > default.

    Raises :class:`~repro.errors.S2FAError` on an unknown name (from
    either source) so a bad knob fails loudly at construction time.
    """
    origin = "engine"
    if engine is None:
        engine = os.environ.get(ENGINE_ENV) or DEFAULT_ENGINE
        origin = ENGINE_ENV
    name = str(engine).lower()
    if name not in ENGINES:
        raise S2FAError(
            f"unknown execution engine {engine!r} (from {origin}); "
            f"expected one of: {', '.join(ENGINES)}")
    return name


def make_jvm_interpreter(registry, *, cost_model=None,
                         max_steps: int = 200_000_000,
                         engine: Optional[str] = None):
    """A JVM execution engine over ``registry``.

    Returns a :class:`~repro.jvm.tac.TACInterpreter` (default) or the
    stack :class:`~repro.jvm.interpreter.Interpreter`; the two share
    their public API (``new_instance`` / ``invoke``) and are
    bit-identical including trap types and messages.
    """
    if resolve_engine(engine) == "tac":
        from .jvm.tac import TACInterpreter

        return TACInterpreter(registry, cost_model=cost_model,
                              max_steps=max_steps)
    from .jvm.interpreter import Interpreter

    return Interpreter(registry, cost_model=cost_model,
                       max_steps=max_steps)


def make_kernel_executor(kernel, *, max_steps: int = 500_000_000,
                         engine: Optional[str] = None):
    """An HLS-C execution engine for ``kernel``.

    Returns a :class:`~repro.fpga.flat.FlatKernelExecutor` (default) or
    the tree-walking :class:`~repro.fpga.executor.KernelExecutor`; both
    expose ``run(buffers, n_tasks)`` / ``call_function(name, args)`` and
    are bit-identical including trap messages.
    """
    if resolve_engine(engine) == "tac":
        from .fpga.flat import FlatKernelExecutor

        return FlatKernelExecutor(kernel, max_steps=max_steps)
    from .fpga.executor import KernelExecutor

    return KernelExecutor(kernel, max_steps=max_steps)
