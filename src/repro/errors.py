"""Exception hierarchy for the S2FA reproduction.

Every subsystem raises a subclass of :class:`S2FAError` so callers can
distinguish user-facing failures (unsupported Scala constructs, infeasible
designs) from programming errors, which surface as plain Python exceptions.
"""

from __future__ import annotations


class S2FAError(Exception):
    """Base class for all errors raised by the framework."""


class ScalaSyntaxError(S2FAError):
    """The mini-Scala frontend could not parse the kernel source."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ScalaTypeError(S2FAError):
    """The kernel source is syntactically valid but ill-typed."""


class UnsupportedConstructError(S2FAError):
    """The kernel uses a construct outside the supported subset (Section 3.3).

    The paper restricts kernels to primitive types plus known composite
    classes, constant-size allocation, and no arbitrary library calls.  The
    same restrictions apply here; violating them raises this error rather
    than producing wrong code.
    """


class BytecodeError(S2FAError):
    """Malformed or unverifiable JVM bytecode."""


class JVMRuntimeError(S2FAError):
    """The JVM interpreter hit an unrecoverable condition (e.g. bad index)."""


class DecompileError(S2FAError):
    """The bytecode-to-C compiler could not lift a method.

    Raised when control flow is irreducible, the operand stack is
    inconsistent across predecessors, or an object layout cannot be
    flattened to C arrays.
    """


class TransformError(S2FAError):
    """A Merlin-style code transformation could not be applied."""


class HLSError(S2FAError):
    """The HLS estimator rejected a design outright (not mere infeasibility)."""


class InfeasibleDesignError(HLSError):
    """A design point exceeds the device envelope or fails routing."""


class UnknownDeviceError(HLSError):
    """A device name is not in the :class:`~repro.hls.device.DeviceRegistry`.

    Carries the offending ``name`` and the sorted tuple of ``known``
    registered names, which the message lists so a typo is a one-glance
    fix at the CLI.
    """

    def __init__(self, name: str, known=()):
        known = tuple(sorted(known))
        listing = ", ".join(known) if known else "<none>"
        super().__init__(
            f"unknown device {name!r}; registered devices: {listing}")
        self.name = name
        self.known = known


class DSEError(S2FAError):
    """Design space exploration misconfiguration."""


class CostModelError(S2FAError):
    """A cost model could not be constructed, loaded, or applied.

    Raised for malformed surrogate artifacts, feature-schema mismatches,
    and models asked to score a kernel they were never trained for —
    never for an infeasible design (that is a result, not an error).
    """


class DatasetError(S2FAError):
    """The QoR dataset pipeline hit a misconfiguration or a bad file."""


class ExplorationInterrupted(DSEError):
    """The exploration stopped early on an operator/scheduler signal.

    Raised at a batch boundary after the in-flight batch finished and the
    checkpoint was flushed, so the run is *resumable*: ``checkpoint_path``
    names the checkpoint file (``None`` when checkpointing is disabled)
    and ``rounds`` counts the completed batches.  The CLI maps this to a
    distinct exit code so schedulers can tell "preempted but resumable"
    from "failed".
    """

    def __init__(self, message: str, checkpoint_path=None, rounds: int = 0):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.rounds = rounds


class ServeError(S2FAError):
    """Serve-daemon failure surfaced to a client.

    Carries the response ``status`` (one of the codes in
    :mod:`repro.serve.request`), whether the request is ``retryable``
    verbatim, and the backpressure hint ``retry_after_s`` (virtual
    seconds before a retry has a chance) when the daemon provided one.
    """

    def __init__(self, message: str, status: str = "ERROR",
                 retryable: bool = False,
                 retry_after_s=None):
        super().__init__(message)
        self.status = status
        self.retryable = retryable
        self.retry_after_s = retry_after_s


class StreamError(S2FAError):
    """Streaming-layer misconfiguration or state/sink corruption.

    Raised for bad :class:`~repro.config.StreamConfig` knobs, checkpoint
    identity mismatches on resume, and sink files whose *complete* lines
    fail to parse (a torn final line is repaired silently — only
    acknowledged data is held to the integrity bar).
    """


class StreamInterrupted(StreamError):
    """A streaming run stopped gracefully at a micro-batch boundary.

    Raised after the boundary checkpoint was flushed, so the stream is
    *resumable*: ``checkpoint_path`` names the checkpoint file (``None``
    when checkpointing is disabled) and ``batches`` counts the completed
    micro-batches.  The CLI maps this to the same "preempted but
    resumable" exit code as :class:`ExplorationInterrupted`.
    """

    def __init__(self, message: str, checkpoint_path=None,
                 batches: int = 0):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.batches = batches


class BlazeError(S2FAError):
    """Blaze runtime integration failure (registration, serialization...)."""


class DeviceError(BlazeError):
    """A fault surfaced by the FPGA device model during one invocation.

    ``seconds`` is the *virtual* time the host spent before the failure
    surfaced (DMA setup for a transient, the full deadline for a hang),
    so the runtime can charge the wasted time to its clock and metrics.
    """

    def __init__(self, message: str, seconds: float = 0.0):
        super().__init__(message)
        self.seconds = seconds


class DeviceFault(DeviceError):
    """Transient run failure: the invocation aborted and may be retried."""


class DeviceTimeout(DeviceError):
    """The device hung; the host gave up after the batch deadline."""


class DeviceLostError(DeviceError):
    """Permanent device loss: no future invocation on this board works."""


class CorruptResultError(DeviceError):
    """The result frame (CRC/canary) of a DMA read-back does not verify."""
