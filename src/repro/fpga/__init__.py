"""FPGA device simulator: functional C-kernel execution + timing."""

from .board import (  # noqa: F401
    ExecutionStats,
    FPGABoard,
    INVOCATION_OVERHEAD_S,
    PCIE_BYTES_PER_SECOND,
)
from .executor import CPointer, KernelExecutor  # noqa: F401
from .flat import FlatKernelExecutor  # noqa: F401
from .faults import (  # noqa: F401
    FRAME_KEY,
    FaultInjector,
    FaultPlan,
    frame_outputs,
    verify_outputs,
)
