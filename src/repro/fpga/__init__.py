"""FPGA device simulator: functional C-kernel execution + timing."""

from .board import (  # noqa: F401
    ExecutionStats,
    FPGABoard,
    INVOCATION_OVERHEAD_S,
    PCIE_BYTES_PER_SECOND,
)
from .executor import CPointer, KernelExecutor  # noqa: F401
