"""FPGA board model: functional execution plus timing.

Combines the :class:`KernelExecutor` (functional results) with the HLS
estimate of the deployed design (timing) and a PCIe transfer model, so the
Blaze runtime can report realistic end-to-end accelerator task times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import (
    BlazeError,
    DeviceFault,
    DeviceLostError,
    DeviceTimeout,
)
from ..engines import make_kernel_executor
from ..hls.result import HLSResult
from ..hlsc.ast import CKernel
from ..utils import ceil_div
from .faults import CORRUPT, HANG, LOST, TRANSIENT, FaultInjector, \
    frame_outputs

#: Effective host-to-board PCIe bandwidth (bytes/second); F1 uses PCIe
#: gen3 x16, ~12 GB/s effective.
PCIE_BYTES_PER_SECOND = 12e9

#: Fixed per-invocation overhead (driver + DMA setup), seconds.
INVOCATION_OVERHEAD_S = 50e-6

#: Host-side (de)serialization cost of the generated reflection-based
#: data-processing methods (Section 3.2): fixed per task plus per byte.
SERIALIZE_NS_PER_TASK = 40.0
SERIALIZE_NS_PER_BYTE = 0.1

#: A hung invocation with no host deadline is cut at this multiple of the
#: batch's nominal time (the runtime always passes a real deadline).
HANG_TIMEOUT_FACTOR = 100.0


def offload_seconds_per_task(hls, batch_size: int,
                             bytes_per_task: int) -> float:
    """End-to-end modelled accelerator time per task.

    Kernel time at the achieved clock, plus PCIe transfer, plus the
    host-side serialization the Blaze integration performs.  Used by the
    Fig. 4 harness (which does not functionally execute every task).
    """
    kernel_s = hls.seconds_per_batch / batch_size
    pcie_s = bytes_per_task / PCIE_BYTES_PER_SECOND
    serialize_s = (SERIALIZE_NS_PER_TASK
                   + SERIALIZE_NS_PER_BYTE * bytes_per_task) * 1e-9
    return kernel_s + pcie_s + serialize_s


@dataclass
class ExecutionStats:
    """Timing breakdown of one accelerator invocation batch."""

    tasks: int = 0
    batches: int = 0
    kernel_seconds: float = 0.0
    transfer_seconds: float = 0.0
    overhead_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return (self.kernel_seconds + self.transfer_seconds
                + self.overhead_seconds)


@dataclass
class FPGABoard:
    """One deployed accelerator design on the device."""

    kernel: CKernel
    hls: HLSResult
    batch_size: int
    bytes_per_task: int = 0
    #: Functional engine (:class:`~repro.fpga.flat.FlatKernelExecutor`
    #: or :class:`~repro.fpga.executor.KernelExecutor`); built from
    #: ``engine`` when not supplied.
    executor: Optional[object] = None
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    #: Names of the output buffers (framed with a CRC after each batch);
    #: derived from the buffer dict when not supplied.
    output_names: list = field(default_factory=list)
    #: Optional fault schedule (see :mod:`repro.fpga.faults`).
    faults: Optional[FaultInjector] = None
    #: Engine name for the default executor (see :mod:`repro.engines`).
    engine: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.hls.feasible:
            raise BlazeError(
                "cannot deploy an infeasible design: "
                + self.hls.infeasible_reason)
        if self.executor is None:
            self.executor = make_kernel_executor(self.kernel,
                                                 engine=self.engine)

    @property
    def board_id(self) -> str:
        return self.faults.board_id if self.faults else self.kernel.name

    def run(self, buffers: dict[str, list], n_tasks: int,
            deadline_s: Optional[float] = None) -> float:
        """Execute one batch; returns modelled seconds.

        Output buffers are framed (CRC + canary) after execution so the
        host can detect read-back corruption.  Under a fault schedule
        the invocation may instead raise :class:`DeviceFault` (transient
        abort), :class:`DeviceTimeout` (hang, cut at ``deadline_s``), or
        :class:`DeviceLostError` (permanent loss); each exception's
        ``seconds`` is the virtual time wasted on the attempt.
        """
        batches = max(1, ceil_div(n_tasks, self.batch_size))
        kernel_s = self.hls.seconds_per_batch * (
            n_tasks / self.batch_size)
        transfer_s = (self.bytes_per_task * n_tasks
                      / PCIE_BYTES_PER_SECOND)
        overhead_s = INVOCATION_OVERHEAD_S * batches
        nominal_s = kernel_s + transfer_s + overhead_s

        fault = self.faults.next_fault() if self.faults else None
        if fault == LOST:
            raise DeviceLostError(
                f"board {self.board_id!r} fell off the bus",
                seconds=overhead_s)
        if fault == TRANSIENT:
            raise DeviceFault(
                f"board {self.board_id!r}: invocation aborted",
                seconds=overhead_s)
        if fault == HANG:
            waited = (deadline_s if deadline_s is not None
                      else nominal_s * HANG_TIMEOUT_FACTOR)
            raise DeviceTimeout(
                f"board {self.board_id!r}: batch exceeded its "
                f"{waited:g}s deadline", seconds=waited)

        self.executor.run(buffers, n_tasks)
        output_names = self.output_names or [
            name for name in buffers if name.startswith("out")]
        frame_outputs(buffers, output_names)
        if fault == CORRUPT:
            self.faults.corrupt(buffers, output_names)
        self.stats.tasks += n_tasks
        self.stats.batches += batches
        self.stats.kernel_seconds += kernel_s
        self.stats.transfer_seconds += transfer_s
        self.stats.overhead_seconds += overhead_s
        return nominal_s
