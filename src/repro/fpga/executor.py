"""Functional FPGA execution: a C-AST interpreter.

The device simulator runs the *generated HLS-C kernel itself* (not the
original Scala), so functional equivalence of the whole compilation
pipeline is checked end to end: JVM-interpreted Scala vs C-interpreted
kernel must agree on every application (the tests assert exactly that).

Semantics follow the generated subset of C with two deliberate choices:

* ``char`` behaves as the JVM's unsigned 16-bit char (the code generator
  emits char buffers from Java chars, and real S2FA would declare them
  ``unsigned``);
* 32-bit wrapping ``int`` / 64-bit wrapping ``long`` arithmetic with
  truncating division (C99 == JVM).  Which width applies is decided
  *statically* from the declared C types (params, ``VarDecl``s, literal
  suffixes, casts), exactly as a C compiler would — the fuzzer found
  that treating every integer as 32-bit diverges from the JVM on
  ``Long`` kernels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import S2FAError
from ..hlsc.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Cast,
    CFunction,
    CKernel,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Pragma,
    Return,
    Stmt,
    Ternary,
    UnOp,
    Var,
    VarDecl,
    While,
)

_INT_MAX = 2**31 - 1
_INT_MIN = -2**31
_LONG_MAX = 2**63 - 1


def _i32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value > _INT_MAX else value


def _i64(value: int) -> int:
    value &= 0xFFFFFFFFFFFFFFFF
    return value - 0x10000000000000000 if value > _LONG_MAX else value


def _cdiv(a: int, b: int) -> int:
    if b == 0:
        raise S2FAError("kernel divided by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


@dataclass
class CPointer:
    """A pointer into a flat Python-list backing store."""

    backing: list
    offset: int = 0

    def index(self, i: int) -> int:
        pos = self.offset + i
        if not 0 <= pos < len(self.backing):
            raise S2FAError(
                f"kernel out-of-bounds access at offset {pos} "
                f"(buffer size {len(self.backing)})")
        return pos

    def load(self, i: int):
        return self.backing[self.index(i)]

    def store(self, i: int, value) -> None:
        self.backing[self.index(i)] = value

    def shifted(self, delta: int) -> "CPointer":
        return CPointer(self.backing, self.offset + delta)


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


_MATH_FUNCS = {
    "exp": math.exp, "expf": math.exp,
    "log": math.log, "logf": math.log,
    "sqrt": math.sqrt, "sqrtf": math.sqrt,
    "pow": math.pow,
    "floor": math.floor, "ceil": math.ceil,
    "fabs": abs, "fabsf": abs, "abs": abs,
    "fmin": min, "fminf": min, "min": min,
    "fmax": max, "fmaxf": max, "max": max,
}


class KernelExecutor:
    """Interprets one :class:`CKernel`."""

    def __init__(self, kernel: CKernel, max_steps: int = 500_000_000):
        self.kernel = kernel
        self.functions = {f.name: f for f in kernel.functions}
        self.max_steps = max_steps
        self._steps = 0
        #: function name -> names with 64-bit ``long`` type (scalars and
        #: pointee types alike); computed lazily per function.
        self._long_vars: dict[str, frozenset[str]] = {}
        self._long_returns = frozenset(
            f.name for f in kernel.functions
            if f.return_type is not None and f.return_type.base == "long")
        #: stack of long-variable sets for the functions being executed.
        self._ctx: list[frozenset[str]] = []
        self._long_memo: dict[int, bool] = {}

    # ------------------------------------------------------------------

    def _function_longs(self, func: CFunction) -> frozenset[str]:
        cached = self._long_vars.get(func.name)
        if cached is not None:
            return cached
        longs = {p.name for p in func.params if p.ctype.base == "long"}
        stack: list = list(func.body.stmts)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, VarDecl):
                if stmt.ctype.base == "long":
                    longs.add(stmt.name)
            elif isinstance(stmt, If):
                stack.extend(stmt.then.stmts)
                if stmt.orelse is not None:
                    stack.extend(stmt.orelse.stmts)
            elif isinstance(stmt, (For, While)):
                stack.extend(stmt.body.stmts)
        result = frozenset(longs)
        self._long_vars[func.name] = result
        return result

    def run(self, buffers: dict[str, list], n_tasks: int) -> None:
        """Execute the top (batch) function, mutating output buffers."""
        self._steps = 0
        top = self.kernel.top_function
        env: dict[str, object] = {}
        for p in top.params:
            if p.name == "N":
                env["N"] = n_tasks
            elif p.is_pointer:
                if p.name not in buffers:
                    raise S2FAError(f"missing kernel buffer {p.name!r}")
                env[p.name] = CPointer(buffers[p.name])
            else:
                env[p.name] = buffers[p.name]
        self._ctx.append(self._function_longs(top))
        try:
            self._exec_block(top.body, env)
        finally:
            self._ctx.pop()

    def call_function(self, name: str, args: list):
        """Invoke a kernel-local function with Python/CPointer args."""
        func = self.functions.get(name)
        if func is None:
            raise S2FAError(f"kernel has no function {name!r}")
        env: dict[str, object] = {}
        if len(args) != len(func.params):
            raise S2FAError(
                f"{name} expects {len(func.params)} args, got {len(args)}")
        for p, value in zip(func.params, args):
            env[p.name] = value
        self._ctx.append(self._function_longs(func))
        try:
            self._exec_block(func.body, env)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._ctx.pop()
        return None

    # ------------------------------------------------------------------
    # Static width inference (is an expression 64-bit ``long``?)
    # ------------------------------------------------------------------

    def _is_long(self, expr: Expr) -> bool:
        key = id(expr)
        cached = self._long_memo.get(key)
        if cached is None:
            cached = self._infer_long(expr)
            self._long_memo[key] = cached
        return cached

    def _infer_long(self, expr: Expr) -> bool:
        longs = self._ctx[-1] if self._ctx else frozenset()
        if isinstance(expr, IntLit):
            return expr.ctype.base == "long"
        if isinstance(expr, Var):
            return expr.name in longs
        if isinstance(expr, ArrayRef):
            base = expr.array
            while isinstance(base, (ArrayRef, BinOp)):
                base = base.array if isinstance(base, ArrayRef) else base.lhs
            return isinstance(base, Var) and base.name in longs
        if isinstance(expr, Cast):
            return expr.ctype.base == "long"
        if isinstance(expr, UnOp):
            return expr.op in ("-", "~") and self._is_long(expr.operand)
        if isinstance(expr, BinOp):
            if expr.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                return False
            if expr.op in ("<<", ">>"):
                return self._is_long(expr.lhs)
            return self._is_long(expr.lhs) or self._is_long(expr.rhs)
        if isinstance(expr, Ternary):
            return self._is_long(expr.then) or self._is_long(expr.other)
        if isinstance(expr, Call):
            return expr.name in self._long_returns
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise S2FAError(
                f"kernel exceeded {self.max_steps} interpreted steps")

    def _exec_block(self, block: Block, env: dict) -> None:
        for stmt in block.stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: Stmt, env: dict) -> None:
        self._tick()
        if isinstance(stmt, VarDecl):
            if stmt.is_array:
                if stmt.init_values is not None:
                    env[stmt.name] = CPointer(list(stmt.init_values))
                else:
                    zero = 0.0 if stmt.ctype.is_float else 0
                    env[stmt.name] = CPointer(
                        [zero] * stmt.element_count)
            elif stmt.init is not None:
                env[stmt.name] = self._eval(stmt.init, env)
            else:
                env[stmt.name] = 0.0 if stmt.ctype.is_float else 0
            return
        if isinstance(stmt, Assign):
            value = self._eval(stmt.rhs, env)
            self._store(stmt.lhs, value, env)
            return
        if isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, env)
            return
        if isinstance(stmt, If):
            if self._eval(stmt.cond, env):
                self._exec_block(stmt.then, env)
            elif stmt.orelse is not None:
                self._exec_block(stmt.orelse, env)
            return
        if isinstance(stmt, For):
            env[stmt.var] = self._eval(stmt.start, env)
            while True:
                self._tick()
                if not env[stmt.var] < self._eval(stmt.bound, env):
                    break
                try:
                    self._exec_block(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                env[stmt.var] = env[stmt.var] + stmt.step
            return
        if isinstance(stmt, While):
            while self._eval(stmt.cond, env):
                self._tick()
                try:
                    self._exec_block(stmt.body, env)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    continue
            return
        if isinstance(stmt, Return):
            raise _ReturnSignal(
                None if stmt.value is None else self._eval(stmt.value, env))
        if isinstance(stmt, Break):
            raise _BreakSignal()
        if isinstance(stmt, Continue):
            raise _ContinueSignal()
        if isinstance(stmt, Pragma):
            return
        raise S2FAError(f"cannot execute statement {stmt!r}")

    def _store(self, lhs: Expr, value, env: dict) -> None:
        if isinstance(lhs, Var):
            env[lhs.name] = value
            return
        if isinstance(lhs, ArrayRef):
            base = self._eval(lhs.array, env)
            index = self._eval(lhs.index, env)
            if not isinstance(base, CPointer):
                raise S2FAError(f"indexed store into non-pointer {base!r}")
            base.store(index, value)
            return
        raise S2FAError(f"invalid assignment target {lhs!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, env: dict):
        if isinstance(expr, IntLit):
            return expr.value
        if isinstance(expr, FloatLit):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in env:
                raise S2FAError(f"kernel read of undefined {expr.name!r}")
            return env[expr.name]
        if isinstance(expr, ArrayRef):
            base = self._eval(expr.array, env)
            index = self._eval(expr.index, env)
            if not isinstance(base, CPointer):
                raise S2FAError(f"indexed load from non-pointer {base!r}")
            return base.load(index)
        if isinstance(expr, BinOp):
            return self._binop(expr, env)
        if isinstance(expr, UnOp):
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                if not isinstance(value, int):
                    return -value
                return _i64(-value) if self._is_long(expr) else _i32(-value)
            if expr.op == "!":
                return 0 if value else 1
            if expr.op == "~":
                return _i64(~value) if self._is_long(expr) else _i32(~value)
            raise S2FAError(f"bad unary operator {expr.op}")
        if isinstance(expr, Cast):
            value = self._eval(expr.expr, env)
            base = expr.ctype.base
            if base in ("float", "double"):
                return float(value)
            if base == "char":
                # JVM char semantics (see module docstring).
                return int(value) & 0xFFFF
            if base == "short":
                v = int(value) & 0xFFFF
                return v - 0x10000 if v > 0x7FFF else v
            if base == "long":
                # JVM f2l/d2l: non-finite saturates to 0.
                if isinstance(value, float) and not math.isfinite(value):
                    return 0
                return _i64(int(value))
            # JVM f2i/d2i: inf saturates to INT_MAX/INT_MIN, NaN to 0.
            if isinstance(value, float) and not math.isfinite(value):
                return _INT_MAX if value > 0 else (
                    _INT_MIN if value < 0 else 0)
            return _i32(int(value))
        if isinstance(expr, Ternary):
            if self._eval(expr.cond, env):
                return self._eval(expr.then, env)
            return self._eval(expr.other, env)
        if isinstance(expr, Call):
            return self._call(expr, env)
        raise S2FAError(f"cannot evaluate expression {expr!r}")

    def _binop(self, expr: BinOp, env: dict):
        op = expr.op
        if op == "&&":
            return 1 if (self._eval(expr.lhs, env)
                         and self._eval(expr.rhs, env)) else 0
        if op == "||":
            return 1 if (self._eval(expr.lhs, env)
                         or self._eval(expr.rhs, env)) else 0
        a = self._eval(expr.lhs, env)
        b = self._eval(expr.rhs, env)
        if isinstance(a, CPointer) and isinstance(b, int):
            if op == "+":
                return a.shifted(b)
            if op == "-":
                return a.shifted(-b)
            raise S2FAError(f"bad pointer arithmetic {op}")
        if op in ("<", "<=", ">", ">=", "==", "!="):
            result = {
                "<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
                "==": a == b, "!=": a != b,
            }[op]
            return 1 if result else 0
        both_int = isinstance(a, int) and isinstance(b, int)
        wrap = _i64 if both_int and self._is_long(expr) else _i32
        if op == "+":
            return wrap(a + b) if both_int else a + b
        if op == "-":
            return wrap(a - b) if both_int else a - b
        if op == "*":
            return wrap(a * b) if both_int else a * b
        if op == "/":
            if both_int:
                return wrap(_cdiv(a, b))
            if b == 0.0:
                return math.inf if a > 0 else (-math.inf if a < 0
                                               else math.nan)
            return a / b
        if op == "%":
            if not both_int:
                return math.fmod(a, b)
            return wrap(a - _cdiv(a, b) * b)
        if op == "<<":
            return wrap(a << (b & (63 if wrap is _i64 else 31)))
        if op == ">>":
            return wrap(a >> (b & (63 if wrap is _i64 else 31)))
        if op == "&":
            return wrap(a & b)
        if op == "|":
            return wrap(a | b)
        if op == "^":
            return wrap(a ^ b)
        raise S2FAError(f"bad binary operator {op}")

    def _call(self, expr: Call, env: dict):
        if expr.name in self.functions:
            args = [self._eval(a, env) for a in expr.args]
            return self.call_function(expr.name, args)
        fn = _MATH_FUNCS.get(expr.name)
        if fn is None:
            raise S2FAError(f"kernel calls unknown function {expr.name!r}")
        args = [self._eval(a, env) for a in expr.args]
        return fn(*args)
