"""Deterministic fault injection for the FPGA device model.

Datacenter boards fail in practice: invocations abort, DMA transfers
hang, read-back buffers come home corrupted, and whole devices fall off
the bus.  The paper's deployment story (Section 4) relies on the Blaze
runtime surviving all of that, so the device model can *inject* those
faults on a deterministic, seedable schedule and the runtime is tested
against it.

Determinism: the fault drawn for invocation ``k`` of board ``b`` under
plan seed ``s`` is a pure function of ``(s, b, k)`` (the per-draw RNG is
seeded from that string, which Python hashes with SHA-512 — stable
across processes, unlike ``hash``).  The schedule therefore replays
bit-identically on every run, and two runtimes driving the same boards
through the same invocation sequence see the same faults.

The module also owns the result *framing* the host uses to detect
corruption: after a kernel batch executes, the device appends a CRC32
over every output buffer plus a canary word; the host re-computes the
CRC before deserializing and rejects the batch on any mismatch.  (The
Blaze layer re-exports :func:`frame_outputs` / :func:`verify_outputs`
from ``repro.blaze.serialization``; they live here so the board model
can frame without importing the blaze package.)
"""

from __future__ import annotations

import random
import struct
import zlib
from dataclasses import dataclass
from typing import Optional

from ..errors import BlazeError, CorruptResultError

#: Buffer key holding the ``[crc, canary]`` result frame.
FRAME_KEY = "__frame__"

#: Fixed canary word appended to every result frame.
FRAME_CANARY = 0x5F2FA75E

#: Fault kinds drawn by the injector.
TRANSIENT = "transient"
HANG = "hang"
CORRUPT = "corrupt"
LOST = "lost"


# ---------------------------------------------------------------------------
# Result framing (CRC + canary)
# ---------------------------------------------------------------------------

def _output_crc(buffers: dict[str, list], output_names: list[str]) -> int:
    """CRC32 over the output buffers, in sorted-name order."""
    crc = 0
    for name in sorted(output_names):
        crc = zlib.crc32(name.encode(), crc)
        for value in buffers[name]:
            if isinstance(value, float):
                crc = zlib.crc32(struct.pack("<d", value), crc)
            else:
                crc = zlib.crc32(
                    struct.pack("<Q", int(value) & 0xFFFFFFFFFFFFFFFF), crc)
    return crc


def frame_outputs(buffers: dict[str, list],
                  output_names: list[str]) -> None:
    """Device side: append the ``[crc, canary]`` frame after a batch."""
    buffers[FRAME_KEY] = [_output_crc(buffers, output_names), FRAME_CANARY]


def verify_outputs(buffers: dict[str, list],
                   output_names: list[str]) -> None:
    """Host side: check the frame; raise :class:`CorruptResultError`."""
    frame = buffers.get(FRAME_KEY)
    if (not isinstance(frame, list) or len(frame) != 2
            or frame[1] != FRAME_CANARY):
        raise CorruptResultError(
            "result frame missing or mangled (truncated DMA read-back?)")
    if frame[0] != _output_crc(buffers, output_names):
        raise CorruptResultError(
            "output buffer CRC mismatch: the device returned corrupt data")


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------

_RATE_KEYS = (TRANSIENT, HANG, CORRUPT)


@dataclass(frozen=True)
class FaultPlan:
    """A seedable schedule of device faults.

    * ``transient`` / ``hang`` / ``corrupt`` — per-invocation
      probabilities of a transient abort, a hang (cut by the host's
      batch deadline), and output-buffer corruption;
    * ``lose_after`` — the board is permanently lost at that invocation
      index (``0`` means it never works: the all-boards-lost schedule).
    """

    seed: int = 0
    transient: float = 0.0
    hang: float = 0.0
    corrupt: float = 0.0
    lose_after: Optional[int] = None

    def __post_init__(self) -> None:
        for key in _RATE_KEYS:
            rate = getattr(self, key)
            if not 0.0 <= rate <= 1.0:
                raise BlazeError(
                    f"fault rate {key}={rate} outside [0, 1]")
        if self.transient + self.hang + self.corrupt > 1.0 + 1e-12:
            raise BlazeError("fault rates sum to more than 1")
        if self.lose_after is not None and self.lose_after < 0:
            raise BlazeError(
                f"lose_after={self.lose_after} must be >= 0")

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a CLI spec like ``"transient=0.2,corrupt=0.1,lose_after=40"``.

        Recognized keys: ``transient``, ``hang``, ``corrupt`` (rates in
        [0, 1]), ``lose_after`` (invocation index), ``seed``.
        """
        kwargs: dict = {"seed": seed}
        for token in filter(None, (t.strip() for t in spec.split(","))):
            if "=" not in token:
                raise BlazeError(
                    f"fault plan expects key=value, got {token!r}")
            key, _, value = token.partition("=")
            key = key.strip()
            try:
                if key in _RATE_KEYS:
                    kwargs[key] = float(value)
                elif key in ("lose_after", "seed"):
                    kwargs[key] = int(value)
                else:
                    raise BlazeError(
                        f"unknown fault plan key {key!r} (expected one of "
                        f"transient, hang, corrupt, lose_after, seed)")
            except ValueError:
                raise BlazeError(
                    f"bad fault plan value {token!r}") from None
        return cls(**kwargs)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        parts.extend(f"{key}={getattr(self, key):g}"
                     for key in _RATE_KEYS if getattr(self, key))
        if self.lose_after is not None:
            parts.append(f"lose_after={self.lose_after}")
        return ", ".join(parts)


class FaultInjector:
    """Draws the fault (if any) for each invocation of one board.

    The injector is the *device side* of the fault model: the board asks
    it what happens on the next invocation, and — for corruption — lets
    it perturb the framed output buffers so the host-side CRC check
    fails.
    """

    def __init__(self, plan: FaultPlan, board_id: str):
        self.plan = plan
        self.board_id = board_id
        self.invocations = 0
        self.lost = False

    def next_fault(self) -> Optional[str]:
        """The fault for this invocation (advances the invocation index)."""
        index = self.invocations
        self.invocations += 1
        if self.lost:
            return LOST
        if (self.plan.lose_after is not None
                and index >= self.plan.lose_after):
            self.lost = True
            return LOST
        draw = self._rng(index).random()
        if draw < self.plan.transient:
            return TRANSIENT
        if draw < self.plan.transient + self.plan.hang:
            return HANG
        if draw < self.plan.transient + self.plan.hang + self.plan.corrupt:
            return CORRUPT
        return None

    def corrupt(self, buffers: dict[str, list],
                output_names: list[str]) -> None:
        """Flip one element of one (framed) output buffer in place."""
        rng = self._rng(self.invocations - 1, "corrupt")
        candidates = [name for name in sorted(output_names)
                      if buffers.get(name)]
        if not candidates:
            # No output payload to damage: mangle the frame itself.
            buffers[FRAME_KEY] = [0, 0]
            return
        name = candidates[rng.randrange(len(candidates))]
        index = rng.randrange(len(buffers[name]))
        value = buffers[name][index]
        if isinstance(value, float):
            buffers[name][index] = -(value + 1.0)
        else:
            buffers[name][index] = int(value) ^ 0x2F

    def _rng(self, invocation: int, tag: str = "") -> random.Random:
        return random.Random(
            f"{self.plan.seed}:{self.board_id}:{invocation}:{tag}")
