"""Flattened (closure-compiled) FPGA kernel execution.

The tree-walking :class:`~repro.fpga.executor.KernelExecutor` re-visits
the C AST on every statement: isinstance dispatch per node, dict-keyed
variable lookups, exception-driven control flow.  This module compiles
each :class:`~repro.hlsc.ast.CFunction` **once** into a linear structure
of Python closures over a slot-indexed frame:

* names resolve to list slots at compile time (no dict lookups),
* ``break``/``continue``/``return`` become sentinel return values
  threaded through block closures (no exception unwinding),
* the 32/64-bit width of every integer operation is inferred statically
  at compile time (same rules as the tree engine) and burned into the
  operation's closure,
* step accounting is block-granular: a block charges all its statements
  up front, so runaway kernels still trap with the tree engine's exact
  message, at worst a few statements later.

On top of that, innermost counted loops whose bodies are straight-line
element-wise assignments are batch-executed through numpy when it is
available (:data:`HAVE_NUMPY`).  The gate is deliberately narrow so the
fast path is *bit-identical* to scalar execution:

* int ops ride an int64 carrier (numpy's wrapping == ``_i64``), with an
  explicit mask re-wrapping 32-bit ops;
* float ops are IEEE-double element-wise ops only — no reductions (sum
  order would change bits), no math intrinsics, no int division;
* a runtime pre-check (operand types, bounds, aliasing, zero divisors,
  step budget) falls back to scalar execution of the same loop, which
  reproduces the tree engine's behavior exactly, including traps and
  partial side effects.

Semantics — results, buffer mutations, trap types and messages — are
the tree engine's; ``tests/fpga/test_flat_equivalence.py`` and the fuzz
oracle's engine cross-check enforce it.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import S2FAError
from ..hlsc.ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Cast,
    CFunction,
    CKernel,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Pragma,
    Return,
    Stmt,
    Ternary,
    UnOp,
    Var,
    VarDecl,
    While,
    walk_exprs,
    walk_stmts,
)
from .executor import (
    _MATH_FUNCS,
    _BreakSignal,
    _ContinueSignal,
    _ReturnSignal,
    _cdiv,
    _i32,
    _i64,
    CPointer,
)

try:  # gated dependency: the scalar engine is complete without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is in the base image
    _np = None

HAVE_NUMPY = _np is not None

_INT_MAX = 2**31 - 1
_INT_MIN = -2**31

#: Reads of this sentinel reproduce the tree engine's undefined-variable
#: trap (its env simply lacks the key until the declaration executes).
_UNDEF = object()

#: Control-flow sentinels returned by statement closures.  ``None``
#: means fall through; a ``(_RET, value)`` tuple unwinds to the function.
_BRK = object()
_CNT = object()
_RET = object()

#: Minimum trip count before the numpy path beats slicing overhead.
_VECTOR_MIN_ITERS = 16


def _wrap32(arr):
    """Re-wrap an int64 numpy carrier to signed-32-bit lanes."""
    return ((arr + 0x80000000) & 0xFFFFFFFF) - 0x80000000


class _FlatFunction:
    """One compiled function: frame layout plus a body closure."""

    __slots__ = ("name", "params", "n_slots", "param_slots", "body")

    def __init__(self, name: str, params, n_slots: int,
                 param_slots: tuple, body: Callable):
        self.name = name
        self.params = params
        self.n_slots = n_slots
        self.param_slots = param_slots
        self.body = body


class FlatKernelExecutor:
    """Drop-in replacement for
    :class:`~repro.fpga.executor.KernelExecutor` running closure-compiled
    kernels.  Functions compile lazily on first call and stay cached for
    the executor's lifetime (one compile per board registration, not per
    batch)."""

    #: Construction counter (regression tests pin per-case setup cost).
    constructions = 0

    def __init__(self, kernel: CKernel, max_steps: int = 500_000_000):
        self.kernel = kernel
        self.functions = {f.name: f for f in kernel.functions}
        self.max_steps = max_steps
        self._steps = 0
        self._compiled: dict[str, _FlatFunction] = {}
        self._long_returns = frozenset(
            f.name for f in kernel.functions
            if f.return_type is not None and f.return_type.base == "long")
        type(self).constructions += 1

    # -- public API (mirrors the tree engine) --------------------------

    def run(self, buffers: dict[str, list], n_tasks: int) -> None:
        """Execute the top (batch) function, mutating output buffers."""
        self._steps = 0
        top = self._compiled_fn(self.kernel.top)
        env: list = [_UNDEF] * top.n_slots
        for p, slot in zip(top.params, top.param_slots):
            if p.name == "N":
                env[slot] = n_tasks
            elif p.is_pointer:
                if p.name not in buffers:
                    raise S2FAError(f"missing kernel buffer {p.name!r}")
                env[slot] = CPointer(buffers[p.name])
            else:
                env[slot] = buffers[p.name]
        sig = top.body(env, self)
        if sig is not None:
            _raise_escaped(sig)

    def call_function(self, name: str, args: list):
        """Invoke a kernel-local function with Python/CPointer args."""
        if name not in self.functions:
            raise S2FAError(f"kernel has no function {name!r}")
        fn = self._compiled_fn(name)
        if len(args) != len(fn.param_slots):
            raise S2FAError(
                f"{name} expects {len(fn.param_slots)} args, "
                f"got {len(args)}")
        return self._call_compiled(fn, args)

    # -- internals -----------------------------------------------------

    def _compiled_fn(self, name: str) -> _FlatFunction:
        fn = self._compiled.get(name)
        if fn is None:
            func = self.functions.get(name)
            if func is None:
                raise S2FAError(f"kernel has no function {name!r}")
            fn = _FnCompiler(self, func).compile()
            self._compiled[name] = fn
        return fn

    def _call_compiled(self, fn: _FlatFunction, args: list):
        env: list = [_UNDEF] * fn.n_slots
        for slot, value in zip(fn.param_slots, args):
            env[slot] = value
        sig = fn.body(env, self)
        if sig is None:
            return None
        if type(sig) is tuple:
            return sig[1]
        _raise_escaped(sig)


def _raise_escaped(sig) -> None:
    """A control signal left a function body: mirror the tree engine's
    escaping exceptions exactly."""
    if type(sig) is tuple:
        raise _ReturnSignal(sig[1])
    if sig is _BRK:
        raise _BreakSignal()
    raise _ContinueSignal()


class _FnCompiler:
    """Compiles one :class:`CFunction` into a :class:`_FlatFunction`."""

    def __init__(self, executor: FlatKernelExecutor, func: CFunction):
        self.executor = executor
        self.func = func
        self.slots: dict[str, int] = {}
        for p in func.params:
            self._slot(p.name)
        for stmt in walk_stmts(func):
            if isinstance(stmt, VarDecl):
                self._slot(stmt.name)
            elif isinstance(stmt, For):
                self._slot(stmt.var)
        for expr in walk_exprs(func):
            if isinstance(expr, Var):
                self._slot(expr.name)
        self.longs = self._function_longs()
        #: declared static types, for the vector gate only.
        self.decl_types = self._declared_types()

    def _slot(self, name: str) -> int:
        slot = self.slots.get(name)
        if slot is None:
            slot = len(self.slots)
            self.slots[name] = slot
        return slot

    def _function_longs(self) -> frozenset:
        longs = {p.name for p in self.func.params
                 if p.ctype.base == "long"}
        for stmt in walk_stmts(self.func):
            if isinstance(stmt, VarDecl) and stmt.ctype.base == "long":
                longs.add(stmt.name)
        return frozenset(longs)

    def _declared_types(self) -> dict:
        """name -> ('f'|'i32'|'i64', is_pointer) from declarations."""
        types = {}
        for p in self.func.params:
            types[p.name] = (_lane_type(p.ctype), p.is_pointer)
        for stmt in walk_stmts(self.func):
            if isinstance(stmt, VarDecl):
                lane = _lane_type(stmt.ctype)
                prior = types.get(stmt.name)
                entry = (lane, stmt.is_array)
                if prior is not None and prior != entry:
                    types[stmt.name] = None  # conflicting decls: no gate
                else:
                    types[stmt.name] = entry
        return types

    def compile(self) -> _FlatFunction:
        body = self._compile_block(self.func.body)
        return _FlatFunction(
            self.func.name, self.func.params, len(self.slots),
            tuple(self.slots[p.name] for p in self.func.params), body)

    # -- width inference (matches the tree engine) ---------------------

    def _is_long(self, expr: Expr) -> bool:
        if isinstance(expr, IntLit):
            return expr.ctype.base == "long"
        if isinstance(expr, Var):
            return expr.name in self.longs
        if isinstance(expr, ArrayRef):
            base = expr.array
            while isinstance(base, (ArrayRef, BinOp)):
                base = (base.array if isinstance(base, ArrayRef)
                        else base.lhs)
            return isinstance(base, Var) and base.name in self.longs
        if isinstance(expr, Cast):
            return expr.ctype.base == "long"
        if isinstance(expr, UnOp):
            return expr.op in ("-", "~") and self._is_long(expr.operand)
        if isinstance(expr, BinOp):
            if expr.op in ("<", "<=", ">", ">=", "==", "!=", "&&", "||"):
                return False
            if expr.op in ("<<", ">>"):
                return self._is_long(expr.lhs)
            return self._is_long(expr.lhs) or self._is_long(expr.rhs)
        if isinstance(expr, Ternary):
            return self._is_long(expr.then) or self._is_long(expr.other)
        if isinstance(expr, Call):
            return expr.name in self.executor._long_returns
        return False

    # -- statements ----------------------------------------------------

    def _compile_block(self, block: Block) -> Callable:
        fns = tuple(self._compile_stmt(s) for s in block.stmts)
        n = len(fns)
        if n == 1:
            single = fns[0]

            def run1(env, rt, single=single):
                rt._steps += 1
                if rt._steps > rt.max_steps:
                    raise S2FAError(
                        f"kernel exceeded {rt.max_steps} "
                        f"interpreted steps")
                return single(env, rt)
            return run1

        def run(env, rt, fns=fns, n=n):
            rt._steps += n
            if rt._steps > rt.max_steps:
                raise S2FAError(
                    f"kernel exceeded {rt.max_steps} interpreted steps")
            for f in fns:
                sig = f(env, rt)
                if sig is not None:
                    return sig
            return None
        return run

    def _compile_stmt(self, stmt: Stmt) -> Callable:
        if isinstance(stmt, VarDecl):
            return self._compile_vardecl(stmt)
        if isinstance(stmt, Assign):
            return self._compile_assign(stmt)
        if isinstance(stmt, ExprStmt):
            value_f = self._compile_expr(stmt.expr)

            def run(env, rt, value_f=value_f):
                value_f(env, rt)
                return None
            return run
        if isinstance(stmt, If):
            cond_f = self._compile_expr(stmt.cond)
            then_f = self._compile_block(stmt.then)
            else_f = (None if stmt.orelse is None
                      else self._compile_block(stmt.orelse))

            def run(env, rt, cond_f=cond_f, then_f=then_f,
                    else_f=else_f):
                if cond_f(env, rt):
                    return then_f(env, rt)
                if else_f is not None:
                    return else_f(env, rt)
                return None
            return run
        if isinstance(stmt, For):
            return self._compile_for(stmt)
        if isinstance(stmt, While):
            cond_f = self._compile_expr(stmt.cond)
            body_f = self._compile_block(stmt.body)

            def run(env, rt, cond_f=cond_f, body_f=body_f):
                while cond_f(env, rt):
                    rt._steps += 1
                    if rt._steps > rt.max_steps:
                        raise S2FAError(
                            f"kernel exceeded {rt.max_steps} "
                            f"interpreted steps")
                    sig = body_f(env, rt)
                    if sig is not None:
                        if sig is _BRK:
                            break
                        if sig is _CNT:
                            continue
                        return sig
                return None
            return run
        if isinstance(stmt, Return):
            if stmt.value is None:
                def run(env, rt):
                    return (_RET, None)
                return run
            value_f = self._compile_expr(stmt.value)

            def run(env, rt, value_f=value_f):
                return (_RET, value_f(env, rt))
            return run
        if isinstance(stmt, Break):
            def run(env, rt):
                return _BRK
            return run
        if isinstance(stmt, Continue):
            def run(env, rt):
                return _CNT
            return run
        if isinstance(stmt, Pragma):
            def run(env, rt):
                return None
            return run

        def run(env, rt, stmt=stmt):
            raise S2FAError(f"cannot execute statement {stmt!r}")
        return run

    def _compile_vardecl(self, stmt: VarDecl) -> Callable:
        slot = self._slot(stmt.name)
        if stmt.is_array:
            if stmt.init_values is not None:
                init_values = stmt.init_values

                def run(env, rt, slot=slot, init_values=init_values):
                    env[slot] = CPointer(list(init_values))
                    return None
                return run
            zero = 0.0 if stmt.ctype.is_float else 0
            count = stmt.element_count

            def run(env, rt, slot=slot, zero=zero, count=count):
                env[slot] = CPointer([zero] * count)
                return None
            return run
        if stmt.init is not None:
            init_f = self._compile_expr(stmt.init)

            def run(env, rt, slot=slot, init_f=init_f):
                env[slot] = init_f(env, rt)
                return None
            return run
        zero = 0.0 if stmt.ctype.is_float else 0

        def run(env, rt, slot=slot, zero=zero):
            env[slot] = zero
            return None
        return run

    def _compile_assign(self, stmt: Assign) -> Callable:
        rhs_f = self._compile_expr(stmt.rhs)
        lhs = stmt.lhs
        if isinstance(lhs, Var):
            slot = self._slot(lhs.name)

            def run(env, rt, slot=slot, rhs_f=rhs_f):
                env[slot] = rhs_f(env, rt)
                return None
            return run
        if isinstance(lhs, ArrayRef):
            base_f = self._compile_expr(lhs.array)
            index_f = self._compile_expr(lhs.index)

            def run(env, rt, base_f=base_f, index_f=index_f,
                    rhs_f=rhs_f):
                value = rhs_f(env, rt)
                base = base_f(env, rt)
                index = index_f(env, rt)
                if not isinstance(base, CPointer):
                    raise S2FAError(
                        f"indexed store into non-pointer {base!r}")
                backing = base.backing
                pos = base.offset + index
                if 0 <= pos < len(backing):
                    backing[pos] = value
                    return None
                raise S2FAError(
                    f"kernel out-of-bounds access at offset {pos} "
                    f"(buffer size {len(backing)})")
            return run

        def run(env, rt, lhs=lhs):
            raise S2FAError(f"invalid assignment target {lhs!r}")
        return run

    def _compile_for(self, stmt: For) -> Callable:
        vslot = self._slot(stmt.var)
        start_f = self._compile_expr(stmt.start)
        bound_f = self._compile_expr(stmt.bound)
        body_f = self._compile_block(stmt.body)
        step = stmt.step

        def scalar(env, rt, vslot=vslot, start_f=start_f,
                   bound_f=bound_f, body_f=body_f, step=step):
            env[vslot] = start_f(env, rt)
            while True:
                rt._steps += 1
                if rt._steps > rt.max_steps:
                    raise S2FAError(
                        f"kernel exceeded {rt.max_steps} "
                        f"interpreted steps")
                if not env[vslot] < bound_f(env, rt):
                    break
                sig = body_f(env, rt)
                if sig is not None:
                    if sig is _BRK:
                        break
                    if sig is not _CNT:
                        return sig
                env[vslot] = env[vslot] + step
            return None

        plan = self._vector_plan(stmt) if HAVE_NUMPY else None
        if plan is None:
            return scalar

        def hybrid(env, rt, plan=plan, scalar=scalar, vslot=vslot,
                   start_f=start_f, bound_f=bound_f, step=step):
            start = start_f(env, rt)
            bound = bound_f(env, rt)
            if type(start) is not int or type(bound) is not int:
                return scalar(env, rt)
            n = max(0, -(-(bound - start) // step))
            if n < _VECTOR_MIN_ITERS:
                return scalar(env, rt)
            if plan(env, rt, start, n):
                env[vslot] = start + n * step
                return None
            return scalar(env, rt)
        return hybrid

    # -- expressions ---------------------------------------------------

    def _compile_expr(self, expr: Expr) -> Callable:
        if isinstance(expr, IntLit):
            value = expr.value

            def run(env, rt, value=value):
                return value
            return run
        if isinstance(expr, FloatLit):
            value = expr.value

            def run(env, rt, value=value):
                return value
            return run
        if isinstance(expr, Var):
            slot = self._slot(expr.name)
            name = expr.name

            def run(env, rt, slot=slot, name=name):
                value = env[slot]
                if value is _UNDEF:
                    raise S2FAError(
                        f"kernel read of undefined {name!r}")
                return value
            return run
        if isinstance(expr, ArrayRef):
            index_f = self._compile_expr(expr.index)
            if isinstance(expr.array, Var) \
                    and isinstance(expr.index, Var):
                # arr[i] with both names: fetch two slots directly.
                slot = self._slot(expr.array.name)
                name = expr.array.name
                islot = self._slot(expr.index.name)
                iname = expr.index.name

                def run(env, rt, slot=slot, name=name, islot=islot,
                        iname=iname):
                    base = env[slot]
                    index = env[islot]
                    if type(base) is CPointer \
                            and index is not _UNDEF:
                        backing = base.backing
                        pos = base.offset + index
                        if 0 <= pos < len(backing):
                            return backing[pos]
                        raise S2FAError(
                            f"kernel out-of-bounds access at offset "
                            f"{pos} (buffer size {len(backing)})")
                    if base is _UNDEF:
                        raise S2FAError(
                            f"kernel read of undefined {name!r}")
                    if index is _UNDEF:
                        raise S2FAError(
                            f"kernel read of undefined {iname!r}")
                    raise S2FAError(
                        f"indexed load from non-pointer {base!r}")
                return run
            if isinstance(expr.array, Var):
                # The dominant load shape: inline the slot fetch and the
                # bounds check (same trap messages as CPointer/env).
                slot = self._slot(expr.array.name)
                name = expr.array.name

                def run(env, rt, slot=slot, name=name, index_f=index_f):
                    base = env[slot]
                    if type(base) is CPointer:
                        backing = base.backing
                        pos = base.offset + index_f(env, rt)
                        if 0 <= pos < len(backing):
                            return backing[pos]
                        raise S2FAError(
                            f"kernel out-of-bounds access at offset "
                            f"{pos} (buffer size {len(backing)})")
                    # Trap order matches the tree engine: undefined
                    # base, then the index expression, then non-pointer.
                    if base is _UNDEF:
                        raise S2FAError(
                            f"kernel read of undefined {name!r}")
                    index_f(env, rt)
                    raise S2FAError(
                        f"indexed load from non-pointer {base!r}")
                return run
            base_f = self._compile_expr(expr.array)

            def run(env, rt, base_f=base_f, index_f=index_f):
                base = base_f(env, rt)
                index = index_f(env, rt)
                if not isinstance(base, CPointer):
                    raise S2FAError(
                        f"indexed load from non-pointer {base!r}")
                backing = base.backing
                pos = base.offset + index
                if 0 <= pos < len(backing):
                    return backing[pos]
                raise S2FAError(
                    f"kernel out-of-bounds access at offset {pos} "
                    f"(buffer size {len(backing)})")
            return run
        if isinstance(expr, BinOp):
            return self._compile_binop(expr)
        if isinstance(expr, UnOp):
            return self._compile_unop(expr)
        if isinstance(expr, Cast):
            return self._compile_cast(expr)
        if isinstance(expr, Ternary):
            cond_f = self._compile_expr(expr.cond)
            then_f = self._compile_expr(expr.then)
            other_f = self._compile_expr(expr.other)

            def run(env, rt, cond_f=cond_f, then_f=then_f,
                    other_f=other_f):
                if cond_f(env, rt):
                    return then_f(env, rt)
                return other_f(env, rt)
            return run
        if isinstance(expr, Call):
            return self._compile_call(expr)

        def run(env, rt, expr=expr):
            raise S2FAError(f"cannot evaluate expression {expr!r}")
        return run

    def _compile_unop(self, expr: UnOp) -> Callable:
        value_f = self._compile_expr(expr.operand)
        op = expr.op
        if op == "-":
            wrap = _i64 if self._is_long(expr) else _i32

            def run(env, rt, value_f=value_f, wrap=wrap):
                value = value_f(env, rt)
                if not isinstance(value, int):
                    return -value
                return wrap(-value)
            return run
        if op == "!":
            def run(env, rt, value_f=value_f):
                return 0 if value_f(env, rt) else 1
            return run
        if op == "~":
            wrap = _i64 if self._is_long(expr) else _i32

            def run(env, rt, value_f=value_f, wrap=wrap):
                return wrap(~value_f(env, rt))
            return run

        def run(env, rt, op=op):
            raise S2FAError(f"bad unary operator {op}")
        return run

    def _compile_cast(self, expr: Cast) -> Callable:
        value_f = self._compile_expr(expr.expr)
        base = expr.ctype.base
        if base in ("float", "double"):
            def run(env, rt, value_f=value_f):
                return float(value_f(env, rt))
            return run
        if base == "char":
            def run(env, rt, value_f=value_f):
                # JVM char semantics (see tree engine's docstring).
                return int(value_f(env, rt)) & 0xFFFF
            return run
        if base == "short":
            def run(env, rt, value_f=value_f):
                v = int(value_f(env, rt)) & 0xFFFF
                return v - 0x10000 if v > 0x7FFF else v
            return run
        if base == "long":
            def run(env, rt, value_f=value_f):
                value = value_f(env, rt)
                # JVM f2l/d2l: non-finite saturates to 0.
                if isinstance(value, float) and not _isfinite(value):
                    return 0
                return _i64(int(value))
            return run

        def run(env, rt, value_f=value_f):
            value = value_f(env, rt)
            # JVM f2i/d2i: inf saturates to INT_MAX/INT_MIN, NaN to 0.
            if isinstance(value, float) and not _isfinite(value):
                return _INT_MAX if value > 0 else (
                    _INT_MIN if value < 0 else 0)
            return _i32(int(value))
        return run

    def _compile_binop(self, expr: BinOp) -> Callable:
        op = expr.op
        lhs_f = self._compile_expr(expr.lhs)
        rhs_f = self._compile_expr(expr.rhs)
        if op == "&&":
            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f):
                return 1 if (lhs_f(env, rt) and rhs_f(env, rt)) else 0
            return run
        if op == "||":
            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f):
                return 1 if (lhs_f(env, rt) or rhs_f(env, rt)) else 0
            return run
        if op in _CMP_FUNCS:
            cmp = _CMP_FUNCS[op]

            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, cmp=cmp, op=op):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer) and isinstance(b, int):
                    raise S2FAError(f"bad pointer arithmetic {op}")
                return 1 if cmp(a, b) else 0
            return run
        wrap = _i64 if self._is_long(expr) else _i32
        mask = 63 if wrap is _i64 else 31
        if op == "+":
            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, wrap=wrap):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer):
                    if isinstance(b, int):
                        return a.shifted(b)
                elif isinstance(a, int) and isinstance(b, int):
                    return wrap(a + b)
                return a + b
            return run
        if op == "-":
            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, wrap=wrap):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer):
                    if isinstance(b, int):
                        return a.shifted(-b)
                elif isinstance(a, int) and isinstance(b, int):
                    return wrap(a - b)
                return a - b
            return run
        if op == "*":
            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, wrap=wrap):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer) and isinstance(b, int):
                    raise S2FAError("bad pointer arithmetic *")
                if isinstance(a, int) and isinstance(b, int):
                    return wrap(a * b)
                return a * b
            return run
        if op == "/":
            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, wrap=wrap):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer) and isinstance(b, int):
                    raise S2FAError("bad pointer arithmetic /")
                if isinstance(a, int) and isinstance(b, int):
                    return wrap(_cdiv(a, b))
                if b == 0.0:
                    return _INF if a > 0 else (-_INF if a < 0 else _NAN)
                return a / b
            return run
        if op == "%":
            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, wrap=wrap):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer) and isinstance(b, int):
                    raise S2FAError("bad pointer arithmetic %")
                if not (isinstance(a, int) and isinstance(b, int)):
                    return _fmod(a, b)
                return wrap(a - _cdiv(a, b) * b)
            return run
        if op in ("<<", ">>"):
            left = op == "<<"

            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, wrap=wrap,
                    mask=mask, left=left, op=op):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer) and isinstance(b, int):
                    raise S2FAError(f"bad pointer arithmetic {op}")
                if left:
                    return wrap(a << (b & mask))
                return wrap(a >> (b & mask))
            return run
        if op in ("&", "|", "^"):
            bit = {"&": int.__and__, "|": int.__or__,
                   "^": int.__xor__}[op]

            def run(env, rt, lhs_f=lhs_f, rhs_f=rhs_f, wrap=wrap,
                    bit=bit, op=op):
                a = lhs_f(env, rt)
                b = rhs_f(env, rt)
                if isinstance(a, CPointer) and isinstance(b, int):
                    raise S2FAError(f"bad pointer arithmetic {op}")
                return wrap(bit(a, b))
            return run

        def run(env, rt, op=op):
            raise S2FAError(f"bad binary operator {op}")
        return run

    def _compile_call(self, expr: Call) -> Callable:
        arg_fs = tuple(self._compile_expr(a) for a in expr.args)
        name = expr.name
        if name in self.executor.functions:
            n_args = len(arg_fs)

            def run(env, rt, arg_fs=arg_fs, name=name, n_args=n_args):
                fn = rt._compiled_fn(name)
                if n_args != len(fn.param_slots):
                    raise S2FAError(
                        f"{name} expects {len(fn.param_slots)} args, "
                        f"got {n_args}")
                return rt._call_compiled(
                    fn, [f(env, rt) for f in arg_fs])
            return run
        math_fn = _MATH_FUNCS.get(name)
        if math_fn is not None:
            def run(env, rt, arg_fs=arg_fs, math_fn=math_fn):
                return math_fn(*[f(env, rt) for f in arg_fs])
            return run

        def run(env, rt, name=name):
            raise S2FAError(f"kernel calls unknown function {name!r}")
        return run

    # ------------------------------------------------------------------
    # Vectorized loop plans
    # ------------------------------------------------------------------

    def _vector_plan(self, stmt: For) -> Optional[Callable]:
        """Try to build a numpy batch plan for an innermost For loop.

        Returns a closure ``plan(env, rt, start, n) -> bool`` executing
        the whole loop in one shot (True) or declining so the caller
        falls back to the scalar closure (False).  The gate is described
        in the module docstring; any structural mismatch returns None
        here, at compile time.
        """
        if stmt.step < 1:
            return None
        var = stmt.var
        # Bounds must be loop-invariant: no reference to the loop var or
        # to anything the body assigns.
        assigned = set()
        for s in stmt.body.stmts:
            if isinstance(s, Assign) and isinstance(s.lhs, Var):
                assigned.add(s.lhs.name)
            elif isinstance(s, VarDecl):
                assigned.add(s.name)
        for bound_expr in (stmt.start, stmt.bound):
            for e in walk_exprs(bound_expr):
                if isinstance(e, Var) and (e.name == var
                                           or e.name in assigned):
                    return None
        builder = _VectorBuilder(self, var)
        for s in stmt.body.stmts:
            if isinstance(s, Pragma):
                continue
            if isinstance(s, VarDecl):
                if s.is_array or s.init is None:
                    return None
                if not self._name_local_to(s.name, stmt):
                    return None
                if not builder.add_temp(s.name, s.init):
                    return None
            elif isinstance(s, Assign):
                if isinstance(s.lhs, Var):
                    if not self._name_local_to(s.lhs.name, stmt):
                        return None
                    if not builder.add_temp(s.lhs.name, s.rhs):
                        return None
                elif isinstance(s.lhs, ArrayRef):
                    if not builder.add_store(s.lhs, s.rhs):
                        return None
                else:
                    return None
            else:
                return None
        return builder.finish(len(stmt.body.stmts))

    def _name_local_to(self, name: str, loop: For) -> bool:
        """True if ``name`` appears nowhere in the function outside
        ``loop``'s body (so its post-loop value is unobservable)."""
        inside = set()
        for e in walk_exprs(loop.body):
            if isinstance(e, Var):
                inside.add(id(e))
        for s in walk_stmts(loop.body):
            if isinstance(s, (Assign, VarDecl)):
                inside.add(id(s))
        for e in walk_exprs(self.func):
            if isinstance(e, Var) and e.name == name and id(e) not in inside:
                return False
        for s in walk_stmts(self.func):
            if isinstance(s, VarDecl) and s.name == name \
                    and id(s) not in inside:
                return False
            if isinstance(s, Assign) and isinstance(s.lhs, Var) \
                    and s.lhs.name == name and id(s) not in inside:
                return False
            if isinstance(s, For) and s.var == name:
                return False
        return True


class _VectorBuilder:
    """Accumulates the element-wise program of one vectorizable loop."""

    def __init__(self, compiler: _FnCompiler, var: str):
        self.c = compiler
        self.var = var
        #: temp name -> (lane, producer) in assignment order.
        self.temps: dict[str, tuple] = {}
        self.loads: list = []    # (ptr_slot, ptr_name, affine, lane)
        self.stores: list = []   # (ptr_slot, ptr_name, affine, lane, producer)
        self.invariants: list = []  # (slot, name, lane)
        self.ok = True

    # A "producer" is a closure (ctx) -> numpy array or python scalar,
    # where ctx maps load ids / temp names / invariant slots to values
    # prepared by the plan prologue.

    def add_temp(self, name: str, rhs: Expr) -> bool:
        lane_producer = self._vec_expr(rhs)
        if lane_producer is None:
            return False
        lane, producer = lane_producer
        decl = self.c.decl_types.get(name)
        if decl is not None and decl[1]:
            return False  # array shadowing a scalar temp: bail
        self.temps[name] = (lane, producer)
        return True

    def add_store(self, lhs: ArrayRef, rhs: Expr) -> bool:
        if not isinstance(lhs.array, Var):
            return False
        ptr_name = lhs.array.name
        decl = self.c.decl_types.get(ptr_name)
        if decl is None or not decl[1]:
            return False
        affine = self._affine(lhs.index)
        if affine is None or affine[0] == 0:
            return False
        # One store per pointer; a stored pointer is never loaded
        # (the rhs compile below may add loads, so check afterwards too).
        if any(s[1] == ptr_name for s in self.stores):
            return False
        lane_producer = self._vec_expr(rhs)
        if lane_producer is None:
            return False
        lane, producer = lane_producer
        if any(l[1] == ptr_name for l in self.loads):
            return False
        self.stores.append((self.c.slots[ptr_name], ptr_name, affine,
                            lane, producer))
        return True

    # -- affine index extraction: a*i + b ------------------------------

    def _affine(self, expr: Expr):
        """Return ``(a, b)`` with each side an int or a loop-invariant
        scalar closure ``(env) -> value``; None if not affine in the
        loop var."""
        if isinstance(expr, IntLit):
            return (0, expr.value)
        if isinstance(expr, Var):
            if expr.name == self.var:
                return (1, 0)
            inv = self._invariant(expr.name, want="i")
            if inv is None:
                return None
            return (0, inv)
        if isinstance(expr, BinOp):
            if expr.op == "+":
                left = self._affine(expr.lhs)
                right = self._affine(expr.rhs)
                if left is None or right is None:
                    return None
                return (_lin_add(left[0], right[0]),
                        _lin_add(left[1], right[1]))
            if expr.op == "-":
                left = self._affine(expr.lhs)
                right = self._affine(expr.rhs)
                if left is None or right is None:
                    return None
                return (_lin_sub(left[0], right[0]),
                        _lin_sub(left[1], right[1]))
            if expr.op == "*":
                left = self._affine(expr.lhs)
                right = self._affine(expr.rhs)
                if left is None or right is None:
                    return None
                # One side must be degree-0 to stay affine.
                if left[0] == 0:
                    const, lin = left[1], right
                elif right[0] == 0:
                    const, lin = right[1], left
                else:
                    return None
                return (_lin_mul(lin[0], const), _lin_mul(lin[1], const))
            return None
        return None

    def _invariant(self, name: str, want: str):
        """A loop-invariant scalar read: returns a tag used as ctx key,
        registering the (slot, name, lane) for the prologue check."""
        if name in self.temps:
            return None
        decl = self.c.decl_types.get(name)
        if decl is None or decl[1]:
            return None
        lane = decl[0]
        if want == "i" and lane == "f":
            return None
        slot = self.c.slots[name]
        for entry in self.invariants:
            if entry[0] == slot:
                return ("inv", slot)
        self.invariants.append((slot, name, lane))
        return ("inv", slot)

    # -- element-wise expression compilation ---------------------------

    def _vec_expr(self, expr: Expr):
        """Return ``(lane, producer)`` or None.  lane: 'f'|'i32'|'i64'."""
        if isinstance(expr, IntLit):
            lane = "i64" if expr.ctype.base == "long" else "i32"
            value = expr.value
            return lane, (lambda ctx, value=value: value)
        if isinstance(expr, FloatLit):
            value = expr.value
            return "f", (lambda ctx, value=value: value)
        if isinstance(expr, Var):
            name = expr.name
            if name == self.var:
                return "i32", (lambda ctx: ctx["iota"])
            if name in self.temps:
                lane = self.temps[name][0]
                return lane, (lambda ctx, name=name: ctx[name])
            inv = self._invariant(name, want="any")
            if inv is None:
                return None
            lane = self.c.decl_types[name][0]
            return lane, (lambda ctx, inv=inv: ctx[inv])
        if isinstance(expr, ArrayRef):
            if not isinstance(expr.array, Var):
                return None
            ptr_name = expr.array.name
            decl = self.c.decl_types.get(ptr_name)
            if decl is None or not decl[1]:
                return None
            affine = self._affine(expr.index)
            if affine is None:
                return None
            lane = decl[0]
            load_id = len(self.loads)
            self.loads.append((self.c.slots[ptr_name], ptr_name,
                               affine, lane))
            key = ("load", load_id)
            return lane, (lambda ctx, key=key: ctx[key])
        if isinstance(expr, UnOp):
            operand = self._vec_expr(expr.operand)
            if operand is None:
                return None
            lane, prod = operand
            if expr.op == "-":
                if lane == "f":
                    return "f", (lambda ctx, prod=prod: -prod(ctx))
                if lane == "i32":
                    return "i32", (lambda ctx, prod=prod:
                                   _wrap32(-prod(ctx)))
                return "i64", (lambda ctx, prod=prod: -prod(ctx))
            if expr.op == "~":
                if lane == "f":
                    return None
                if lane == "i32":
                    return "i32", (lambda ctx, prod=prod:
                                   _wrap32(~prod(ctx)))
                return "i64", (lambda ctx, prod=prod: ~prod(ctx))
            return None
        if isinstance(expr, Cast):
            operand = self._vec_expr(expr.expr)
            if operand is None:
                return None
            lane, prod = operand
            base = expr.ctype.base
            if base in ("float", "double"):
                if lane == "f":
                    return "f", prod
                return "f", (lambda ctx, prod=prod:
                             _np.asarray(prod(ctx), dtype=_np.float64)
                             if not _np.isscalar(prod(ctx))
                             else float(prod(ctx)))
            if lane == "f":
                return None  # float->int saturation stays scalar
            if base == "char":
                return "i32", (lambda ctx, prod=prod: prod(ctx) & 0xFFFF)
            if base == "short":
                return "i32", (lambda ctx, prod=prod:
                               ((prod(ctx) + 0x8000) & 0xFFFF) - 0x8000)
            if base == "long":
                return "i64", prod
            return "i32", (lambda ctx, prod=prod: _wrap32(prod(ctx)))
        if isinstance(expr, BinOp):
            return self._vec_binop(expr)
        return None

    def _vec_binop(self, expr: BinOp):
        op = expr.op
        if op not in ("+", "-", "*", "/", "<<", ">>", "&", "|", "^"):
            return None
        left = self._vec_expr(expr.lhs)
        right = self._vec_expr(expr.rhs)
        if left is None or right is None:
            return None
        llane, lprod = left
        rlane, rprod = right
        if op == "/":
            # Division stays scalar: int division needs the trap-exact
            # zero check, float division the signed-zero/inf edge cases.
            return None
        if "f" in (llane, rlane):
            if op not in ("+", "-", "*"):
                return None
            fn = {"+": _np_add, "-": _np_sub, "*": _np_mul}[op]
            return "f", (lambda ctx, a=lprod, b=rprod, fn=fn:
                         fn(a(ctx), b(ctx)))
        # Both integer lanes.  Width mirrors the tree engine: shifts
        # take the lhs width, everything else widens if either side is
        # long.
        if op in ("<<", ">>"):
            lane = llane
        else:
            lane = "i64" if "i64" in (llane, rlane) else "i32"
        mask = 63 if lane == "i64" else 31
        if op == "+":
            base = lambda ctx, a=lprod, b=rprod: a(ctx) + b(ctx)
        elif op == "-":
            base = lambda ctx, a=lprod, b=rprod: a(ctx) - b(ctx)
        elif op == "*":
            base = lambda ctx, a=lprod, b=rprod: a(ctx) * b(ctx)
        elif op == "<<":
            base = (lambda ctx, a=lprod, b=rprod, mask=mask:
                    a(ctx) << (b(ctx) & mask))
        elif op == ">>":
            base = (lambda ctx, a=lprod, b=rprod, mask=mask:
                    a(ctx) >> (b(ctx) & mask))
        elif op == "&":
            base = lambda ctx, a=lprod, b=rprod: a(ctx) & b(ctx)
        elif op == "|":
            base = lambda ctx, a=lprod, b=rprod: a(ctx) | b(ctx)
        else:
            base = lambda ctx, a=lprod, b=rprod: a(ctx) ^ b(ctx)
        if lane == "i32":
            return "i32", (lambda ctx, base=base: _wrap32(base(ctx)))
        return "i64", base

    # -- plan assembly -------------------------------------------------

    def finish(self, n_body_stmts: int) -> Optional[Callable]:
        if not self.ok or not self.stores:
            return None
        temps = tuple(self.temps.items())
        loads = tuple(self.loads)
        stores = tuple(self.stores)
        invariants = tuple(self.invariants)
        temp_slots = tuple((self.c.slots[name], name)
                           for name, _ in temps)

        def plan(env, rt, start: int, n: int,
                 temps=temps, loads=loads, stores=stores,
                 invariants=invariants, temp_slots=temp_slots,
                 n_body_stmts=n_body_stmts) -> bool:
            # Budget: the scalar loop would tick 1 per iteration plus
            # the block charge, plus the final exit check.
            ticks = n * (1 + n_body_stmts) + 1
            if rt._steps + ticks > rt.max_steps:
                return False  # let the scalar loop trap mid-flight
            ctx: dict = {}
            # Loop-invariant scalars: runtime types must match the
            # declared lanes the closures were compiled against.
            for slot, _name, lane in invariants:
                value = env[slot]
                if lane == "f":
                    if type(value) is not float:
                        return False
                elif not isinstance(value, int) \
                        or isinstance(value, bool):
                    return False
                ctx[("inv", slot)] = value
            # Gather input segments with bounds/dtype verification.
            arange = _np.arange(n, dtype=_np.int64)
            backings = {}
            for load_id, (slot, _pname, affine, lane) in enumerate(loads):
                ptr = env[slot]
                if not isinstance(ptr, CPointer):
                    return False
                a = _lin_value(affine[0], env)
                bb = _lin_value(affine[1], env)
                if a is None or bb is None:
                    return False
                b = bb + ptr.offset
                lo = min(b, a * (n - 1) + b)
                hi = max(b, a * (n - 1) + b)
                if lo < 0 or hi >= len(ptr.backing):
                    return False
                seg = ptr.backing[lo:hi + 1]
                try:
                    arr = _np.asarray(seg)
                except (TypeError, ValueError, OverflowError):
                    return False
                if lane == "f":
                    if arr.dtype != _np.float64:
                        return False
                    for x in seg:
                        if type(x) is not float:
                            return False
                elif arr.dtype != _np.int64:
                    return False
                idx = a * arange + (b - lo)
                ctx[("load", load_id)] = arr[idx]
                backings.setdefault(id(ptr.backing), ptr.backing)
            ctx["iota"] = arange + start
            # Evaluate temps in program order, then store producers.
            try:
                with _np.errstate(all="ignore"):
                    for name, (_lane, producer) in temps:
                        ctx[name] = producer(ctx)
                    results = []
                    store_backings: set = set()
                    for slot, _pname, affine, lane, producer in stores:
                        ptr = env[slot]
                        if not isinstance(ptr, CPointer):
                            return False
                        a = _lin_value(affine[0], env)
                        bb = _lin_value(affine[1], env)
                        if a is None or bb is None or a <= 0:
                            return False
                        b = bb + ptr.offset
                        hi = a * (n - 1) + b
                        if b < 0 or hi >= len(ptr.backing):
                            return False
                        if id(ptr.backing) in backings \
                                or id(ptr.backing) in store_backings:
                            return False  # aliases another access
                        store_backings.add(id(ptr.backing))
                        value = producer(ctx)
                        results.append((ptr, a, b, value, lane))
            except (TypeError, ValueError, OverflowError,
                    FloatingPointError):
                return False
            # Commit: all checks passed, write every store back.
            rt._steps += ticks
            for ptr, a, b, value, lane in results:
                if _np.isscalar(value) or getattr(value, "ndim", 1) == 0:
                    out = [_scalar_py(value, lane)] * n
                else:
                    out = value.tolist()
                ptr.backing[b:a * (n - 1) + b + 1:a] = out
            # Scalar temps keep their last-iteration value, like the
            # tree engine's flat env.
            for slot, name in temp_slots:
                value = ctx[name]
                if _np.isscalar(value) or getattr(value, "ndim", 1) == 0:
                    env[slot] = _scalar_py(value,
                                           dict(temps)[name][0])
                else:
                    env[slot] = value[-1].item()
            return True
        return plan


def _scalar_py(value, lane):
    if lane == "f":
        return float(value)
    return int(value)


def _lane_type(ctype) -> str:
    if ctype.is_float:
        return "f"
    return "i64" if ctype.base == "long" else "i32"


def _lin_add(x, y):
    if isinstance(x, int) and isinstance(y, int):
        return x + y
    return ("add", x, y)


def _lin_sub(x, y):
    if isinstance(x, int) and isinstance(y, int):
        return x - y
    return ("sub", x, y)


def _lin_mul(x, y):
    if isinstance(x, int) and isinstance(y, int):
        return x * y
    return ("mul", x, y)


def _lin_value(term, env):
    """Evaluate an affine term: int, ('inv', slot), or an op tuple.
    Returns None when a runtime value is not a plain int."""
    if isinstance(term, int):
        return term
    tag = term[0]
    if tag == "inv":
        value = env[term[1]]
        if type(value) is not int:
            return None
        return value
    a = _lin_value(term[1], env)
    b = _lin_value(term[2], env)
    if a is None or b is None:
        return None
    if tag == "add":
        return a + b
    if tag == "sub":
        return a - b
    return a * b


def _np_add(a, b):
    return a + b


def _np_sub(a, b):
    return a - b


def _np_mul(a, b):
    return a * b


_CMP_FUNCS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_INF = float("inf")
_NAN = float("nan")

from math import fmod as _fmod, isfinite as _isfinite  # noqa: E402
