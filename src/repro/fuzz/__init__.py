"""Differential fuzzing of the whole S2FA compilation pipeline.

A Csmith-style standing adversary for every layer the compiler touches:

* :mod:`repro.fuzz.gen` — a seedable generator of well-typed mini-Scala
  kernels over the full supported subset (Int/Long/Float/Double
  arithmetic, comparisons and if/else, nested Tuple2, constant-size
  arrays, nested for loops with accumulator patterns),
* :mod:`repro.fuzz.oracle` — a differential oracle running each kernel
  through scala -> bytecode -> JVM interpreter and scala -> compiler ->
  HLS-C -> C executor (via the Blaze serializers) and asserting
  bit-identical results,
* :mod:`repro.fuzz.metamorphic` — randomized Merlin transform
  configurations (tiling, unrolling, interchange, tree reduction,
  pragma insertion) that must keep the HLS-C bit-identical,
* :mod:`repro.fuzz.minimize` — a delta-debugging shrinker producing
  minimal reproducers,
* :mod:`repro.fuzz.corpus` — self-contained crash artifacts and the
  committed regression corpus,
* :mod:`repro.fuzz.engine` — the campaign runner behind ``s2fa fuzz``.
"""

from .gen import (  # noqa: F401
    FuzzKernel,
    KernelGenerator,
    dataset_kernel,
    generate_kernel,
    make_tasks,
)
from .oracle import DifferentialOutcome, run_differential  # noqa: F401
from .metamorphic import TransformTrial, check_transforms  # noqa: F401
from .minimize import minimize_kernel  # noqa: F401
from .corpus import (  # noqa: F401
    load_regressions,
    replay_entry,
    write_crash_artifact,
)
from .engine import FuzzConfig, FuzzReport, run_campaign  # noqa: F401
