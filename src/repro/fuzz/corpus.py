"""Crash artifacts and the committed regression corpus.

Every bug the fuzzer ever finds becomes a permanent corpus entry: a
single self-contained JSON file holding the (minimized) Scala source,
the layout lengths, the exact input tasks, and the seeds involved.  CI
replays the whole corpus deterministically on every run, so a fixed bug
can never silently regress.

Crash artifacts are richer directories written at detection time:

* ``kernel.scala``     — the original failing kernel,
* ``minimized.scala``  — the delta-debugged reproducer,
* ``meta.json``        — seeds, stage, detail, expected/actual, features,
* ``tasks.json``       — the (shrunken) input tasks,
* ``regression.json``  — a ready-to-commit corpus entry.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..compiler.interface import LayoutConfig
from .gen import FuzzKernel, tasks_from_json, type_from_json, type_to_json
from .metamorphic import check_transforms
from .oracle import run_differential

#: corpus entry schema version, bumped on incompatible change.
ENTRY_VERSION = 1


@dataclass
class RegressionEntry:
    """One replayable corpus entry."""

    name: str
    source: str
    input_type: object            # type_to_json form
    tasks: list                   # JSON form (tuples as lists)
    lengths: dict = field(default_factory=dict)
    batch_size: int = 16
    transform_seed: Optional[int] = None
    min_transform_kinds: int = 3
    notes: str = ""
    path: Optional[Path] = None   # where it was loaded from

    def host_tasks(self) -> list:
        return tasks_from_json(self.tasks, type_from_json(self.input_type))

    def layout_config(self) -> LayoutConfig:
        return LayoutConfig(lengths=dict(self.lengths))

    def to_json(self) -> dict:
        return {
            "version": ENTRY_VERSION,
            "name": self.name,
            "source": self.source,
            "input_type": self.input_type,
            "tasks": self.tasks,
            "lengths": self.lengths,
            "batch_size": self.batch_size,
            "transform_seed": self.transform_seed,
            "min_transform_kinds": self.min_transform_kinds,
            "notes": self.notes,
        }

    @classmethod
    def from_json(cls, data: dict,
                  path: Optional[Path] = None) -> "RegressionEntry":
        return cls(
            name=data["name"],
            source=data["source"],
            input_type=data["input_type"],
            tasks=data["tasks"],
            lengths=data.get("lengths", {}),
            batch_size=data.get("batch_size", 16),
            transform_seed=data.get("transform_seed"),
            min_transform_kinds=data.get("min_transform_kinds", 3),
            notes=data.get("notes", ""),
            path=path)


def entry_from_kernel(kernel: FuzzKernel, tasks: list, *,
                      batch_size: int = 16,
                      transform_seed: Optional[int] = None,
                      notes: str = "") -> RegressionEntry:
    """Build a corpus entry from a kernel and its host-form tasks."""
    def jsonify(value):
        if isinstance(value, tuple):
            return [jsonify(v) for v in value]
        if isinstance(value, list):
            return [jsonify(v) for v in value]
        return value

    return RegressionEntry(
        name=kernel.name,
        source=kernel.scala(),
        input_type=type_to_json(kernel.input_type),
        tasks=[jsonify(t) for t in tasks],
        lengths=dict(kernel.layout_config().lengths),
        batch_size=batch_size,
        transform_seed=transform_seed,
        notes=notes)


def load_regressions(corpus_dir) -> list:
    """Load every ``*.json`` corpus entry, sorted by filename."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        with path.open() as fh:
            entries.append(RegressionEntry.from_json(json.load(fh),
                                                     path=path))
    return entries


def replay_entry(entry: RegressionEntry, *,
                 max_steps: int = 5_000_000) -> tuple:
    """Replay one entry; returns ``(ok, detail)``.

    Runs the differential oracle on the recorded source/tasks and, when
    the entry carries a ``transform_seed``, the metamorphic checker with
    exactly that seed — so the replay exercises the same transforms that
    originally failed.
    """
    tasks = entry.host_tasks()
    layout_config = entry.layout_config()
    outcome = run_differential(entry.source, tasks,
                               layout_config=layout_config,
                               batch_size=entry.batch_size,
                               max_steps=max_steps)
    if not outcome.ok:
        return False, f"differential: {outcome.stage}: {outcome.detail}"
    if entry.transform_seed is not None:
        trials = check_transforms(
            outcome.compiled, tasks, random.Random(entry.transform_seed),
            source=entry.source, layout_config=layout_config,
            min_kinds=entry.min_transform_kinds, max_steps=max_steps)
        bad = [t for t in trials if t.applied and not t.ok]
        if bad:
            t = bad[0]
            return False, f"metamorphic: {t.kind}: {t.detail}"
    return True, "ok"


def write_crash_artifact(directory, *,
                         kernel: FuzzKernel,
                         tasks: list,
                         minimized: Optional[FuzzKernel] = None,
                         minimized_tasks: Optional[list] = None,
                         meta: Optional[dict] = None,
                         batch_size: int = 16,
                         transform_seed: Optional[int] = None) -> Path:
    """Write a self-contained crash artifact directory; returns it."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "kernel.scala").write_text(kernel.scala())
    shrunk = minimized if minimized is not None else kernel
    shrunk_tasks = minimized_tasks if minimized_tasks is not None else tasks
    (directory / "minimized.scala").write_text(shrunk.scala())
    entry = entry_from_kernel(shrunk, shrunk_tasks,
                              batch_size=batch_size,
                              transform_seed=transform_seed,
                              notes=(meta or {}).get("detail", ""))
    with (directory / "regression.json").open("w") as fh:
        json.dump(entry.to_json(), fh, indent=2)
        fh.write("\n")
    with (directory / "tasks.json").open("w") as fh:
        json.dump(entry.tasks, fh, indent=2)
        fh.write("\n")
    with (directory / "meta.json").open("w") as fh:
        json.dump(meta or {}, fh, indent=2, default=repr)
        fh.write("\n")
    return directory
