"""The fuzz campaign runner behind ``s2fa fuzz``.

One iteration = generate a kernel, run the differential oracle, then
(when the kernel is healthy) the metamorphic transform checker.  Any
failure is delta-debugged down to a minimal reproducer and written out
as a self-contained crash artifact under the corpus directory.

Determinism contract: the kernel/task sequence is a pure function of
``FuzzConfig.seed`` (one ``random.Random`` drives generation), and each
iteration's metamorphic RNG is derived as ``seed * 1_000_003 + i`` —
independent of whether earlier iterations failed, so a failing campaign
replays identically.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from .gen import FuzzKernel, KernelGenerator
from .metamorphic import check_transforms
from .minimize import line_count, minimize_kernel
from .oracle import run_differential
from .corpus import write_crash_artifact


@dataclass
class FuzzConfig:
    """Campaign parameters (all deterministic given ``seed``)."""

    iterations: int = 100
    seed: int = 0
    corpus_dir: Optional[Path] = None    # where crash artifacts land
    n_tasks: int = 4
    batch_size: int = 16
    check_metamorphic: bool = True
    min_transform_kinds: int = 3
    minimize: bool = True
    max_shrink_evals: int = 300
    max_steps: int = 5_000_000
    max_failures: int = 10               # stop the campaign after this many


@dataclass
class FuzzFailure:
    """One observed failure, minimized when possible."""

    iteration: int
    kind: str                  # "differential" | "metamorphic"
    kernel_name: str
    stage: str                 # oracle stage or transform kind
    detail: str
    source: str
    minimized_source: Optional[str] = None
    minimized_lines: Optional[int] = None
    artifact_dir: Optional[Path] = None


@dataclass
class FuzzReport:
    """Outcome of a whole campaign."""

    iterations: int = 0
    seed: int = 0
    failures: list = field(default_factory=list)
    features: Counter = field(default_factory=Counter)
    transform_kinds: Counter = field(default_factory=Counter)
    kernels: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures


def _transform_seed(seed: int, iteration: int) -> int:
    return seed * 1_000_003 + iteration


def _differential_predicate(signature: tuple, config: FuzzConfig):
    def predicate(kernel: FuzzKernel, tasks: list) -> bool:
        outcome = run_differential(
            kernel.scala(), tasks,
            layout_config=kernel.layout_config(),
            batch_size=config.batch_size, max_steps=config.max_steps)
        return outcome.signature == signature
    return predicate


def _metamorphic_predicate(kind: str, transform_seed: int,
                           config: FuzzConfig):
    def predicate(kernel: FuzzKernel, tasks: list) -> bool:
        source = kernel.scala()
        layout_config = kernel.layout_config()
        outcome = run_differential(
            source, tasks, layout_config=layout_config,
            batch_size=config.batch_size, max_steps=config.max_steps)
        if not outcome.ok:
            return False
        trials = check_transforms(
            outcome.compiled, tasks, random.Random(transform_seed),
            source=source, layout_config=layout_config,
            min_kinds=config.min_transform_kinds,
            max_steps=config.max_steps)
        return any(t.applied and not t.ok and t.kind == kind
                   for t in trials)
    return predicate


def _handle_failure(config: FuzzConfig, iteration: int, kind: str,
                    kernel: FuzzKernel, tasks: list, stage: str,
                    detail: str, predicate, meta: dict,
                    transform_seed: Optional[int]) -> FuzzFailure:
    failure = FuzzFailure(
        iteration=iteration, kind=kind, kernel_name=kernel.name,
        stage=stage, detail=detail, source=kernel.scala())
    shrunk, shrunk_tasks = kernel, tasks
    if config.minimize:
        try:
            shrunk, shrunk_tasks = minimize_kernel(
                kernel, tasks, predicate,
                max_evals=config.max_shrink_evals)
        except Exception as exc:  # never let the shrinker kill a run
            meta = dict(meta, minimizer_error=f"{type(exc).__name__}: "
                                              f"{exc}")
        failure.minimized_source = shrunk.scala()
        failure.minimized_lines = line_count(shrunk)
    if config.corpus_dir is not None:
        directory = (Path(config.corpus_dir)
                     / f"crash_{iteration:04d}_{kernel.name.lower()}")
        failure.artifact_dir = write_crash_artifact(
            directory, kernel=kernel, tasks=tasks, minimized=shrunk,
            minimized_tasks=shrunk_tasks,
            meta=dict(meta, iteration=iteration, kind=kind, stage=stage,
                      detail=detail, seed=config.seed),
            batch_size=config.batch_size, transform_seed=transform_seed)
    return failure


def run_campaign(config: FuzzConfig, *,
                 on_progress: Optional[Callable] = None) -> FuzzReport:
    """Run one fuzz campaign; returns the :class:`FuzzReport`."""
    generator = KernelGenerator(config.seed)
    report = FuzzReport(iterations=config.iterations, seed=config.seed)

    for iteration in range(config.iterations):
        kernel = generator.kernel()
        tasks = generator.tasks(kernel, config.n_tasks)
        report.kernels += 1
        report.features.update(kernel.features)
        transform_seed = _transform_seed(config.seed, iteration)

        outcome = run_differential(
            kernel.scala(), tasks,
            layout_config=kernel.layout_config(),
            batch_size=config.batch_size, max_steps=config.max_steps)

        if not outcome.ok:
            meta = {"features": list(kernel.features),
                    "signature": list(outcome.signature)}
            if outcome.expected is not None:
                meta["expected"] = repr(outcome.expected)
                meta["actual"] = repr(outcome.actual)
            failure = _handle_failure(
                config, iteration, "differential", kernel, tasks,
                outcome.stage, outcome.detail,
                _differential_predicate(outcome.signature, config),
                meta, transform_seed=None)
            report.failures.append(failure)
        elif config.check_metamorphic:
            trials = check_transforms(
                outcome.compiled, tasks, random.Random(transform_seed),
                source=kernel.scala(),
                layout_config=kernel.layout_config(),
                min_kinds=config.min_transform_kinds,
                max_steps=config.max_steps)
            report.transform_kinds.update(
                t.kind for t in trials if t.applied)
            bad = [t for t in trials if t.applied and not t.ok]
            if bad:
                trial = bad[0]
                failure = _handle_failure(
                    config, iteration, "metamorphic", kernel, tasks,
                    trial.kind, trial.detail,
                    _metamorphic_predicate(trial.kind, transform_seed,
                                           config),
                    {"features": list(kernel.features),
                     "label": trial.label,
                     "transform_seed": transform_seed},
                    transform_seed=transform_seed)
                report.failures.append(failure)

        if on_progress is not None:
            on_progress(iteration, kernel, report)
        if len(report.failures) >= config.max_failures:
            break
    return report
