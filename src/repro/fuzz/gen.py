"""Seedable generator of well-typed mini-Scala kernels.

The generator owns a small typed IR (types, expressions, statements) and
renders it to kernel source.  Working on an IR rather than on source text
keeps every generated program well-typed by construction and gives the
delta-debugging minimizer structured edits (drop a statement, unwrap a
loop, replace a subexpression) that can never produce syntax errors.

Determinism contract: every random decision flows through one
``random.Random`` instance, so the same seed reproduces the same kernel
sequence on any machine/process (the determinism tests assert this).

The generated subset deliberately avoids constructs where JVM and C
semantics legitimately differ or where the JVM raises:

* ``/`` and ``%`` only with non-zero integer literal divisors (no
  ``ArithmeticException``, and ``INT_MIN / -1`` wraps identically),
* shift counts are small literals (both sides mask identically),
* no ``>>>`` (the lifter maps ``iushr`` to arithmetic ``>>``),
* no NaN/Inf *inputs* (cast-produced infinities are fine and covered),
* array indices are loop variables bounded by the array length or
  in-range literals (no ``ArrayIndexOutOfBounds``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from ..compiler.interface import LayoutConfig

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarT:
    """One of the four supported numeric scalar types."""

    name: str  # "Int" | "Long" | "Float" | "Double"

    @property
    def is_float(self) -> bool:
        return self.name in ("Float", "Double")

    def scala(self) -> str:
        return self.name


INT = ScalarT("Int")
LONG = ScalarT("Long")
FLOAT = ScalarT("Float")
DOUBLE = ScalarT("Double")

SCALARS = (INT, LONG, FLOAT, DOUBLE)

#: numeric promotion rank, mirroring the typer's ``promote``.
_RANK = {"Int": 0, "Long": 1, "Float": 2, "Double": 3}


@dataclass(frozen=True)
class TupleT:
    """A (possibly nested) Tuple2/Tuple3 type."""

    elems: tuple

    def scala(self) -> str:
        return "(" + ", ".join(e.scala() for e in self.elems) + ")"


@dataclass(frozen=True)
class ArrayT:
    """A constant-size array of scalars (capacity baked into the layout)."""

    elem: ScalarT
    length: int

    def scala(self) -> str:
        return f"Array[{self.elem.scala()}]"


FuzzType = Union[ScalarT, TupleT, ArrayT]


def type_to_json(tpe: FuzzType) -> object:
    if isinstance(tpe, ScalarT):
        return tpe.name
    if isinstance(tpe, ArrayT):
        return {"array": tpe.elem.name, "length": tpe.length}
    return [type_to_json(e) for e in tpe.elems]


def type_from_json(data: object) -> FuzzType:
    if isinstance(data, str):
        return ScalarT(data)
    if isinstance(data, dict):
        return ArrayT(ScalarT(data["array"]), data["length"])
    return TupleT(tuple(type_from_json(e) for e in data))


def tasks_from_json(tasks: list, tpe: FuzzType) -> list:
    """JSON (lists) back to host task values (tuples) for ``tpe``."""
    def convert(value, t):
        if isinstance(t, TupleT):
            return tuple(convert(v, e) for v, e in zip(value, t.elems))
        if isinstance(t, ArrayT):
            return list(value)
        return value
    return [convert(task, tpe) for task in tasks]


# ---------------------------------------------------------------------------
# Expression IR
# ---------------------------------------------------------------------------


@dataclass
class Lit:
    value: object
    tpe: ScalarT


@dataclass
class Ref:
    name: str
    tpe: ScalarT


@dataclass
class InRef:
    """``in`` or a tuple-accessor chain on it, e.g. ``in._2._1``."""

    path: tuple
    tpe: ScalarT


@dataclass
class InElem:
    """Element load from an array input leaf: ``in._1(i)``."""

    path: tuple
    index: object
    tpe: ScalarT


@dataclass
class ArrGet:
    """Element load from a local array: ``arr0(i)``."""

    name: str
    index: object
    tpe: ScalarT


@dataclass
class Bin:
    op: str
    lhs: object
    rhs: object
    tpe: ScalarT


@dataclass
class CastE:
    expr: object
    tpe: ScalarT


@dataclass
class Cmp:
    """Boolean comparison (only ever consumed by if/while/&&)."""

    op: str
    lhs: object
    rhs: object


@dataclass
class BoolBin:
    op: str  # "&&" | "||"
    lhs: object
    rhs: object


@dataclass
class IfExp:
    cond: object
    then: object
    other: object
    tpe: ScalarT


@dataclass
class TupleE:
    elems: tuple
    tpe: TupleT


# ---------------------------------------------------------------------------
# Statement IR
# ---------------------------------------------------------------------------


@dataclass
class Decl:
    name: str
    tpe: ScalarT
    expr: object
    mutable: bool = False


@dataclass
class ArrDecl:
    name: str
    elem: ScalarT
    length: int


@dataclass
class ArrSet:
    name: str
    index: object
    expr: object


@dataclass
class AssignS:
    name: str
    expr: object


@dataclass
class IfStmt:
    cond: object
    then: list
    orelse: list = field(default_factory=list)


@dataclass
class ForStmt:
    var: str
    trip: int
    body: list


@dataclass
class WhileStmt:
    """``var w = 0; while (w < trip) { body; w = w + 1 }``.

    The increment is implicit in the rendering so no structural edit of
    the minimizer can produce a non-terminating loop.
    """

    var: str
    trip: int
    body: list


@dataclass
class FuzzKernel:
    """One generated kernel: typed IR plus everything needed to run it."""

    name: str
    input_type: FuzzType
    output_type: FuzzType
    body: list
    result: object
    features: tuple = ()

    # -- rendering -----------------------------------------------------

    def scala(self) -> str:
        lines = [
            f"class {self.name} extends Accelerator["
            f"{_type_scala(self.input_type)}, "
            f"{_type_scala(self.output_type)}] {{",
            f'  val id: String = "{self.name.lower()}"',
            f"  def call(in: {_type_scala(self.input_type)}): "
            f"{_type_scala(self.output_type)} = {{",
        ]
        for stmt in self.body:
            lines.extend(_render_stmt(stmt, "    "))
        lines.append(f"    val res_out = {render_expr(self.result)}")
        lines.append("    res_out")
        lines.append("  }")
        lines.append("}")
        return "\n".join(lines) + "\n"

    def layout_config(self) -> LayoutConfig:
        lengths: dict = {}

        def visit(tpe: FuzzType, path: str) -> None:
            if isinstance(tpe, ArrayT):
                lengths[path] = tpe.length
            elif isinstance(tpe, TupleT):
                for i, elem in enumerate(tpe.elems, start=1):
                    visit(elem, f"{path}._{i}")

        visit(self.input_type, "in")
        visit(self.output_type, "out")
        return LayoutConfig(lengths=lengths)


def _type_scala(tpe: FuzzType) -> str:
    return tpe.scala()


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _lit_scala(value: object, tpe: ScalarT) -> str:
    if tpe is LONG or tpe == LONG:
        return f"{value}L"
    if tpe.is_float:
        text = repr(float(value))
        if "e" in text or "E" in text or "inf" in text or "nan" in text:
            raise ValueError(f"unrenderable float literal {value!r}")
        if tpe == FLOAT:
            return f"{text}f"
        return text
    return str(value)


def _in_path(path: tuple) -> str:
    return "in" + "".join(f"._{i}" for i in path)


def render_expr(expr: object) -> str:
    """Render one IR expression, fully parenthesized (no precedence)."""
    if isinstance(expr, Lit):
        text = _lit_scala(expr.value, expr.tpe)
        return f"({text})" if text.startswith("-") else text
    if isinstance(expr, Ref):
        return expr.name
    if isinstance(expr, InRef):
        return _in_path(expr.path)
    if isinstance(expr, InElem):
        return f"{_in_path(expr.path)}({render_expr(expr.index)})"
    if isinstance(expr, ArrGet):
        return f"{expr.name}({render_expr(expr.index)})"
    if isinstance(expr, Bin):
        return (f"({render_expr(expr.lhs)} {expr.op} "
                f"{render_expr(expr.rhs)})")
    if isinstance(expr, CastE):
        return f"{render_expr(expr.expr)}.to{expr.tpe.name}"
    if isinstance(expr, Cmp):
        return (f"({render_expr(expr.lhs)} {expr.op} "
                f"{render_expr(expr.rhs)})")
    if isinstance(expr, BoolBin):
        return (f"({render_expr(expr.lhs)} {expr.op} "
                f"{render_expr(expr.rhs)})")
    if isinstance(expr, IfExp):
        return (f"(if {render_expr(expr.cond)} {render_expr(expr.then)} "
                f"else {render_expr(expr.other)})")
    if isinstance(expr, TupleE):
        return "(" + ", ".join(render_expr(e) for e in expr.elems) + ")"
    raise TypeError(f"cannot render {expr!r}")


def _render_stmt(stmt: object, indent: str) -> list:
    lines: list = []
    if isinstance(stmt, Decl):
        kw = "var" if stmt.mutable else "val"
        lines.append(f"{indent}{kw} {stmt.name}: {stmt.tpe.scala()} = "
                     f"{render_expr(stmt.expr)}")
    elif isinstance(stmt, ArrDecl):
        lines.append(f"{indent}val {stmt.name} = "
                     f"new Array[{stmt.elem.scala()}]({stmt.length})")
    elif isinstance(stmt, ArrSet):
        lines.append(f"{indent}{stmt.name}({render_expr(stmt.index)}) = "
                     f"{render_expr(stmt.expr)}")
    elif isinstance(stmt, AssignS):
        lines.append(f"{indent}{stmt.name} = {render_expr(stmt.expr)}")
    elif isinstance(stmt, IfStmt):
        lines.append(f"{indent}if {render_expr(stmt.cond)} {{")
        for s in stmt.then:
            lines.extend(_render_stmt(s, indent + "  "))
        if stmt.orelse:
            lines.append(f"{indent}}} else {{")
            for s in stmt.orelse:
                lines.extend(_render_stmt(s, indent + "  "))
        lines.append(f"{indent}}}")
    elif isinstance(stmt, ForStmt):
        lines.append(f"{indent}for ({stmt.var} <- 0 until {stmt.trip}) {{")
        for s in stmt.body:
            lines.extend(_render_stmt(s, indent + "  "))
        lines.append(f"{indent}}}")
    elif isinstance(stmt, WhileStmt):
        lines.append(f"{indent}var {stmt.var}: Int = 0")
        lines.append(f"{indent}while ({stmt.var} < {stmt.trip}) {{")
        for s in stmt.body:
            lines.extend(_render_stmt(s, indent + "  "))
        lines.append(f"{indent}  {stmt.var} = {stmt.var} + 1")
        lines.append(f"{indent}}}")
    else:
        raise TypeError(f"cannot render statement {stmt!r}")
    return lines


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

#: small, always-safe integer literal divisors (never 0; INT_MIN / -1
#: wraps identically on both paths).
_DIVISORS = (1, 2, 3, 5, 7, -3, 9, 11)

_INT_POOL = (0, 1, -1, 2, 7, -13, 1000, 2**31 - 1, -2**31, 123456789)
_LONG_POOL = (0, 1, -1, 10**12, -10**12, 2**63 - 1, -2**63, 42)
_FLOAT_POOL = (0.0, 1.0, -1.0, 0.5, -2.25, 100.0, -0.125, 3.75)


@dataclass
class _Scope:
    """Names visible to the expression generator."""

    scalars: list = field(default_factory=list)   # (expr-proto, ScalarT)
    arrays: list = field(default_factory=list)    # (kind, name/path, ArrayT)
    index_vars: list = field(default_factory=list)  # (name, trip)
    mutables: list = field(default_factory=list)  # (name, ScalarT)


class KernelGenerator:
    """Generates a deterministic sequence of kernels from one seed."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)
        self._counter = 0

    # -- public API ----------------------------------------------------

    def kernel(self) -> FuzzKernel:
        """Generate the next kernel in the sequence."""
        self._counter += 1
        return generate_kernel(self.rng, name=f"Fz{self._counter}")

    def tasks(self, kernel: FuzzKernel, n: int) -> list:
        """Generate ``n`` input tasks for ``kernel``."""
        return make_tasks(self.rng, kernel.input_type, n)


def generate_kernel(rng: random.Random, name: str = "Fz") -> FuzzKernel:
    """Generate one well-typed kernel using ``rng`` for every decision."""
    builder = _Builder(rng)
    return builder.build(name)


#: kernel features that give the DSE something to chew on: arrays turn
#: into buffers (bitwidth knobs) and loop nests into tiling/unrolling
#: candidates.
_DATASET_FEATURES = frozenset(("array", "local_array", "nested_for"))


def dataset_kernel(rng: random.Random, name: str = "Ds",
                   attempts: int = 8) -> FuzzKernel:
    """A generated kernel biased toward loops and arrays.

    The QoR dataset factory wants kernels with non-trivial design
    spaces; a pure scalar kernel has almost nothing for the Merlin
    knobs to act on.  Draws up to ``attempts`` kernels from ``rng`` and
    returns the first with an array or a nested loop, falling back to
    the feature-richest draw.
    """
    best = None
    for _ in range(attempts):
        kernel = generate_kernel(rng, name=name)
        if _DATASET_FEATURES & set(kernel.features):
            return kernel
        if best is None or len(kernel.features) > len(best.features):
            best = kernel
    return best


def make_tasks(rng: random.Random, input_type: FuzzType, n: int) -> list:
    """Generate ``n`` random input tasks of ``input_type``."""
    def value(tpe: FuzzType):
        if isinstance(tpe, TupleT):
            return tuple(value(e) for e in tpe.elems)
        if isinstance(tpe, ArrayT):
            return [value(tpe.elem) for _ in range(tpe.length)]
        return _scalar_value(rng, tpe)
    return [value(input_type) for _ in range(n)]


def _scalar_value(rng: random.Random, tpe: ScalarT):
    if tpe == INT:
        if rng.random() < 0.4:
            return rng.choice(_INT_POOL)
        return rng.randrange(-2**31, 2**31)
    if tpe == LONG:
        if rng.random() < 0.4:
            return rng.choice(_LONG_POOL)
        return rng.randrange(-2**63, 2**63)
    if rng.random() < 0.4:
        return rng.choice(_FLOAT_POOL)
    # Multiples of 1/64 in a small range: exactly representable, and the
    # repr never needs exponent notation the lexer might not support.
    return rng.randrange(-64000, 64000) / 64.0


class _Builder:
    def __init__(self, rng: random.Random):
        self.rng = rng
        self.scope = _Scope()
        self.features: set = set()
        self._names = 0

    def fresh(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}{self._names}"

    # -- input type ----------------------------------------------------

    def _input_type(self) -> FuzzType:
        rng = self.rng
        roll = rng.random()
        scalar = lambda: rng.choice(SCALARS)  # noqa: E731
        if roll < 0.10:
            return scalar()
        if roll < 0.40:
            return TupleT((scalar(), scalar()))
        if roll < 0.55:
            return TupleT((scalar(), scalar(), scalar()))
        if roll < 0.75:
            self.features.add("nested_tuple")
            inner = TupleT((scalar(), scalar()))
            if rng.random() < 0.5:
                return TupleT((scalar(), inner))
            return TupleT((inner, scalar()))
        length = rng.randrange(3, 9)
        arr = ArrayT(rng.choice(SCALARS), length)
        self.features.add("array")
        if roll < 0.92:
            return TupleT((arr, scalar()))
        return TupleT((arr, ArrayT(rng.choice(SCALARS),
                                   rng.randrange(3, 9))))

    def _register_input(self, tpe: FuzzType, path: tuple) -> None:
        if isinstance(tpe, TupleT):
            self.features.add("tuple")
            for i, elem in enumerate(tpe.elems, start=1):
                self._register_input(elem, path + (i,))
        elif isinstance(tpe, ArrayT):
            self.scope.arrays.append(("in", path, tpe))
        else:
            self.features.add(tpe.name)
            self.scope.scalars.append((InRef(path, tpe), tpe))

    # -- expressions ---------------------------------------------------

    def expr(self, tpe: ScalarT, depth: int) -> object:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.25:
            return self._leaf(tpe)
        roll = rng.random()
        if roll < 0.55:
            return self._bin(tpe, depth)
        if roll < 0.70:
            self.features.add("cast")
            src = rng.choice([s for s in SCALARS if s != tpe])
            return CastE(self.expr(src, depth - 1), tpe)
        if roll < 0.82:
            self.features.add("if")
            return IfExp(self.cond(depth - 1),
                         self.expr(tpe, depth - 1),
                         self.expr(tpe, depth - 1), tpe)
        arr = self._array_of(tpe)
        if arr is not None:
            return arr
        return self._bin(tpe, depth)

    def _bin(self, tpe: ScalarT, depth: int) -> object:
        rng = self.rng
        if tpe.is_float:
            op = rng.choice(("+", "-", "*", "/"))
            lhs = self.expr(tpe, depth - 1)
            if op == "/":
                # Literal divisor: keeps results finite-or-matching and
                # sidesteps 0/0 NaN-payload concerns.
                rhs = Lit(rng.choice((2.0, 4.0, 0.5, -8.0, 1.25)), tpe)
            else:
                rhs = self._maybe_promoted(tpe, depth)
            return Bin(op, lhs, rhs, tpe)
        op = rng.choice(("+", "-", "*", "+", "-", "*",
                         "/", "%", "&", "|", "^", "<<", ">>"))
        lhs = self.expr(tpe, depth - 1)
        if op in ("/", "%"):
            rhs = Lit(rng.choice(_DIVISORS), tpe)
        elif op in ("<<", ">>"):
            rhs = Lit(rng.randrange(0, 9), INT)
        else:
            rhs = self._maybe_promoted(tpe, depth)
        return Bin(op, lhs, rhs, tpe)

    def _maybe_promoted(self, tpe: ScalarT, depth: int) -> object:
        """Sometimes feed a lower-ranked operand to exercise promotion."""
        rng = self.rng
        lower = [s for s in SCALARS if _RANK[s.name] < _RANK[tpe.name]
                 and not (tpe.is_float and not s.is_float and rng.random()
                          < 0.5)]
        if lower and rng.random() < 0.3:
            self.features.add("promotion")
            return self.expr(rng.choice(lower), depth - 1)
        return self.expr(tpe, depth - 1)

    def _leaf(self, tpe: ScalarT) -> object:
        rng = self.rng
        candidates = [proto for proto, t in self.scope.scalars if t == tpe]
        if tpe == INT:
            candidates.extend(Ref(nm, INT)
                              for nm, _ in self.scope.index_vars)
        if candidates and rng.random() < 0.75:
            proto = rng.choice(candidates)
            return replace(proto) if not isinstance(proto, Ref) \
                else Ref(proto.name, proto.tpe)
        if rng.random() < 0.5:
            other = [(proto, t) for proto, t in self.scope.scalars
                     if t != tpe]
            if other:
                proto, t = rng.choice(other)
                self.features.add("cast")
                src = replace(proto) if not isinstance(proto, Ref) \
                    else Ref(proto.name, proto.tpe)
                return CastE(src, tpe)
        return Lit(self._small_lit(tpe), tpe)

    def _small_lit(self, tpe: ScalarT):
        rng = self.rng
        if tpe.is_float:
            return rng.randrange(-800, 800) / 16.0
        return rng.randrange(-100, 100)

    def _array_of(self, tpe: ScalarT) -> Optional[object]:
        rng = self.rng
        matches = [(kind, ident, arr) for kind, ident, arr
                   in self.scope.arrays if arr.elem == tpe]
        if not matches:
            return None
        kind, ident, arr = rng.choice(matches)
        index = self._index_expr(arr.length)
        if kind == "in":
            return InElem(ident, index, tpe)
        return ArrGet(ident, index, tpe)

    def _index_expr(self, length: int) -> object:
        rng = self.rng
        usable = [nm for nm, trip in self.scope.index_vars
                  if trip <= length]
        if usable and rng.random() < 0.7:
            return Ref(rng.choice(usable), INT)
        return Lit(rng.randrange(length), INT)

    def cond(self, depth: int) -> object:
        rng = self.rng
        tpe = rng.choice(SCALARS)
        op = rng.choice(("<", "<=", ">", ">=", "==", "!="))
        base = Cmp(op, self.expr(tpe, depth), self.expr(tpe, depth))
        if depth > 0 and rng.random() < 0.3:
            other = self.cond(0)
            return BoolBin(rng.choice(("&&", "||")), base, other)
        return base

    # -- statements ----------------------------------------------------

    def _accumulation(self, acc: str, tpe: ScalarT, depth: int,
                      commutative: bool) -> AssignS:
        rng = self.rng
        if commutative:
            ops = ("+", "*") if rng.random() < 0.8 else ("+",)
            op = rng.choice(ops)
        else:
            op = rng.choice(("+", "-", "*") if not tpe.is_float
                            else ("+", "-", "*"))
        return AssignS(acc, Bin(op, Ref(acc, tpe),
                                self.expr(tpe, depth), tpe))

    def _loop_nest(self, accs: list) -> list:
        """One (possibly nested) for loop accumulating into ``accs``."""
        rng = self.rng
        var = self.fresh("i")
        trip = rng.randrange(2, 7)
        self.features.add("for")
        self.scope.index_vars.append((var, trip))
        body: list = []
        nested = rng.random() < 0.45
        if nested:
            self.features.add("nested_for")
            inner_var = self.fresh("i")
            inner_trip = rng.randrange(2, 5)
            self.scope.index_vars.append((inner_var, inner_trip))
            inner_body = [self._accumulation(acc, tpe, 1, commutative=False)
                          for acc, tpe in rng.sample(accs,
                                                     k=min(len(accs), 2))]
            self.scope.index_vars.pop()
            body.append(ForStmt(inner_var, inner_trip, inner_body))
        guarded = rng.random() < 0.5
        stmts = [self._accumulation(acc, tpe, 1, commutative=False)
                 for acc, tpe in rng.sample(accs, k=min(len(accs), 2))]
        if guarded:
            self.features.add("if")
            orelse = [] if rng.random() < 0.5 else \
                [self._accumulation(accs[0][0], accs[0][1], 1,
                                    commutative=False)]
            body.append(IfStmt(self.cond(1), stmts, orelse))
        else:
            body.extend(stmts)
        self.scope.index_vars.pop()
        return [ForStmt(var, trip, body)]

    def _reduction_loop(self, acc: str, tpe: ScalarT) -> ForStmt:
        """A canonical single-statement reduction loop.

        Integer-typed single-accumulation loops are exactly the shape the
        Merlin tree-reduction and interchange transforms accept, so the
        metamorphic checker gets regular exercise.
        """
        rng = self.rng
        var = self.fresh("i")
        # Trips with many divisors so partial unroll/tile factors exist.
        trip = rng.choice((4, 6, 8, 12))
        self.features.add("for")
        self.scope.index_vars.append((var, trip))
        stmt = self._accumulation(acc, tpe, 2, commutative=True)
        nest = rng.random() < 0.4
        if nest:
            self.features.add("nested_for")
            inner_var = self.fresh("i")
            inner_trip = rng.choice((2, 4))
            self.scope.index_vars.append((inner_var, inner_trip))
            inner = self._accumulation(acc, tpe, 1, commutative=True)
            self.scope.index_vars.pop()
            self.scope.index_vars.pop()
            return ForStmt(var, trip, [ForStmt(inner_var, inner_trip,
                                               [inner])])
        self.scope.index_vars.pop()
        return ForStmt(var, trip, [stmt])

    def _local_array_block(self) -> tuple:
        """Declare, fill, and fold a local array; returns (stmts, ref)."""
        rng = self.rng
        name = self.fresh("arr")
        elem = rng.choice(SCALARS)
        length = rng.choice((4, 6, 8))
        self.features.add("local_array")
        decl = ArrDecl(name, elem, length)
        fill_var = self.fresh("i")
        self.scope.index_vars.append((fill_var, length))
        fill = ForStmt(fill_var, length,
                       [ArrSet(name, Ref(fill_var, INT),
                               self.expr(elem, 1))])
        self.scope.index_vars.pop()
        self.scope.arrays.append(("local", name, ArrayT(elem, length)))
        acc = self.fresh("acc")
        acc_decl = Decl(acc, elem, Lit(self._small_lit(elem), elem),
                        mutable=True)
        fold_var = self.fresh("i")
        fold = ForStmt(fold_var, length,
                       [AssignS(acc, Bin("+", Ref(acc, elem),
                                         ArrGet(name, Ref(fold_var, INT),
                                                elem), elem))])
        self.scope.mutables.append((acc, elem))
        return [decl, fill, acc_decl, fold], (Ref(acc, elem), elem)

    def _while_block(self, accs: list) -> WhileStmt:
        rng = self.rng
        var = self.fresh("w")
        trip = rng.randrange(2, 6)
        self.features.add("while")
        self.scope.index_vars.append((var, trip))
        body = [self._accumulation(acc, tpe, 1, commutative=False)
                for acc, tpe in rng.sample(accs, k=min(len(accs), 1))]
        self.scope.index_vars.pop()
        return WhileStmt(var, trip, body)

    # -- whole kernel --------------------------------------------------

    def build(self, name: str) -> FuzzKernel:
        rng = self.rng
        input_type = self._input_type()
        self._register_input(input_type, ())

        body: list = []
        result_pool: list = []  # (Expr, ScalarT) usable in the result

        # A few derived vals over the input leaves.
        for _ in range(rng.randrange(1, 4)):
            tpe = rng.choice(SCALARS)
            nm = self.fresh("v")
            body.append(Decl(nm, tpe, self.expr(tpe, rng.randrange(1, 4))))
            self.scope.scalars.append((Ref(nm, tpe), tpe))
            result_pool.append((Ref(nm, tpe), tpe))

        # Accumulators driven by loops.
        accs: list = []
        for _ in range(rng.randrange(1, 3)):
            tpe = rng.choice(SCALARS)
            nm = self.fresh("acc")
            body.append(Decl(nm, tpe, Lit(self._small_lit(tpe), tpe),
                             mutable=True))
            accs.append((nm, tpe))
            self.scope.mutables.append((nm, tpe))

        int_accs = [(nm, t) for nm, t in accs if not t.is_float]
        if int_accs and rng.random() < 0.6:
            nm, t = rng.choice(int_accs)
            body.append(self._reduction_loop(nm, t))
        body.extend(self._loop_nest(accs))
        if rng.random() < 0.3:
            body.append(self._while_block(accs))
        if rng.random() < 0.3:
            stmts, (ref, tpe) = self._local_array_block()
            body.extend(stmts)
            result_pool.append((ref, tpe))
        for nm, tpe in accs:
            result_pool.append((Ref(nm, tpe), tpe))

        # Result: scalar, pair, or nested pair over the pool.
        def pick() -> tuple:
            proto, tpe = rng.choice(result_pool)
            expr = Ref(proto.name, tpe) if isinstance(proto, Ref) \
                else replace(proto)
            if rng.random() < 0.3:
                expr = Bin("+", expr, self.expr(tpe, 1), tpe)
            return expr, tpe

        roll = rng.random()
        if roll < 0.4:
            result, out_t = pick()
            output_type: FuzzType = out_t
        elif roll < 0.85:
            (e1, t1), (e2, t2) = pick(), pick()
            result = TupleE((e1, e2), TupleT((t1, t2)))
            output_type = TupleT((t1, t2))
            self.features.add("tuple")
        else:
            (e1, t1), (e2, t2), (e3, t3) = pick(), pick(), pick()
            inner = TupleE((e2, e3), TupleT((t2, t3)))
            result = TupleE((e1, inner), TupleT((t1, TupleT((t2, t3)))))
            output_type = TupleT((t1, TupleT((t2, t3))))
            self.features.add("nested_tuple")

        return FuzzKernel(name=name, input_type=input_type,
                          output_type=output_type, body=body,
                          result=result,
                          features=tuple(sorted(self.features)))
