"""Metamorphic transform checking: Merlin rewrites must not change bits.

Every Merlin transformation is semantics-preserving by contract.  The
checker applies randomized transform configurations to a compiled
kernel's HLS-C and demands the transformed kernel produce bit-identical
outputs to the untransformed baseline on the same serialized buffers.

Reassociating transforms (tree reduction, loop interchange over a
reduction) are only bit-exact for *integer* accumulators — wrapping
``+``/``*`` are fully associative and commutative mod 2^n, IEEE floats
are not — so those trials are restricted to loops the checker can prove
are integer-only commutative reductions.  That mirrors real Merlin,
where float reassociation is an explicitly opted-in concession.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from ..errors import TransformError
from ..hlsc import lint_kernel
from ..hlsc.ast import (
    Assign,
    BinOp,
    CKernel,
    For,
    Var,
    VarDecl,
    walk_exprs,
    walk_stmts,
)
from ..hlsc.printer import kernel_to_c
from ..merlin.config import DesignConfig, LoopConfig
from ..merlin.interchange import interchange_loops
from ..merlin.reduction import apply_tree_reduction
from ..merlin.transforms import (
    _find_parent_block,
    apply_config,
    tile_loop,
    unroll_loop,
)
from .oracle import bits_equal

#: transform kinds the checker can draw from.
KINDS = ("pragmas", "tile", "unroll", "interchange", "reduction",
         "recompile")

#: commutative-mod-2^n accumulation operators.
_COMMUTATIVE = ("+", "*", "^", "&", "|")


@dataclass
class TransformTrial:
    """One transform application attempt and its verdict."""

    kind: str
    label: Optional[str]
    applied: bool          # False: transform preconditions not met
    ok: bool               # True unless applied and outputs diverged
    detail: str = ""


def _func_owning(kernel: CKernel, label: str):
    for func in kernel.functions:
        if _find_parent_block(func.body, label) is not None:
            return func
    return None


def _run(kernel: CKernel, layout, tasks: list,
         max_steps: int = 5_000_000) -> list:
    from ..blaze import make_deserializer, make_serializer
    from ..engines import make_kernel_executor
    buffers = make_serializer(layout)(tasks)
    make_kernel_executor(kernel, max_steps=max_steps).run(buffers,
                                                          len(tasks))
    return make_deserializer(layout)(buffers, len(tasks))


def _loop_at(kernel: CKernel, label: str) -> Optional[For]:
    func = _func_owning(kernel, label)
    if func is None:
        return None
    block, index = _find_parent_block(func.body, label)
    stmt = block.stmts[index]
    return stmt if isinstance(stmt, For) else None


def _var_ctypes(func) -> dict:
    ctypes = {p.name: p.ctype for p in func.params}
    for stmt in walk_stmts(func.body):
        if isinstance(stmt, VarDecl):
            ctypes[stmt.name] = stmt.ctype
    return ctypes


def _int_reduction_info(kernel: CKernel, label: str) -> Optional[tuple]:
    """(func, acc_ctype) when the labelled loop is a single-statement
    integer commutative reduction, else None."""
    func = _func_owning(kernel, label)
    loop = _loop_at(kernel, label)
    if func is None or loop is None or len(loop.body.stmts) != 1:
        return None
    stmt = loop.body.stmts[0]
    if not (isinstance(stmt, Assign) and isinstance(stmt.lhs, Var)):
        return None
    rhs = stmt.rhs
    if not (isinstance(rhs, BinOp) and rhs.op in ("+", "*")
            and isinstance(rhs.lhs, Var)
            and rhs.lhs.name == stmt.lhs.name):
        return None
    ctype = _var_ctypes(func).get(stmt.lhs.name)
    if ctype is None or ctype.is_float:
        return None
    # The contribution must not read the accumulator.
    if any(isinstance(e, Var) and e.name == stmt.lhs.name
           for e in walk_exprs(rhs.rhs)):
        return None
    return func, ctype


def _interchange_safe(kernel: CKernel, label: str) -> bool:
    """Is the nest under ``label`` an order-insensitive integer nest?

    Every non-loop statement must be ``acc = acc op contribution`` with a
    commutative-mod-2^n op, an integer accumulator, and a contribution
    that reads no accumulator.  No array stores, no conditionals.
    """
    func = _func_owning(kernel, label)
    loop = _loop_at(kernel, label)
    if func is None or loop is None:
        return False
    ctypes = _var_ctypes(func)
    accs: set = set()
    stmts: list = []

    def collect(block) -> bool:
        for stmt in block.stmts:
            if isinstance(stmt, For):
                if not collect(stmt.body):
                    return False
            elif isinstance(stmt, Assign) and isinstance(stmt.lhs, Var):
                stmts.append(stmt)
                accs.add(stmt.lhs.name)
            else:
                return False
        return True

    if not collect(loop.body):
        return False
    for stmt in stmts:
        rhs = stmt.rhs
        if not (isinstance(rhs, BinOp) and rhs.op in _COMMUTATIVE
                and isinstance(rhs.lhs, Var)
                and rhs.lhs.name == stmt.lhs.name):
            return False
        ctype = ctypes.get(stmt.lhs.name)
        if ctype is None or ctype.is_float:
            return False
        if any(isinstance(e, Var) and e.name in accs
               for e in walk_exprs(rhs.rhs)):
            return False
    return True


def _divisors(n: int) -> list:
    return [d for d in range(2, n + 1) if n % d == 0]


def check_transforms(compiled, tasks: list, rng: random.Random, *,
                     source: Optional[str] = None,
                     layout_config=None,
                     min_kinds: int = 3,
                     max_steps: int = 5_000_000) -> list:
    """Apply randomized Merlin transforms; assert bit-identity.

    Returns the list of :class:`TransformTrial`; any trial with
    ``applied and not ok`` is a metamorphic failure.  At least
    ``min_kinds`` distinct transform kinds are attempted per kernel
    (pragma insertion and batch-loop tiling are always applicable, and
    recompilation determinism whenever ``source`` is given).
    """
    layout = compiled.layout
    baseline = _run(compiled.kernel, layout, tasks, max_steps)
    labels = list(compiled.loop_labels)
    trials: list = []

    def check(kind: str, label: Optional[str], transformed: CKernel,
              detail: str = "") -> None:
        problems = lint_kernel(transformed)
        if problems:
            trials.append(TransformTrial(
                kind=kind, label=label, applied=True, ok=False,
                detail=f"lint: {problems[0]}"))
            return
        try:
            outputs = _run(transformed, layout, tasks, max_steps)
        except Exception as exc:
            trials.append(TransformTrial(
                kind=kind, label=label, applied=True, ok=False,
                detail=f"{type(exc).__name__}: {exc}"))
            return
        ok = bits_equal(baseline, outputs)
        trials.append(TransformTrial(
            kind=kind, label=label, applied=True, ok=ok,
            detail=detail if ok else
            f"transformed outputs diverge ({detail})".strip()))

    def skip(kind: str, label: Optional[str], why: str) -> None:
        trials.append(TransformTrial(kind=kind, label=label,
                                     applied=False, ok=True, detail=why))

    # 1. Pragma-only configuration (always applicable).
    loops_cfg = {}
    for label in labels:
        if rng.random() < 0.6:
            loops_cfg[label] = LoopConfig(
                tile=rng.choice((1, 1, 2, 4)),
                parallel=rng.choice((1, 2, 4)),
                pipeline=rng.choice(("off", "on", "flatten")))
    check("pragmas", None,
          apply_config(compiled.kernel, DesignConfig(loops=loops_cfg)),
          detail=f"{len(loops_cfg)} loops configured")

    # 2. Recompilation determinism (same source -> same HLS-C text).
    if source is not None:
        from ..compiler import compile_kernel
        try:
            again = compile_kernel(source, layout_config=layout_config,
                                   batch_size=compiled.batch_size)
        except Exception as exc:
            again = None
            trials.append(TransformTrial(
                kind="recompile", label=None, applied=True, ok=False,
                detail=f"recompile raised {type(exc).__name__}: {exc}"))
        if again is not None:
            same = kernel_to_c(again.kernel) == kernel_to_c(compiled.kernel)
            trials.append(TransformTrial(
                kind="recompile", label=None, applied=True, ok=same,
                detail="" if same else "HLS-C text differs on recompile"))

    # 3. Tiling a random loop (the batch loop is always tileable).
    if labels:
        label = rng.choice(labels)
        clone = compiled.kernel.clone()
        func = _func_owning(clone, label)
        factor = rng.choice((2, 3, 4))
        try:
            tile_loop(func, label, factor)
        except TransformError as exc:
            skip("tile", label, str(exc))
        else:
            check("tile", label, clone, detail=f"factor={factor}")

    # 4. Unrolling a random *counted* loop, full or partial.
    counted = [lbl for lbl in labels
               if (_loop_at(compiled.kernel, lbl) is not None)]
    if counted:
        label = rng.choice(counted)
        clone = compiled.kernel.clone()
        func = _func_owning(clone, label)
        loop = _loop_at(compiled.kernel, label)
        from ..hlsc.analysis import loop_trip_count
        trip = loop_trip_count(loop)
        factor = None
        if trip is not None and rng.random() < 0.5:
            divisors = _divisors(trip)[:-1]  # proper divisors >= 2
            if divisors:
                factor = rng.choice(divisors)
        try:
            unroll_loop(func, label, factor)
        except TransformError as exc:
            skip("unroll", label, str(exc))
        else:
            check("unroll", label, clone,
                  detail="full" if factor is None else f"factor={factor}")

    # 5. Interchange on a provably order-insensitive integer nest.
    nests = [lbl for lbl in labels
             if _interchange_safe(compiled.kernel, lbl)]
    interchanged = False
    for label in nests:
        clone = compiled.kernel.clone()
        func = _func_owning(clone, label)
        try:
            interchange_loops(func, label)
        except TransformError as exc:
            skip("interchange", label, str(exc))
            continue
        check("interchange", label, clone)
        interchanged = True
        break
    if not nests:
        skip("interchange", None, "no order-insensitive integer nest")

    # 6. Tree reduction on an integer commutative reduction loop.
    reduced = False
    for label in labels:
        info = _int_reduction_info(compiled.kernel, label)
        if info is None:
            continue
        loop = _loop_at(compiled.kernel, label)
        from ..hlsc.analysis import loop_trip_count
        trip = loop_trip_count(loop)
        if trip is None:
            continue
        divisors = _divisors(trip)
        divisors = [d for d in divisors if d < trip] or divisors
        if not divisors:
            continue
        factor = rng.choice(divisors)
        clone = compiled.kernel.clone()
        func = _func_owning(clone, label)
        _, acc_ctype = info
        try:
            apply_tree_reduction(func, label, factor, acc_ctype)
        except TransformError as exc:
            skip("reduction", label, str(exc))
            continue
        check("reduction", label, clone, detail=f"factor={factor}")
        reduced = True
        break
    if not reduced and not any(t.kind == "reduction" for t in trials):
        skip("reduction", None, "no integer reduction loop")

    applied_kinds = {t.kind for t in trials if t.applied}
    if len(applied_kinds) < min_kinds and labels:
        # Guarantee the floor with extra always-applicable tilings.
        for label in labels:
            if len(applied_kinds) >= min_kinds:
                break
            clone = compiled.kernel.clone()
            func = _func_owning(clone, label)
            try:
                tile_loop(func, label, 2)
            except TransformError:
                continue
            check("tile", label, clone, detail="factor=2 (floor)")
            applied_kinds = {t.kind for t in trials if t.applied}
    return trials
