"""Delta-debugging minimizer for failing fuzz kernels.

Shrinks a :class:`~repro.fuzz.gen.FuzzKernel` (plus its task list) while
a caller-supplied predicate keeps holding — typically "still fails with
the same :attr:`DifferentialOutcome.signature`".  All edits are made on
the typed IR, so every candidate is well-typed, syntactically valid
Scala; a candidate can at worst stop reproducing, never stop parsing.

Reduction passes, iterated to fixpoint under an evaluation budget:

* keep a single task,
* delete statements (any nesting depth),
* unwrap loops and conditionals into their bodies,
* shrink loop trip counts to 1,
* replace subexpressions by an operand of the same type or by a
  literal 0/1.
"""

from __future__ import annotations

import copy
from typing import Callable

from .gen import (
    ArrGet,
    ArrSet,
    AssignS,
    Bin,
    BoolBin,
    CastE,
    Cmp,
    Decl,
    ForStmt,
    FuzzKernel,
    IfExp,
    IfStmt,
    InElem,
    Lit,
    ScalarT,
    TupleE,
    WhileStmt,
)

Predicate = Callable[[FuzzKernel, list], bool]


def line_count(kernel: FuzzKernel) -> int:
    """Number of non-blank source lines in the rendered kernel."""
    return sum(1 for ln in kernel.scala().splitlines() if ln.strip())


# ---------------------------------------------------------------------------
# Statement slots
# ---------------------------------------------------------------------------


def _stmt_lists(kernel: FuzzKernel) -> list:
    """Every statement list in the kernel, preorder (deterministic)."""
    out: list = []

    def visit(stmts: list) -> None:
        out.append(stmts)
        for s in stmts:
            if isinstance(s, (ForStmt, WhileStmt)):
                visit(s.body)
            elif isinstance(s, IfStmt):
                visit(s.then)
                visit(s.orelse)

    visit(kernel.body)
    return out


def _slots(kernel: FuzzKernel) -> list:
    """Flat addresses ``(list_index, stmt_index)`` of every statement."""
    return [(li, si)
            for li, stmts in enumerate(_stmt_lists(kernel))
            for si in range(len(stmts))]


def _delete_slot(kernel: FuzzKernel, slot: int) -> FuzzKernel:
    clone = copy.deepcopy(kernel)
    li, si = _slots(clone)[slot]
    del _stmt_lists(clone)[li][si]
    return clone


def _unwrap_slot(kernel: FuzzKernel, slot: int) -> list:
    """Candidates replacing the slot's compound statement by its body."""
    li, si = _slots(kernel)[slot]
    stmt = _stmt_lists(kernel)[li][si]
    bodies: list = []
    if isinstance(stmt, (ForStmt, WhileStmt)):
        bodies.append(stmt.body)
    elif isinstance(stmt, IfStmt):
        bodies.append(stmt.then)
        if stmt.orelse:
            bodies.append(stmt.orelse)
    out: list = []
    for which in range(len(bodies)):
        clone = copy.deepcopy(kernel)
        cli, csi = _slots(clone)[slot]
        cstmt = _stmt_lists(clone)[cli][csi]
        body = ([cstmt.body] if isinstance(cstmt, (ForStmt, WhileStmt))
                else [cstmt.then] + ([cstmt.orelse] if cstmt.orelse
                                     else []))[which]
        _stmt_lists(clone)[cli][csi:csi + 1] = body
        out.append(clone)
    return out


def _shrink_trip(kernel: FuzzKernel, slot: int):
    li, si = _slots(kernel)[slot]
    stmt = _stmt_lists(kernel)[li][si]
    if not isinstance(stmt, (ForStmt, WhileStmt)) or stmt.trip <= 1:
        return None
    clone = copy.deepcopy(kernel)
    cli, csi = _slots(clone)[slot]
    _stmt_lists(clone)[cli][csi].trip = 1
    return clone


# ---------------------------------------------------------------------------
# Expression sites
# ---------------------------------------------------------------------------


def _expr_sites(kernel: FuzzKernel) -> list:
    """Every expression-holding slot, preorder (deterministic).

    A site is ``(holder, attr)`` where ``attr`` is an attribute name, or
    ``("elems", i)`` for tuple-expression elements.
    """
    sites: list = []

    def walk(expr: object) -> None:
        if isinstance(expr, (Bin, Cmp, BoolBin)):
            add(expr, "lhs")
            add(expr, "rhs")
        elif isinstance(expr, CastE):
            add(expr, "expr")
        elif isinstance(expr, IfExp):
            add(expr, "cond")
            add(expr, "then")
            add(expr, "other")
        elif isinstance(expr, TupleE):
            for i in range(len(expr.elems)):
                sites.append((expr, ("elems", i)))
                walk(expr.elems[i])
        elif isinstance(expr, (InElem, ArrGet)):
            add(expr, "index")

    def add(holder: object, attr: str) -> None:
        sites.append((holder, attr))
        walk(getattr(holder, attr))

    def stmt_walk(stmts: list) -> None:
        for s in stmts:
            if isinstance(s, Decl):
                add(s, "expr")
            elif isinstance(s, ArrSet):
                add(s, "index")
                add(s, "expr")
            elif isinstance(s, AssignS):
                add(s, "expr")
            elif isinstance(s, IfStmt):
                add(s, "cond")
                stmt_walk(s.then)
                stmt_walk(s.orelse)
            elif isinstance(s, (ForStmt, WhileStmt)):
                stmt_walk(s.body)

    stmt_walk(kernel.body)
    add(kernel, "result")
    return sites


def _site_get(site: tuple) -> object:
    holder, attr = site
    if isinstance(attr, tuple):
        return holder.elems[attr[1]]
    return getattr(holder, attr)


def _site_set(site: tuple, value: object) -> None:
    holder, attr = site
    if isinstance(attr, tuple):
        elems = list(holder.elems)
        elems[attr[1]] = value
        holder.elems = tuple(elems)
    else:
        setattr(holder, attr, value)


def _shrink_options(expr: object) -> list:
    """Smaller same-typed replacements for ``expr`` (deterministic)."""
    opts: list = []
    tpe = getattr(expr, "tpe", None)
    if isinstance(expr, Bin):
        if getattr(expr.lhs, "tpe", None) == tpe:
            opts.append(expr.lhs)
        if getattr(expr.rhs, "tpe", None) == tpe:
            opts.append(expr.rhs)
    elif isinstance(expr, IfExp):
        opts.append(expr.then)
        opts.append(expr.other)
    elif isinstance(expr, BoolBin):
        opts.append(expr.lhs)
        opts.append(expr.rhs)
    if isinstance(tpe, ScalarT) and not isinstance(expr, Lit):
        one = 1.0 if tpe.is_float else 1
        zero = 0.0 if tpe.is_float else 0
        opts.append(Lit(one, tpe))
        opts.append(Lit(zero, tpe))
    return opts


# ---------------------------------------------------------------------------
# The minimizer
# ---------------------------------------------------------------------------


def minimize_kernel(kernel: FuzzKernel, tasks: list,
                    predicate: Predicate, *,
                    max_evals: int = 400) -> tuple:
    """Greedy fixpoint shrink of ``(kernel, tasks)`` under ``predicate``.

    ``predicate(kernel, tasks)`` must be True for the input pair and is
    re-checked for every candidate edit; edits that keep it True are
    committed.  Exceptions from the predicate reject the candidate.  At
    most ``max_evals`` predicate evaluations are spent.  Returns the
    shrunken ``(kernel, tasks)``.
    """
    kernel = copy.deepcopy(kernel)
    tasks = list(tasks)
    budget = [max_evals]

    def holds(k: FuzzKernel, t: list) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        try:
            return bool(predicate(k, t))
        except Exception:
            return False

    progress = True
    while progress and budget[0] > 0:
        progress = False

        # Fewest tasks first: every later pass reruns the pipeline on
        # whatever task list survives, so this is the cheapest win.
        if len(tasks) > 1:
            for i in range(len(tasks)):
                if holds(kernel, [tasks[i]]):
                    tasks = [tasks[i]]
                    progress = True
                    break

        # Delete statements.  On success the same index now addresses
        # the following statement, so only advance on failure.
        i = 0
        while i < len(_slots(kernel)) and budget[0] > 0:
            cand = _delete_slot(kernel, i)
            if holds(cand, tasks):
                kernel = cand
                progress = True
            else:
                i += 1

        # Unwrap loops/conditionals into their bodies.
        i = 0
        while i < len(_slots(kernel)) and budget[0] > 0:
            hit = False
            for cand in _unwrap_slot(kernel, i):
                if holds(cand, tasks):
                    kernel = cand
                    progress = True
                    hit = True
                    break
            if not hit:
                i += 1

        # Shrink trip counts to 1.
        for i in range(len(_slots(kernel))):
            if budget[0] <= 0:
                break
            cand = _shrink_trip(kernel, i)
            if cand is not None and holds(cand, tasks):
                kernel = cand
                progress = True

        # Simplify expressions: replace a site by an operand or literal.
        i = 0
        while i < len(_expr_sites(kernel)) and budget[0] > 0:
            n_opts = len(_shrink_options(_site_get(_expr_sites(kernel)[i])))
            hit = False
            for j in range(n_opts):
                cand = copy.deepcopy(kernel)
                site = _expr_sites(cand)[i]
                _site_set(site, _shrink_options(_site_get(site))[j])
                if holds(cand, tasks):
                    kernel = cand
                    progress = True
                    hit = True
                    break
            if not hit:
                i += 1
    return kernel, tasks
