"""Differential oracle: JVM-interpreted Scala vs C-interpreted HLS-C.

Runs one kernel through both halves of the S2FA runtime on the same
tasks and demands *bit-identical* results.  Both paths compute in the
same precision with the same operation order, so any divergence is a
compiler/serializer/executor bug, never rounding.

Failures are classified by pipeline stage so the minimizer can require a
shrunken candidate to fail *the same way* (a kernel that stops compiling
is not a reproduction of an output mismatch).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..blaze import make_deserializer, make_serializer
from ..blaze.runtime import _JVMTaskRunner
from ..compiler import compile_kernel
from ..compiler.interface import LayoutConfig
from ..fpga import KernelExecutor

#: pipeline stages a differential run can fail in, in order.
STAGES = ("compile", "jvm", "serialize", "execute", "deserialize",
          "compare")


@dataclass
class DifferentialOutcome:
    """Result of one differential run."""

    ok: bool
    stage: Optional[str] = None      # failing stage, None when ok
    detail: str = ""                 # exception type/message or diff
    expected: Optional[list] = None  # JVM outputs (when both ran)
    actual: Optional[list] = None    # HLS-C outputs (when both ran)
    compiled: object = None

    @property
    def signature(self) -> tuple:
        """Stable identity of the failure for minimization."""
        if self.ok:
            return ("ok",)
        kind = self.detail.split(":", 1)[0] if self.stage != "compare" \
            else "mismatch"
        return (self.stage, kind)


def bits_equal(a: object, b: object) -> bool:
    """Bit-identical equality: exact for ints, NaN==NaN for floats."""
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            bits_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    return type(a) is type(b) and a == b


def outputs_equal(expected: list, actual: list) -> bool:
    return bits_equal(expected, actual)


@dataclass
class _Stage:
    """Context manager tagging exceptions with their pipeline stage."""

    name: str
    failures: list = field(default_factory=list)


def run_differential(source: str, tasks: list, *,
                     layout_config: Optional[LayoutConfig] = None,
                     batch_size: int = 64,
                     max_steps: int = 5_000_000) -> DifferentialOutcome:
    """Run ``source`` on ``tasks`` through both paths and compare."""
    try:
        compiled = compile_kernel(source, layout_config=layout_config,
                                  batch_size=batch_size)
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="compile",
            detail=f"{type(exc).__name__}: {exc}")

    try:
        runner = _JVMTaskRunner(compiled)
        expected = [runner.call(task) for task in tasks]
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="jvm",
            detail=f"{type(exc).__name__}: {exc}", compiled=compiled)

    try:
        serialize = make_serializer(compiled.layout)
        buffers = serialize(tasks)
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="serialize",
            detail=f"{type(exc).__name__}: {exc}", compiled=compiled)

    try:
        KernelExecutor(compiled.kernel,
                       max_steps=max_steps).run(buffers, len(tasks))
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="execute",
            detail=f"{type(exc).__name__}: {exc}", compiled=compiled)

    try:
        deserialize = make_deserializer(compiled.layout)
        actual = deserialize(buffers, len(tasks))
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="deserialize",
            detail=f"{type(exc).__name__}: {exc}", compiled=compiled)

    if not outputs_equal(expected, actual):
        first_bad = next(
            (i for i, (e, a) in enumerate(zip(expected, actual))
             if not bits_equal(e, a)), None)
        return DifferentialOutcome(
            ok=False, stage="compare",
            detail=f"outputs diverge at task {first_bad}",
            expected=expected, actual=actual, compiled=compiled)
    return DifferentialOutcome(ok=True, expected=expected, actual=actual,
                               compiled=compiled)
