"""Differential oracle: JVM-interpreted Scala vs C-interpreted HLS-C.

Runs one kernel through both halves of the S2FA runtime on the same
tasks and demands *bit-identical* results.  Both paths compute in the
same precision with the same operation order, so any divergence is a
compiler/serializer/executor bug, never rounding.

Since the flattened engines landed (:mod:`repro.jvm.tac`,
:mod:`repro.fpga.flat`) the oracle cross-checks a **2x2 engine
matrix**: every kernel runs on both JVM engines (stack walker and TAC)
and both C engines (tree walker and flat), and the engines of each pair
must agree bit-for-bit *including trap type and message* before the
JVM-vs-C comparison happens.  A same-side divergence is classified as
the ``"engine"`` stage — an interpreter rewrite bug, distinct from a
compiler bug.

Engine construction is hoisted out of the per-case loop: compiled
kernels and their four engines live in a small LRU keyed on
``(source, layout, batch_size, max_steps)``, so corpus replays,
minimizer predicates, and metamorphic re-runs of the same case pay
compilation + engine setup once (see ``tests/fuzz/test_oracle.py``
for the regression test pinning this).

Failures are classified by pipeline stage so the minimizer can require a
shrunken candidate to fail *the same way* (a kernel that stops compiling
is not a reproduction of an output mismatch).
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..blaze import make_deserializer, make_serializer
from ..blaze.runtime import _JVMTaskRunner
from ..compiler import compile_kernel
from ..compiler.interface import LayoutConfig
from ..fpga import KernelExecutor
from ..fpga.flat import FlatKernelExecutor

#: pipeline stages a differential run can fail in, in order.  "engine"
#: is a divergence between the two JVM engines or the two C engines.
STAGES = ("compile", "jvm", "serialize", "execute", "deserialize",
          "engine", "compare")


@dataclass
class DifferentialOutcome:
    """Result of one differential run."""

    ok: bool
    stage: Optional[str] = None      # failing stage, None when ok
    detail: str = ""                 # exception type/message or diff
    expected: Optional[list] = None  # JVM outputs (when both ran)
    actual: Optional[list] = None    # HLS-C outputs (when both ran)
    compiled: object = None

    @property
    def signature(self) -> tuple:
        """Stable identity of the failure for minimization."""
        if self.ok:
            return ("ok",)
        kind = self.detail.split(":", 1)[0] if self.stage != "compare" \
            else "mismatch"
        return (self.stage, kind)


def bits_equal(a: object, b: object) -> bool:
    """Bit-identical equality: exact for ints, NaN==NaN for floats."""
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            bits_equal(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
        return a == b and math.copysign(1.0, a) == math.copysign(1.0, b)
    return type(a) is type(b) and a == b


def outputs_equal(expected: list, actual: list) -> bool:
    return bits_equal(expected, actual)


@dataclass
class _Stage:
    """Context manager tagging exceptions with their pipeline stage."""

    name: str
    failures: list = field(default_factory=list)


# ----------------------------------------------------------------------
# Hoisted engine construction (one build per distinct case, LRU-cached)
# ----------------------------------------------------------------------

class OracleEngines:
    """One compiled kernel plus all four execution engines.

    Built once per distinct ``(source, layout, batch_size, max_steps)``
    case and reused across every differential run of that case: corpus
    replays, the minimizer's per-candidate predicate evaluations, and
    the metamorphic checker's baseline re-runs.  Kernel ``call`` methods
    are pure functions of their task (the C path has no cross-batch
    state, so a stateful kernel would already fail the oracle), which is
    what makes reuse sound.
    """

    def __init__(self, compiled, max_steps: int):
        self.compiled = compiled
        self.max_steps = max_steps
        self.stack_runner = _JVMTaskRunner(compiled, engine="stack")
        self.tac_runner = _JVMTaskRunner(compiled, engine="tac")
        # Module-level class lookups so tests can monkeypatch either.
        self.tree_executor = KernelExecutor(compiled.kernel,
                                            max_steps=max_steps)
        self.flat_executor = FlatKernelExecutor(compiled.kernel,
                                                max_steps=max_steps)
        self.serialize = make_serializer(compiled.layout)
        self.deserialize = make_deserializer(compiled.layout)


#: LRU of built engines; capacity bounds memory across long campaigns
#: (every fuzz iteration is a distinct kernel, so the cache pays off on
#: *repeat* runs of one case, not across the campaign).
ENGINE_CACHE_CAPACITY = 64

_engine_cache: "OrderedDict[tuple, OracleEngines]" = OrderedDict()
_cache_hits = 0
_cache_misses = 0


def engines_for(source: str,
                layout_config: Optional[LayoutConfig],
                batch_size: int, max_steps: int) -> OracleEngines:
    """The (cached) engines for one differential case.

    Compilation errors propagate to the caller (classified there as the
    ``"compile"`` stage); only successful builds are cached.
    """
    global _cache_hits, _cache_misses
    key = (source, repr(layout_config), batch_size, max_steps)
    engines = _engine_cache.get(key)
    if engines is not None:
        _engine_cache.move_to_end(key)
        _cache_hits += 1
        return engines
    _cache_misses += 1
    compiled = compile_kernel(source, layout_config=layout_config,
                              batch_size=batch_size)
    engines = OracleEngines(compiled, max_steps)
    _engine_cache[key] = engines
    while len(_engine_cache) > ENGINE_CACHE_CAPACITY:
        _engine_cache.popitem(last=False)
    return engines


def engine_cache_stats() -> dict:
    return {"size": len(_engine_cache), "hits": _cache_hits,
            "misses": _cache_misses}


def clear_engine_cache() -> None:
    global _cache_hits, _cache_misses
    _engine_cache.clear()
    _cache_hits = 0
    _cache_misses = 0


# ----------------------------------------------------------------------
# The differential run
# ----------------------------------------------------------------------

def _err_text(exc: Exception) -> str:
    return f"{type(exc).__name__}: {exc}"


def _run_jvm(runner, tasks: list):
    """``(outputs, None)`` or ``(None, error_text)``."""
    try:
        return [runner.call(task) for task in tasks], None
    except Exception as exc:
        return None, _err_text(exc)


def _run_c(executor, buffers: dict, n_tasks: int) -> Optional[str]:
    """``None`` on success, else the error text."""
    try:
        executor.run(buffers, n_tasks)
        return None
    except Exception as exc:
        return _err_text(exc)


def _buffers_equal(a: dict, b: dict) -> bool:
    return set(a) == set(b) and all(
        bits_equal(a[name], b[name]) for name in a)


def run_differential(source: str, tasks: list, *,
                     layout_config: Optional[LayoutConfig] = None,
                     batch_size: int = 64,
                     max_steps: int = 5_000_000) -> DifferentialOutcome:
    """Run ``source`` on ``tasks`` through both paths and compare.

    The JVM side runs on both the stack and TAC engines, the C side on
    both the tree and flat executors; each pair must agree bit-for-bit
    (same outputs, or same exception type and message) before the
    cross-path comparison.
    """
    try:
        engines = engines_for(source, layout_config, batch_size,
                              max_steps)
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="compile", detail=_err_text(exc))
    compiled = engines.compiled

    # JVM side: stack walker (the reference) vs TAC.
    expected, stack_err = _run_jvm(engines.stack_runner, tasks)
    tac_out, tac_err = _run_jvm(engines.tac_runner, tasks)
    if stack_err != tac_err:
        return DifferentialOutcome(
            ok=False, stage="engine",
            detail=f"jvm-trap-divergence: "
                   f"stack={stack_err!r} tac={tac_err!r}",
            compiled=compiled)
    if stack_err is None and not outputs_equal(expected, tac_out):
        first_bad = next(
            (i for i, (e, a) in enumerate(zip(expected, tac_out))
             if not bits_equal(e, a)), None)
        return DifferentialOutcome(
            ok=False, stage="engine",
            detail=f"jvm-divergence: engines diverge at task {first_bad}",
            expected=expected, actual=tac_out, compiled=compiled)
    if stack_err is not None:
        return DifferentialOutcome(
            ok=False, stage="jvm", detail=stack_err, compiled=compiled)

    # C side: two independent serializations (executors mutate buffers).
    try:
        buffers = engines.serialize(tasks)
        flat_buffers = engines.serialize(tasks)
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="serialize", detail=_err_text(exc),
            compiled=compiled)

    tree_err = _run_c(engines.tree_executor, buffers, len(tasks))
    flat_err = _run_c(engines.flat_executor, flat_buffers, len(tasks))
    if tree_err != flat_err:
        return DifferentialOutcome(
            ok=False, stage="engine",
            detail=f"c-trap-divergence: "
                   f"tree={tree_err!r} flat={flat_err!r}",
            compiled=compiled)
    if tree_err is None and not _buffers_equal(buffers, flat_buffers):
        bad = sorted(name for name in buffers
                     if not bits_equal(buffers[name],
                                       flat_buffers.get(name)))
        return DifferentialOutcome(
            ok=False, stage="engine",
            detail=f"c-divergence: engines diverge in buffers {bad}",
            compiled=compiled)
    if tree_err is not None:
        return DifferentialOutcome(
            ok=False, stage="execute", detail=tree_err,
            compiled=compiled)

    try:
        actual = engines.deserialize(buffers, len(tasks))
    except Exception as exc:
        return DifferentialOutcome(
            ok=False, stage="deserialize", detail=_err_text(exc),
            compiled=compiled)

    if not outputs_equal(expected, actual):
        first_bad = next(
            (i for i, (e, a) in enumerate(zip(expected, actual))
             if not bits_equal(e, a)), None)
        return DifferentialOutcome(
            ok=False, stage="compare",
            detail=f"outputs diverge at task {first_bad}",
            expected=expected, actual=actual, compiled=compiled)
    return DifferentialOutcome(ok=True, expected=expected, actual=actual,
                               compiled=compiled)
