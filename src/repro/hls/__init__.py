"""Simulated HLS backend: device models, scheduling, estimation."""

from .device import Device, KU060, VU9P  # noqa: F401
from .estimator import estimate  # noqa: F401
from .optable import OP_COSTS, OpCost  # noqa: F401
from .result import HLSResult, LoopReport, Resources  # noqa: F401
