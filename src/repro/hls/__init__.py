"""Simulated HLS backend: device models, scheduling, estimation."""

from .device import (  # noqa: F401
    Device,
    DeviceRegistry,
    KC705,
    KU060,
    REGISTRY,
    VU13P,
    VU9P,
    device_names,
    get_device,
)
from .estimator import estimate  # noqa: F401
from .optable import OP_COSTS, OpCost  # noqa: F401
from .result import HLSResult, LoopReport, Resources  # noqa: F401
