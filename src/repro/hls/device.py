"""FPGA device models: envelopes, a scaling constructor, and a registry.

The paper evaluates on an AWS F1 ``f1.2xlarge`` with one Xilinx Virtex
UltraScale+ VU9P (three SLR dies).  Resource totals below are the public
datasheet numbers; the usable fraction is capped at 75% because the
remainder is consumed by the vendor shell / control logic (paper,
footnote 5).

This module generalizes the original single-device model into a small
parameterized family (in the lumos budget style): every :class:`Device`
is a frozen envelope of resource / bandwidth / frequency budgets plus a
relative ``unit_price``, :meth:`Device.scaled` derives new envelopes
from budget multipliers, and the module-level :data:`REGISTRY` names the
supported boards from an edge Kintex-7 up to a four-SLR datacenter part.

Two identity notions matter downstream:

* :meth:`Device.identity` is the *full envelope* — it is hashed into
  DSE cache keys and checkpoint signatures, so two scaled devices that
  happen to share a ``name`` can never poison each other's caches;
* :meth:`Device.covers` is the partial order the cross-device test
  battery enforces: if ``big.covers(small)``, any design feasible on
  ``small`` is feasible on ``big`` with QoR no worse.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, Optional

from ..errors import UnknownDeviceError


@dataclass(frozen=True)
class Device:
    """Resource envelope, clocking, and relative price of one FPGA."""

    name: str
    luts: int
    ffs: int
    dsps: int
    bram_18k: int
    target_mhz: float
    #: fraction of each resource usable by the kernel (vendor shell takes
    #: the rest)
    usable_fraction: float = 0.75
    #: peak off-chip bandwidth in bytes per kernel clock cycle at target
    #: frequency (512-bit AXI = 64 B/cycle)
    mem_bytes_per_cycle: int = 64
    #: number of SLR dies (crossing them costs frequency)
    slr_count: int = 3
    #: relative board price (VU9P = 1.0); the multi-device DSE reports
    #: the cheapest board meeting the QoR target on this axis.
    unit_price: float = 1.0

    def usable(self, kind: str) -> int:
        totals = {"lut": self.luts, "ff": self.ffs, "dsp": self.dsps,
                  "bram": self.bram_18k}
        return int(totals[kind] * self.usable_fraction)

    def identity(self) -> str:
        """The full envelope as a stable string (part of cache keys).

        Everything that can change an estimate is in here — two devices
        with equal identities are interchangeable for caching, and two
        devices that merely share a ``name`` are not.
        """
        return (f"{self.name}"
                f":l{self.luts}:f{self.ffs}:d{self.dsps}"
                f":b{self.bram_18k}:m{self.target_mhz:g}"
                f":u{self.usable_fraction:g}:w{self.mem_bytes_per_cycle}"
                f":s{self.slr_count}")

    def covers(self, other: "Device") -> bool:
        """Is every budget of ``other`` within this device's envelope?

        This is the monotonicity partial order: the estimator guarantees
        that when ``big.covers(small)``, feasibility and normalized QoR
        on ``big`` are no worse than on ``small`` for any design point.
        """
        return (self.luts >= other.luts
                and self.ffs >= other.ffs
                and self.dsps >= other.dsps
                and self.bram_18k >= other.bram_18k
                and self.target_mhz >= other.target_mhz
                and self.usable_fraction >= other.usable_fraction
                and self.mem_bytes_per_cycle >= other.mem_bytes_per_cycle)

    def scaled(self, name: str, *, area: float = 1.0,
               bandwidth: float = 1.0, frequency: float = 1.0,
               price: Optional[float] = None) -> "Device":
        """A derived envelope from budget multipliers (lumos style).

        ``area`` scales the silicon budgets (LUT/FF/DSP/BRAM), while
        ``bandwidth`` and ``frequency`` scale the off-chip byte rate and
        the target clock.  ``price`` pins the relative board price; by
        default it tracks the area budget (bigger silicon costs more).
        All multipliers must be positive; resource counts floor at 1 so
        a tiny budget still yields a well-formed device.
        """
        for label, value in (("area", area), ("bandwidth", bandwidth),
                             ("frequency", frequency)):
            if value <= 0:
                raise ValueError(
                    f"scaled() {label} budget must be positive, "
                    f"got {value}")
        return dataclasses.replace(
            self,
            name=name,
            luts=max(1, int(self.luts * area)),
            ffs=max(1, int(self.ffs * area)),
            dsps=max(1, int(self.dsps * area)),
            bram_18k=max(1, int(self.bram_18k * area)),
            target_mhz=self.target_mhz * frequency,
            mem_bytes_per_cycle=max(
                1, int(self.mem_bytes_per_cycle * bandwidth)),
            unit_price=(price if price is not None
                        else self.unit_price * area))


#: Xilinx Kintex-7 325T (KC705 board): the edge-class device.  One die,
#: a narrow DDR3 interface, and a conservative clock — the registry's
#: smallest envelope, where infeasibility and saturation edges live.
KC705 = Device(
    name="xc7k325t",
    luts=203_800,
    ffs=407_600,
    dsps=840,
    bram_18k=890,
    target_mhz=200.0,
    mem_bytes_per_cycle=16,
    slr_count=1,
    unit_price=0.25,
)

#: Xilinx Kintex UltraScale KU060: the mid-range part (and the
#: feasibility-edge device of the original test suite, now a
#: first-class registry citizen).
KU060 = Device(
    name="xcku060",
    luts=331_680,
    ffs=663_360,
    dsps=2_760,
    bram_18k=2_160,
    target_mhz=250.0,
    unit_price=0.45,
)

#: Xilinx Virtex UltraScale+ VU9P (AWS EC2 F1): the paper's device.
VU9P = Device(
    name="xcvu9p",
    luts=1_182_240,
    ffs=2_364_480,
    dsps=6_840,
    bram_18k=4_320,
    target_mhz=250.0,
)

#: Xilinx Virtex UltraScale+ VU13P: the four-SLR datacenter part.
VU13P = Device(
    name="xcvu13p",
    luts=1_728_000,
    ffs=3_456_000,
    dsps=12_288,
    bram_18k=5_376,
    target_mhz=250.0,
    slr_count=4,
    unit_price=1.6,
)


class DeviceRegistry:
    """Named device envelopes, looked up by exact name.

    The registry is the single authority the CLI, configs, and the serve
    fleet consult to turn a ``--device`` string into an envelope; an
    unknown name raises :class:`~repro.errors.UnknownDeviceError`
    listing every registered device.
    """

    def __init__(self, devices: tuple[Device, ...] = ()):
        self._devices: dict[str, Device] = {}
        for device in devices:
            self.register(device)

    def register(self, device: Device) -> Device:
        """Add ``device`` under its name (re-registering the same name
        with a different envelope is an error — names must stay
        unambiguous)."""
        existing = self._devices.get(device.name)
        if existing is not None and existing != device:
            raise ValueError(
                f"device {device.name!r} already registered with a "
                f"different envelope")
        self._devices[device.name] = device
        return device

    def get(self, name: str) -> Device:
        """The device registered as ``name`` (exact match)."""
        device = self._devices.get(name)
        if device is None:
            raise UnknownDeviceError(name, self._devices)
        return device

    def names(self) -> list[str]:
        return sorted(self._devices)

    def devices(self) -> list[Device]:
        """All devices, cheapest first (price, then name — the
        deterministic sweep order of the multi-device DSE)."""
        return sorted(self._devices.values(),
                      key=lambda d: (d.unit_price, d.name))

    def smallest(self) -> Device:
        """The device with the smallest usable LUT budget (the
        feasibility-edge device the fuzz battery sweeps)."""
        return min(self._devices.values(),
                   key=lambda d: (d.usable("lut"), d.name))

    def __contains__(self, name: str) -> bool:
        return name in self._devices

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices())

    def __len__(self) -> int:
        return len(self._devices)


#: The process-wide registry of supported boards, edge to datacenter.
REGISTRY = DeviceRegistry((KC705, KU060, VU9P, VU13P))


def get_device(name: str) -> Device:
    """Look up a registered device by name (typed error on a miss)."""
    return REGISTRY.get(name)


def device_names() -> list[str]:
    """Sorted names of every registered device."""
    return REGISTRY.names()
