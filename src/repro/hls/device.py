"""FPGA device models.

The paper evaluates on an AWS F1 ``f1.2xlarge`` with one Xilinx Virtex
UltraScale+ VU9P (three SLR dies).  Resource totals below are the public
VU9P numbers; the usable fraction is capped at 75% because the remainder
is consumed by the vendor shell / control logic (paper, footnote 5).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Device:
    """Resource envelope and clocking of one FPGA."""

    name: str
    luts: int
    ffs: int
    dsps: int
    bram_18k: int
    target_mhz: float
    #: fraction of each resource usable by the kernel (vendor shell takes
    #: the rest)
    usable_fraction: float = 0.75
    #: peak off-chip bandwidth in bytes per kernel clock cycle at target
    #: frequency (512-bit AXI = 64 B/cycle)
    mem_bytes_per_cycle: int = 64
    #: number of SLR dies (crossing them costs frequency)
    slr_count: int = 3

    def usable(self, kind: str) -> int:
        totals = {"lut": self.luts, "ff": self.ffs, "dsp": self.dsps,
                  "bram": self.bram_18k}
        return int(totals[kind] * self.usable_fraction)


#: Xilinx Virtex UltraScale+ VU9P (AWS EC2 F1).
VU9P = Device(
    name="xcvu9p",
    luts=1_182_240,
    ffs=2_364_480,
    dsps=6_840,
    bram_18k=4_320,
    target_mhz=250.0,
)

#: A smaller Kintex-class device, useful in tests for feasibility edges.
KU060 = Device(
    name="xcku060",
    luts=331_680,
    ffs=663_360,
    dsps=2_760,
    bram_18k=2_160,
    target_mhz=250.0,
)
