"""Analytical HLS estimation (the Xilinx SDx substitute).

Given a generated kernel and a :class:`~repro.merlin.config.DesignConfig`,
this module plays the role the paper assigns to "HLS of the Xilinx SDx":
estimate cycles and resource utilization for one design point.  The model
is deliberately structured around the effects the paper's DSE exploits:

* pipelining bounds latency by the initiation interval (II), which is in
  turn bound by loop-carried recurrences (reductions, wavefronts), by a
  13-cycle non-pipelined ``exp`` core (the LR case in Fig. 4), and by
  memory port width;
* parallel factors trade resources for iterations, but do nothing for
  dependence-bound loops and eventually hit routing walls — *except* for
  very simple compute patterns, the paper's argument against heuristic
  space pruning (Section 4.3.2);
* ``flatten`` fully unrolls sub-loops, exploding resources but enabling
  fine-grained pipelining of the nest (Impediment 2's factor dependency);
* buffer bit-widths set bytes-per-cycle on each port; AES/PR stay
  bandwidth-bound no matter the compute configuration (Table 2);
* tiling the task loop enables double buffering, overlapping transfer
  with compute.

Each evaluation also charges *synthesis minutes* on the DSE's virtual
clock (Impediment 1: "HLS takes several minutes to evaluate one design
point"), and a small deterministic config-keyed perturbation keeps the
landscape rugged but reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..hlsc.analysis import LoopInfo, kernel_loop_tree, local_buffers
from ..hlsc.ast import CKernel, Param
from ..merlin.config import DesignConfig, LoopConfig
from ..obs.span import NULL_TRACER
from ..utils import clamp, stable_unit
from .device import Device, VU9P
from .optable import DEFAULT_ILP, LOOP_OVERHEAD, OP_COSTS, PIPELINE_FILL
from .result import HLSResult, LoopReport, Resources

#: Version of the analytical model itself.  Bump whenever a change makes
#: the estimator return different numbers for the same (kernel, config,
#: device): the version is part of every cost-model identity, so cached
#: evaluations and trained surrogates from an older model are never mixed
#: with fresh ones.
ESTIMATOR_VERSION = 1

#: Baseline (control logic, AXI shell adapters) as fractions of the device.
_BASE_LUT_FRACTION = 0.03
_BASE_FF_FRACTION = 0.02
_BASE_BRAM_BLOCKS = 64

#: Routing wall: total PE product beyond which complex kernels fail.
_ROUTING_PE_LIMIT = 128
#: A kernel is "simple" (can escape the routing wall) when its distinct
#: compute-op categories are at most this many.
_SIMPLE_OP_KINDS = 2


@dataclass
class _LoopOutcome:
    latency: int
    resources: Resources
    contains_fspec: bool
    recurrence_latency: int  # serial chain if this unit is replicated


@dataclass
class _Context:
    device: Device
    config: DesignConfig
    bitwidths: dict[str, int]
    interface: dict[str, Param]
    bytes_per_task: int = 0
    reports: list[LoopReport] = field(default_factory=list)
    pe_product: int = 1
    flatten_carried_dep: bool = False


def _task_stream_ii(ctx: _Context, parallel: int) -> int:
    """II floor of the task loop from interface streaming bandwidth."""
    if ctx.bytes_per_task <= 0:
        return 1
    widths = list(ctx.bitwidths.values()) or [32]
    port_bytes = max(1, min(min(widths) // 8, ctx.device.mem_bytes_per_cycle))
    return max(1, math.ceil(ctx.bytes_per_task * parallel / port_bytes))


def _body_latency(info: LoopInfo) -> int:
    """Latency of one iteration's straight-line ops (children excluded)."""
    total = 0.0
    for category, count in info.body_ops.counts.items():
        total += OP_COSTS[category].latency * count
    return max(1, math.ceil(total / DEFAULT_ILP))


def _recurrence_latency(info: LoopInfo) -> int:
    """Cycles of the loop-carried chain, when one exists."""
    if info.carried_array_dep or info.carried_scalar_dep:
        # Approximate the serial chain as a bit over half the body.
        return max(2, math.ceil(_body_latency(info) * 0.6))
    if info.is_reduction:
        total = sum(OP_COSTS[c].latency * n
                    for c, n in info.recurrence_ops.counts.items())
        return max(1, total)
    return 0


def _body_resources(info: LoopInfo, lanes: int) -> Resources:
    res = Resources()
    for category, count in info.body_ops.counts.items():
        cost = OP_COSTS[category]
        res.add(lut=cost.lut * count * lanes,
                ff=cost.ff * count * lanes,
                dsp=cost.dsp * count * lanes)
    return res


def _interface_access_bytes(info: LoopInfo,
                            interface: dict[str, Param]) -> int:
    """Bytes of interface traffic per iteration of this loop's body."""
    total = 0
    loads = info.body_ops.get("load")
    stores = info.body_ops.get("store")
    touched = [name for name in (info.arrays_read | info.arrays_written)
               if name in interface]
    if not touched:
        return 0
    # Approximate: accesses are spread over the touched interface buffers.
    per_buffer = max(1, (loads + stores) // max(1, len(touched)))
    for name in touched:
        width = interface[name].ctype.width_bits // 8
        total += per_buffer * width
    return total


def _schedule(info: LoopInfo, ctx: _Context, flattened: bool) -> _LoopOutcome:
    cfg: LoopConfig = ctx.config.loop(info.label)
    trip = info.trip_count if info.trip_count is not None else 64
    parallel = max(1, min(cfg.parallel, trip))
    pipeline = cfg.pipeline
    if flattened:
        parallel = trip
        pipeline = "off"

    children = [
        _schedule(child, ctx,
                  flattened=flattened or pipeline == "flatten")
        for child in info.children
    ]
    child_latency = sum(c.latency for c in children)
    child_fspec = any(c.contains_fspec for c in children)
    body_lat = _body_latency(info)
    contains_fspec = bool(info.body_ops.get("fspec")) or child_fspec
    recurrence = _recurrence_latency(info)

    resources = _body_resources(info, parallel)
    for child in children:
        # Children replicated once per parallel lane of this loop.
        resources.add(lut=child.resources.lut * parallel,
                      ff=child.resources.ff * parallel,
                      dsp=child.resources.dsp * parallel,
                      bram=child.resources.bram * parallel)

    dependence_bound = info.carried_array_dep or info.carried_scalar_dep
    if dependence_bound:
        # Parallel lanes cannot help a serial chain; hardware is
        # replicated but iterations stay sequential.
        iterations = trip
    else:
        iterations = max(1, math.ceil(trip / parallel))

    note = ""
    if flattened or parallel >= trip:
        # Fully unrolled: a straight-line unit.
        if dependence_bound:
            serial = max(recurrence, 1)
            latency = body_lat + serial * (trip - 1) + child_latency
            note = "unrolled serial chain"
        elif info.is_reduction:
            # HLS balances the unrolled accumulation into a tree.
            serial = max(recurrence, 1)
            depth = max(1, math.ceil(math.log2(max(2, trip))))
            latency = body_lat + serial * depth + child_latency
            note = "unrolled reduction tree"
        else:
            wide_ilp = min(parallel, 8)
            latency = max(1, math.ceil(
                (body_lat * trip) / wide_ilp)) + child_latency
            note = "fully unrolled"
        outcome_recurrence = recurrence * trip if dependence_bound else 0
        ctx.reports.append(LoopReport(
            label=info.label, trip_count=info.trip_count, iterations=1,
            ii=None, latency=latency, pipelined=False, parallel=parallel,
            note=note))
        return _LoopOutcome(latency=latency, resources=resources,
                            contains_fspec=contains_fspec,
                            recurrence_latency=outcome_recurrence)

    ii: Optional[int] = None
    if pipeline == "on" and not info.children:
        ii = 1
        if info.is_reduction:
            if parallel > 1:
                # Tree reduction: partial sums restore II=1; the combine
                # tree adds a logarithmic epilogue.
                ii = 1
                epilogue = recurrence * max(1, math.ceil(
                    math.log2(parallel)))
            else:
                ii = max(ii, recurrence)
                epilogue = 0
        else:
            epilogue = 0
        if dependence_bound:
            ii = max(ii, recurrence)
        if contains_fspec and not ctx.config.stage_split:
            ii = max(ii, OP_COSTS["fspec"].latency)
        elif contains_fspec:
            ii = max(ii, 2)
        bytes_per_iter = _interface_access_bytes(info, ctx.interface)
        if bytes_per_iter:
            widths = [ctx.bitwidths.get(name, 32)
                      for name in (info.arrays_read | info.arrays_written)
                      if name in ctx.interface]
            port_bytes = max(1, min(widths) // 8) if widths else 4
            ii = max(ii, math.ceil(
                (bytes_per_iter * parallel) / port_bytes))
        if info.is_task_loop:
            ii = max(ii, _task_stream_ii(ctx, parallel))
        latency = PIPELINE_FILL + body_lat + ii * (iterations - 1) + epilogue
        ctx.reports.append(LoopReport(
            label=info.label, trip_count=info.trip_count,
            iterations=iterations, ii=ii, latency=latency, pipelined=True,
            parallel=parallel, note="pipelined"))
        return _LoopOutcome(latency=latency, resources=resources,
                            contains_fspec=contains_fspec,
                            recurrence_latency=0)

    if pipeline == "flatten":
        # Children were scheduled fully unrolled; pipeline the flat body.
        flat_body = body_lat + child_latency
        ii = 1
        if info.is_reduction or dependence_bound:
            ii = max(ii, recurrence)
        child_chain = max((c.recurrence_latency for c in children),
                          default=0)
        if child_chain:
            # The unrolled child is a dependence chain, but successive
            # iterations of this loop overlap against it in a skewed
            # (systolic/wavefront) schedule: the II is about one cell
            # latency, not the whole chain.
            child_trips = max((child.trip_count or 1)
                              for child in info.children)
            cell = max(2, math.ceil(
                child_chain / max(1, child_trips) / 2))
            ii = max(ii, cell)
            ctx.flatten_carried_dep = True
        if contains_fspec and not ctx.config.stage_split:
            ii = max(ii, OP_COSTS["fspec"].latency)
        bytes_per_iter = _interface_access_bytes(info, ctx.interface)
        if bytes_per_iter:
            widths = [ctx.bitwidths.get(name, 32)
                      for name in (info.arrays_read | info.arrays_written)
                      if name in ctx.interface]
            port_bytes = max(1, min(widths) // 8) if widths else 8
            ii = max(ii, math.ceil(bytes_per_iter * parallel / port_bytes))
        if info.is_task_loop:
            ii = max(ii, _task_stream_ii(ctx, parallel))
        latency = PIPELINE_FILL + flat_body + ii * (iterations - 1)
        ctx.reports.append(LoopReport(
            label=info.label, trip_count=info.trip_count,
            iterations=iterations, ii=ii, latency=latency, pipelined=True,
            parallel=parallel, note="flattened pipeline"))
        return _LoopOutcome(latency=latency, resources=resources,
                            contains_fspec=contains_fspec,
                            recurrence_latency=0)

    if pipeline == "on" and info.children and not dependence_bound:
        # Merlin coarse-grained pipelining: double-buffer between the
        # body stages so successive iterations overlap; throughput is
        # bound by the slowest stage.
        stages = [body_lat + LOOP_OVERHEAD] + [c.latency for c in children]
        stage_ii = max(stages)
        if contains_fspec and not ctx.config.stage_split:
            # A naive exp core in the stage cannot accept new data every
            # cycle (the paper's LR II=13 case).
            stage_ii = max(stage_ii, OP_COSTS["fspec"].latency)
        if ctx.config.stage_split:
            # Manual statement splitting breaks the critical stage into a
            # deeper, finer pipeline (the LR manual design of Fig. 4).
            stage_ii = max(2, math.ceil(stage_ii / 6))
        if info.is_task_loop:
            # Replicated CUs share the memory interface: each pipeline
            # beat must stream `parallel` tasks' worth of bytes.
            stage_ii = max(stage_ii, _task_stream_ii(ctx, parallel))
        latency = sum(stages) + stage_ii * (iterations - 1)
        ctx.reports.append(LoopReport(
            label=info.label, trip_count=info.trip_count,
            iterations=iterations, ii=stage_ii, latency=latency,
            pipelined=True, parallel=parallel,
            note="coarse-grained pipeline"))
        return _LoopOutcome(latency=latency, resources=resources,
                            contains_fspec=contains_fspec,
                            recurrence_latency=0)

    # Sequential execution.
    per_iter = body_lat + child_latency + LOOP_OVERHEAD
    latency = iterations * per_iter
    if pipeline == "on" and info.children:
        latency = max(1, math.ceil(latency * 0.9))
        note = "pipeline serialized by loop-carried deps; slight overlap"
    else:
        note = "sequential"
    ctx.reports.append(LoopReport(
        label=info.label, trip_count=info.trip_count,
        iterations=iterations, ii=None, latency=latency, pipelined=False,
        parallel=parallel, note=note))
    return _LoopOutcome(latency=latency, resources=resources,
                        contains_fspec=contains_fspec,
                        recurrence_latency=0)


def _bram_usage(kernel: CKernel, ctx: _Context, task_tile: int) -> int:
    """BRAM blocks: local arrays (partitioned) + interface staging."""
    blocks = _BASE_BRAM_BLOCKS
    # Local arrays, replicated per parallel lane of loops touching them.
    lane_scale: dict[str, int] = {}

    def scan(info: LoopInfo, scale: int) -> None:
        cfg = ctx.config.loop(info.label)
        trip = info.trip_count or 64
        lanes = scale * max(1, min(cfg.parallel, trip))
        for name in info.arrays_read | info.arrays_written:
            lane_scale[name] = max(lane_scale.get(name, 1), lanes)
        for child in info.children:
            scan(child, lanes)

    for root in kernel_loop_tree(kernel):
        scan(root, 1)

    for func in kernel.functions:
        for decl in local_buffers(func):
            bits = decl.element_count * decl.ctype.width_bits
            banks = max(1, math.ceil(bits / 18432))
            partition = min(lane_scale.get(decl.name, 1),
                            decl.element_count)
            blocks += banks * partition
    # Interface staging buffers: tile_factor tasks double-buffered.
    for name, parameter in ctx.interface.items():
        if parameter.elem_count is None:
            continue
        bits = (parameter.elem_count * parameter.ctype.width_bits
                * max(1, task_tile))
        blocks += 2 * max(1, math.ceil(bits / 18432))
    return blocks


def estimate(kernel: CKernel, config: DesignConfig,
             device: Device = VU9P, *,
             tracer=NULL_TRACER) -> HLSResult:
    """Estimate one design point; never raises for infeasible designs.

    ``tracer`` (a :mod:`repro.obs` tracer) records one ``hls.estimate``
    span per call, attributed with feasibility, cycles, clock, and the
    synthesis minutes the evaluation charges to the DSE virtual clock.
    """
    with tracer.span("hls.estimate") as span:
        result = _estimate_model(kernel, config, device)
        span.set(feasible=result.feasible, cycles=result.cycles,
                 freq_mhz=result.freq_mhz,
                 vclock_minutes=result.synthesis_minutes)
        if result.infeasible_reason:
            span.set(infeasible_reason=result.infeasible_reason)
        tracer.metrics.incr("hls.estimates")
        tracer.metrics.observe("hls.estimate.synthesis_minutes",
                               result.synthesis_minutes)
    return result


def _estimate_model(kernel: CKernel, config: DesignConfig,
                    device: Device = VU9P) -> HLSResult:
    """The analytical model behind :func:`estimate` (untraced)."""
    roots = kernel_loop_tree(kernel)
    effective = config.effective(roots)
    interface = {p.name: p for p in kernel.top_function.params
                 if p.is_pointer}
    bytes_per_task = (kernel.metadata.get("bytes_in_per_task", 0)
                      + kernel.metadata.get("bytes_out_per_task", 0))
    ctx = _Context(device=device, config=effective,
                   bitwidths=dict(config.bitwidths), interface=interface,
                   bytes_per_task=bytes_per_task)

    outcomes = [_schedule(root, ctx, flattened=False) for root in roots]
    compute_cycles = sum(o.latency for o in outcomes)
    resources = Resources(
        lut=int(device.luts * _BASE_LUT_FRACTION),
        ff=int(device.ffs * _BASE_FF_FRACTION),
    )
    for o in outcomes:
        resources.merge(o.resources)

    # Memory transfer: batch bytes over the configured port widths.
    batch = kernel.metadata.get("batch_size", 1024)
    total_bytes = bytes_per_task * batch
    port_widths = [config.bitwidths.get(name, 32)
                   for name in interface] or [32]
    per_port_bytes = sum(w // 8 for w in port_widths)
    effective_bytes_per_cycle = min(per_port_bytes,
                                    device.mem_bytes_per_cycle)
    memory_cycles = math.ceil(total_bytes /
                              max(1, effective_bytes_per_cycle))

    task_labels = [root.label for root in roots if root.is_task_loop] \
        or [roots[0].label if roots else "L0"]
    task_cfg = effective.loop(task_labels[0]) if task_labels else LoopConfig()
    if task_cfg.tile > 1:
        # Double buffering overlaps transfer with compute.
        cycles = max(compute_cycles, memory_cycles) + \
            math.ceil(memory_cycles / max(1, task_cfg.tile))
    else:
        cycles = compute_cycles + memory_cycles
    # "Bandwidth-bound": transfers take at least ~80% of compute time, so
    # widening compute would not help (the AES/PR situation in Table 2).
    memory_bound = memory_cycles * 1.25 >= compute_cycles

    resources.bram = _bram_usage(kernel, ctx, task_cfg.tile)

    # PE product for routing pressure.
    def pe_product(info: LoopInfo) -> int:
        cfg = effective.loop(info.label)
        own = max(1, cfg.parallel)
        return own * max([pe_product(c) for c in info.children] or [1])

    pes = max((pe_product(root) for root in roots), default=1)
    all_kinds = {kind for root in roots
                 for info in root.self_and_descendants()
                 for kind in info.body_ops.counts}
    compute_kinds = [kind for kind in all_kinds
                     if kind not in ("load", "store")]
    is_simple = len(compute_kinds) <= _SIMPLE_OP_KINDS

    utilization = {
        "lut": resources.lut / device.usable("lut"),
        "ff": resources.ff / device.usable("ff"),
        "dsp": resources.dsp / device.usable("dsp"),
        "bram": resources.bram / device.usable("bram"),
    }

    infeasible_reason = ""
    for kind, frac in utilization.items():
        if frac > 1.0:
            infeasible_reason = (
                f"{kind.upper()} over budget: {frac * 100:.0f}% of the "
                f"75% usable envelope")
            break
    if not infeasible_reason and pes > _ROUTING_PE_LIMIT and not is_simple:
        infeasible_reason = (
            f"routing failure: {pes} parallel PEs with a complex "
            f"computational pattern")

    # Frequency: utilization + routing pressure degrade the clock.
    util_max = max(utilization.values())
    freq = device.target_mhz
    if util_max > 0.5:
        freq -= (util_max - 0.5) * 120
    freq -= math.log2(pes + 1) * 3
    if ctx.flatten_carried_dep:
        freq -= 60  # long wavefront wiring (the S-W case in Table 2)
    jitter = (stable_unit("freq", kernel.metadata.get("class_name", ""),
                          tuple(sorted(config.to_point().items()))) - 0.5)
    freq += jitter * 10
    freq = clamp(round(freq / 10) * 10, 100, device.target_mhz)

    # Deterministic landscape ruggedness on cycles.
    rug = 1.0 + 0.08 * (stable_unit(
        "cycles", kernel.metadata.get("class_name", ""),
        tuple(sorted(config.to_point().items()))) - 0.5)
    cycles = int(cycles * rug)

    # Synthesis cost on the virtual clock (minutes to ~an hour, worse for
    # larger designs — Impediment 1).
    synth = 1.5 + 5.5 * min(1.0, util_max) + 0.006 * pes
    synth *= 1.0 + 0.5 * (stable_unit(
        "synth", kernel.metadata.get("class_name", ""),
        tuple(sorted(config.to_point().items()))) - 0.5)
    synth = clamp(synth, 1.5, 10.0)

    top_ii = next((r.ii for r in ctx.reports
                   if r.label in task_labels and r.ii is not None), None)

    return HLSResult(
        feasible=not infeasible_reason,
        cycles=cycles,
        freq_mhz=freq,
        resources=resources,
        utilization=utilization,
        ii_top=top_ii,
        synthesis_minutes=synth,
        compute_cycles=compute_cycles,
        memory_cycles=memory_cycles,
        memory_bound=memory_bound,
        loops=ctx.reports,
        infeasible_reason=infeasible_reason,
    )
