"""Operator latency/resource characterization at the 250 MHz target.

Numbers are representative of Vivado HLS 2017-era operator cores on
UltraScale+ (fadd ~4 stages, fdiv ~14, a naive double-precision ``exp``
core ~13 cycles — the paper calls out exactly that 13-cycle initiation
interval for LR).  The DSE only needs *relative* fidelity: which factor
changes help, by roughly how much, and where resource walls appear.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpCost:
    """Latency (cycles) and per-instance resources of one operator."""

    latency: int
    lut: int
    ff: int
    dsp: int

    def scaled(self, count: int) -> tuple[int, int, int]:
        return self.lut * count, self.ff * count, self.dsp * count


OP_COSTS: dict[str, OpCost] = {
    "iadd": OpCost(latency=1, lut=48, ff=48, dsp=0),
    "imul": OpCost(latency=3, lut=150, ff=200, dsp=3),
    "idiv": OpCost(latency=34, lut=2000, ff=2200, dsp=0),
    "fadd": OpCost(latency=4, lut=500, ff=750, dsp=2),
    "fmul": OpCost(latency=3, lut=250, ff=375, dsp=3),
    "fdiv": OpCost(latency=14, lut=2000, ff=2400, dsp=0),
    "fspec": OpCost(latency=13, lut=3750, ff=4750, dsp=7),
    "load": OpCost(latency=2, lut=20, ff=14, dsp=0),
    "store": OpCost(latency=1, lut=20, ff=14, dsp=0),
}

#: Instruction-level parallelism the scheduler assumes inside a basic
#: block when ops do not depend on each other (HLS schedules a dataflow
#: graph, not a sequence).
DEFAULT_ILP = 2.0

#: Loop control overhead in cycles per (non-pipelined) iteration.
LOOP_OVERHEAD = 2

#: Pipeline fill overhead beyond body latency.
PIPELINE_FILL = 1


def op_cost(category: str) -> OpCost:
    return OP_COSTS[category]
