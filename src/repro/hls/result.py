"""HLS estimation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Resources:
    """Absolute resource usage."""

    lut: int = 0
    ff: int = 0
    dsp: int = 0
    bram: int = 0

    def add(self, lut: int = 0, ff: int = 0, dsp: int = 0,
            bram: int = 0) -> None:
        self.lut += lut
        self.ff += ff
        self.dsp += dsp
        self.bram += bram

    def merge(self, other: "Resources") -> None:
        self.add(other.lut, other.ff, other.dsp, other.bram)

    def as_dict(self) -> dict[str, int]:
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp,
                "bram": self.bram}

    @classmethod
    def from_dict(cls, data: dict) -> "Resources":
        return cls(lut=int(data["lut"]), ff=int(data["ff"]),
                   dsp=int(data["dsp"]), bram=int(data["bram"]))


@dataclass
class LoopReport:
    """Per-loop scheduling outcome (for reports and debugging)."""

    label: str
    trip_count: Optional[int]
    iterations: int          # after unrolling
    ii: Optional[int]        # initiation interval when pipelined
    latency: int             # cycles for the whole loop nest
    pipelined: bool
    parallel: int
    note: str = ""


@dataclass
class HLSResult:
    """Outcome of estimating one design point.

    ``cycles`` is the kernel latency for one task batch at the achieved
    clock; ``normalized_cycles`` rescales to the 250 MHz target so designs
    with degraded clocks compare fairly (this is the paper's
    "normalized execution cycle" axis in Fig. 3).
    """

    feasible: bool
    cycles: int
    freq_mhz: float
    resources: Resources
    utilization: dict[str, float]
    ii_top: Optional[int]
    synthesis_minutes: float
    compute_cycles: int = 0
    memory_cycles: int = 0
    memory_bound: bool = False
    loops: list[LoopReport] = field(default_factory=list)
    infeasible_reason: str = ""

    @property
    def normalized_cycles(self) -> float:
        """Latency rescaled to the 250 MHz target clock."""
        if not self.feasible:
            return float("inf")
        return self.cycles * (250.0 / self.freq_mhz)

    @property
    def seconds_per_batch(self) -> float:
        """Wall time of one batch on the accelerator."""
        if not self.feasible:
            return float("inf")
        return self.cycles / (self.freq_mhz * 1e6)

    def utilization_percent(self, kind: str) -> int:
        return round(self.utilization[kind] * 100)

    def to_dict(self) -> dict:
        """JSON-serializable form (used by the persistent DSE cache)."""
        return {
            "feasible": self.feasible,
            "cycles": self.cycles,
            "freq_mhz": self.freq_mhz,
            "resources": self.resources.as_dict(),
            "utilization": dict(self.utilization),
            "ii_top": self.ii_top,
            "synthesis_minutes": self.synthesis_minutes,
            "compute_cycles": self.compute_cycles,
            "memory_cycles": self.memory_cycles,
            "memory_bound": self.memory_bound,
            "infeasible_reason": self.infeasible_reason,
            "loops": [
                {"label": lp.label, "trip_count": lp.trip_count,
                 "iterations": lp.iterations, "ii": lp.ii,
                 "latency": lp.latency, "pipelined": lp.pipelined,
                 "parallel": lp.parallel, "note": lp.note}
                for lp in self.loops
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HLSResult":
        """Inverse of :meth:`to_dict` (bit-exact for all fields)."""
        return cls(
            feasible=bool(data["feasible"]),
            cycles=int(data["cycles"]),
            freq_mhz=float(data["freq_mhz"]),
            resources=Resources.from_dict(data["resources"]),
            utilization={k: float(v)
                         for k, v in data["utilization"].items()},
            ii_top=data["ii_top"],
            synthesis_minutes=float(data["synthesis_minutes"]),
            compute_cycles=int(data.get("compute_cycles", 0)),
            memory_cycles=int(data.get("memory_cycles", 0)),
            memory_bound=bool(data.get("memory_bound", False)),
            loops=[LoopReport(**lp) for lp in data.get("loops", [])],
            infeasible_reason=data.get("infeasible_reason", ""),
        )
