"""HLS estimation results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Resources:
    """Absolute resource usage."""

    lut: int = 0
    ff: int = 0
    dsp: int = 0
    bram: int = 0

    def add(self, lut: int = 0, ff: int = 0, dsp: int = 0,
            bram: int = 0) -> None:
        self.lut += lut
        self.ff += ff
        self.dsp += dsp
        self.bram += bram

    def merge(self, other: "Resources") -> None:
        self.add(other.lut, other.ff, other.dsp, other.bram)

    def as_dict(self) -> dict[str, int]:
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp,
                "bram": self.bram}


@dataclass
class LoopReport:
    """Per-loop scheduling outcome (for reports and debugging)."""

    label: str
    trip_count: Optional[int]
    iterations: int          # after unrolling
    ii: Optional[int]        # initiation interval when pipelined
    latency: int             # cycles for the whole loop nest
    pipelined: bool
    parallel: int
    note: str = ""


@dataclass
class HLSResult:
    """Outcome of estimating one design point.

    ``cycles`` is the kernel latency for one task batch at the achieved
    clock; ``normalized_cycles`` rescales to the 250 MHz target so designs
    with degraded clocks compare fairly (this is the paper's
    "normalized execution cycle" axis in Fig. 3).
    """

    feasible: bool
    cycles: int
    freq_mhz: float
    resources: Resources
    utilization: dict[str, float]
    ii_top: Optional[int]
    synthesis_minutes: float
    compute_cycles: int = 0
    memory_cycles: int = 0
    memory_bound: bool = False
    loops: list[LoopReport] = field(default_factory=list)
    infeasible_reason: str = ""

    @property
    def normalized_cycles(self) -> float:
        """Latency rescaled to the 250 MHz target clock."""
        if not self.feasible:
            return float("inf")
        return self.cycles * (250.0 / self.freq_mhz)

    @property
    def seconds_per_batch(self) -> float:
        """Wall time of one batch on the accelerator."""
        if not self.feasible:
            return float("inf")
        return self.cycles / (self.freq_mhz * 1e6)

    def utilization_percent(self, kind: str) -> int:
        return round(self.utilization[kind] * 100)
