"""Kernel analysis: loop hierarchy, trip counts, operation mix, dependences.

This is the reproduction of the design-space identification stage
(Section 4.1): the paper analyzes the kernel AST with ROSE plus a polyhedral
framework to find loop trip counts, available bit-widths and dependences.
Here the same facts are derived directly from the HLS-C AST.

The resulting :class:`LoopInfo` tree is consumed by:

* ``repro.dse.space`` — to enumerate the Table 1 factors per loop,
* ``repro.hls.scheduler`` — to compute latency/II bottom-up,
* ``repro.merlin`` — to validate transform legality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import HLSError
from .ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    CFunction,
    CKernel,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Return,
    Stmt,
    Ternary,
    UnOp,
    Var,
    VarDecl,
    While,
    base_array_name,
    walk_exprs,
)

# ---------------------------------------------------------------------------
# Operation classification
# ---------------------------------------------------------------------------

#: Categories the HLS cost model prices individually.
OP_CATEGORIES = (
    "iadd",   # integer add/sub/compare/logic/shift
    "imul",   # integer multiply
    "idiv",   # integer divide / modulo
    "fadd",   # float add/sub/compare
    "fmul",   # float multiply
    "fdiv",   # float divide
    "fspec",  # exp/log/sqrt — deep floating-point pipelines
    "load",   # array read
    "store",  # array write
)

_SPECIAL_CALLS = {"exp", "expf", "log", "logf", "sqrt", "sqrtf"}
_CHEAP_CALLS = {"fabs", "fabsf", "abs", "min", "max", "fmin", "fminf",
                "fmax", "fmaxf"}


def _is_float_expr(expr: Expr, float_vars: set[str]) -> bool:
    """Heuristic type query: is this expression floating-point?"""
    if isinstance(expr, FloatLit):
        return True
    if isinstance(expr, IntLit):
        return False
    if isinstance(expr, Var):
        return expr.name in float_vars
    if isinstance(expr, ArrayRef):
        name = base_array_name(expr)
        return name in float_vars if name else False
    if isinstance(expr, Cast):
        return expr.ctype.is_float
    if isinstance(expr, UnOp):
        return _is_float_expr(expr.operand, float_vars)
    if isinstance(expr, BinOp):
        return (_is_float_expr(expr.lhs, float_vars)
                or _is_float_expr(expr.rhs, float_vars))
    if isinstance(expr, Call):
        return expr.name in _SPECIAL_CALLS or expr.name in (
            "fminf", "fmaxf", "fabsf", "fmin", "fmax", "fabs")
    if isinstance(expr, Ternary):
        return (_is_float_expr(expr.then, float_vars)
                or _is_float_expr(expr.other, float_vars))
    return False


@dataclass
class OpCounts:
    """Operation counts for one execution of a region (child loops excluded)."""

    counts: dict[str, int] = field(default_factory=dict)

    def add(self, category: str, amount: int = 1) -> None:
        self.counts[category] = self.counts.get(category, 0) + amount

    def get(self, category: str) -> int:
        return self.counts.get(category, 0)

    def merge(self, other: "OpCounts", scale: int = 1) -> None:
        for category, count in other.counts.items():
            self.add(category, count * scale)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        return f"OpCounts({inner})"


def _pow2_const_operand(expr: "BinOp") -> bool:
    """True when either operand is a positive power-of-two literal."""
    for side in (expr.lhs, expr.rhs):
        if isinstance(side, IntLit) and side.value > 0 \
                and (side.value & (side.value - 1)) == 0:
            return True
    return False


def _count_expr(expr: Expr, ops: OpCounts, float_vars: set[str]) -> None:
    """Accumulate op counts for one expression tree."""
    if isinstance(expr, ArrayRef):
        ops.add("load")
        _count_expr(expr.index, ops, float_vars)
        inner = expr.array
        while isinstance(inner, ArrayRef):
            _count_expr(inner.index, ops, float_vars)
            inner = inner.array
        return
    if isinstance(expr, BinOp):
        is_float = _is_float_expr(expr, float_vars)
        if expr.op in ("&", "<<", ">>") and (
                isinstance(expr.lhs, IntLit) or isinstance(expr.rhs, IntLit)):
            # Constant masks and shifts are pure wiring in hardware.
            _count_expr(expr.lhs, ops, float_vars)
            _count_expr(expr.rhs, ops, float_vars)
            return
        if expr.op in ("*", "/", "%") and not is_float \
                and _pow2_const_operand(expr):
            # HLS strength-reduces x*2^k, x/2^k, x%2^k to shifts/masks.
            _count_expr(expr.lhs, ops, float_vars)
            _count_expr(expr.rhs, ops, float_vars)
            return
        elif expr.op in ("*",):
            ops.add("fmul" if is_float else "imul")
        elif expr.op in ("/", "%"):
            ops.add("fdiv" if is_float else "idiv")
        elif expr.op in ("&&", "||"):
            ops.add("iadd")
        else:
            ops.add("fadd" if is_float else "iadd")
        _count_expr(expr.lhs, ops, float_vars)
        _count_expr(expr.rhs, ops, float_vars)
        return
    if isinstance(expr, UnOp):
        ops.add("fadd" if _is_float_expr(expr.operand, float_vars) else "iadd")
        _count_expr(expr.operand, ops, float_vars)
        return
    if isinstance(expr, Call):
        if expr.name in _SPECIAL_CALLS:
            ops.add("fspec")
        elif expr.name in _CHEAP_CALLS:
            ops.add("fadd")
        for arg in expr.args:
            _count_expr(arg, ops, float_vars)
        return
    if isinstance(expr, Cast):
        _count_expr(expr.expr, ops, float_vars)
        return
    if isinstance(expr, Ternary):
        ops.add("iadd")  # the select mux
        for child in (expr.cond, expr.then, expr.other):
            _count_expr(child, ops, float_vars)
        return
    # Literals / Var: free.


# ---------------------------------------------------------------------------
# Loop tree
# ---------------------------------------------------------------------------


@dataclass
class LoopInfo:
    """Facts about one loop needed by DSE and HLS estimation."""

    label: str
    node: For | While
    depth: int
    trip_count: Optional[int]
    parent: Optional["LoopInfo"] = None
    children: list["LoopInfo"] = field(default_factory=list)
    #: per-iteration op counts of the loop body, child-loop bodies excluded
    body_ops: OpCounts = field(default_factory=OpCounts)
    #: scalar reduction: an accumulation into a variable live across iters
    #: (associative ``x = x op e`` or a guarded min/max — tree-reducible)
    is_reduction: bool = False
    #: loop-carried dependence through an array (e.g. S-W wavefront)
    carried_array_dep: bool = False
    #: general loop-carried scalar chain (read-before-write across
    #: statements, not tree-reducible — e.g. S-W's running ``left`` value)
    carried_scalar_dep: bool = False
    #: latency (model cycles) of the recurrence, when one exists
    recurrence_ops: OpCounts = field(default_factory=OpCounts)
    arrays_read: set[str] = field(default_factory=set)
    arrays_written: set[str] = field(default_factory=set)
    #: True for the task loop inserted by the map/reduce template
    is_task_loop: bool = False

    @property
    def is_innermost(self) -> bool:
        return not self.children

    @property
    def has_carried_dep(self) -> bool:
        return (self.is_reduction or self.carried_array_dep
                or self.carried_scalar_dep)

    def self_and_descendants(self) -> list["LoopInfo"]:
        result = [self]
        for child in self.children:
            result.extend(child.self_and_descendants())
        return result


def _const_value(expr: Expr) -> Optional[int]:
    """Evaluate a compile-time-constant integer expression, if possible."""
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, UnOp) and expr.op == "-":
        inner = _const_value(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, BinOp):
        lhs, rhs = _const_value(expr.lhs), _const_value(expr.rhs)
        if lhs is None or rhs is None:
            return None
        try:
            return {
                "+": lhs + rhs, "-": lhs - rhs, "*": lhs * rhs,
                "/": lhs // rhs if rhs else None,
                "%": lhs % rhs if rhs else None,
            }.get(expr.op)
        except ZeroDivisionError:
            return None
    return None


def loop_trip_count(loop: For | While) -> Optional[int]:
    """Static trip count of a canonical loop, or None when data-dependent."""
    if isinstance(loop, While):
        return None
    start = _const_value(loop.start)
    bound = _const_value(loop.bound)
    if start is None or bound is None or loop.step <= 0:
        return None
    if bound <= start:
        return 0
    return -(-(bound - start) // loop.step)


def _float_var_names(func: CFunction) -> set[str]:
    """Names of params/locals with floating-point element type."""
    names = {p.name for p in func.params if p.ctype.is_float}
    for stmt in _all_stmts(func.body):
        if isinstance(stmt, VarDecl) and stmt.ctype.is_float:
            names.add(stmt.name)
    return names


def _all_stmts(block: Block) -> list[Stmt]:
    out: list[Stmt] = []
    for stmt in block.stmts:
        out.append(stmt)
        if isinstance(stmt, If):
            out.extend(_all_stmts(stmt.then))
            if stmt.orelse is not None:
                out.extend(_all_stmts(stmt.orelse))
        elif isinstance(stmt, (For, While)):
            out.extend(_all_stmts(stmt.body))
    return out


def _direct_stmts(block: Block) -> list[Stmt]:
    """Statements of a block, descending into ifs but not into loops."""
    out: list[Stmt] = []
    for stmt in block.stmts:
        if isinstance(stmt, (For, While)):
            continue
        out.append(stmt)
        if isinstance(stmt, If):
            out.extend(_direct_stmts(stmt.then))
            if stmt.orelse is not None:
                out.extend(_direct_stmts(stmt.orelse))
    return out


def _reads_var(expr: Expr, name: str) -> bool:
    return any(isinstance(e, Var) and e.name == name
               for e in walk_exprs(expr))


def _scalar_dep_kinds(loop: For | While, declared_inside: set[str],
                      float_vars: set[str]
                      ) -> tuple[bool, OpCounts, bool]:
    """Classify loop-carried scalar dependences in the body.

    Returns ``(is_reduction, recurrence_ops, carried_scalar_dep)``:

    * accumulations ``x = x op e`` and guarded min/max updates are
      *reductions* (associative — Merlin's tree reduction applies),
    * any other variable that is both read and written across iterations
      is a general carried scalar chain (serializes the loop).
    """
    recurrence = OpCounts()
    is_reduction = False
    carried = False

    # Gather per-variable write/read facts over direct statements,
    # remembering guard conditions for writes inside `if`s.
    writes: dict[str, list[tuple[Assign, Optional[Expr]]]] = {}
    reads: dict[str, int] = {}

    def scan(stmts, guard: Optional[Expr]) -> None:
        for stmt in stmts:
            if isinstance(stmt, If):
                for e in walk_exprs(stmt.cond):
                    if isinstance(e, Var):
                        reads[e.name] = reads.get(e.name, 0) + 1
                scan(stmt.then.stmts, stmt.cond)
                if stmt.orelse is not None:
                    scan(stmt.orelse.stmts, stmt.cond)
                continue
            if isinstance(stmt, (For, While)):
                continue
            if isinstance(stmt, Assign) and isinstance(stmt.lhs, Var):
                writes.setdefault(stmt.lhs.name, []).append((stmt, guard))
                for e in walk_exprs(stmt.rhs):
                    if isinstance(e, Var):
                        reads[e.name] = reads.get(e.name, 0) + 1
                continue
            for e in walk_exprs(stmt) if not isinstance(stmt, Block) else []:
                if isinstance(e, Var):
                    reads[e.name] = reads.get(e.name, 0) + 1

    scan(loop.body.stmts, None)

    loop_var = loop.var if isinstance(loop, For) else None
    for name, write_list in writes.items():
        if name in declared_inside or name == loop_var:
            continue
        self_reads = [w for w, _ in write_list if _reads_var(w.rhs, name)]
        if self_reads:
            is_reduction = True
            for stmt in self_reads:
                _count_expr(stmt.rhs, recurrence, float_vars)
            continue
        # Guarded min/max: every write sits under a condition reading the
        # variable, and the variable is read nowhere else.
        guards_read_self = all(
            guard is not None and _reads_var(guard, name)
            for _, guard in write_list)
        guard_reads = sum(
            1 for _, guard in write_list
            if guard is not None and _reads_var(guard, name))
        other_reads = reads.get(name, 0) - guard_reads
        if guards_read_self and other_reads <= 0:
            is_reduction = True
            recurrence.add("iadd")  # the compare/select chain
            continue
        if reads.get(name, 0) > 0:
            carried = True
    return is_reduction, recurrence, carried


def _index_offsets(index: Expr, var: str) -> Optional[int]:
    """If ``index`` is ``var + c`` / ``var - c`` / ``var``, return c."""
    if isinstance(index, Var) and index.name == var:
        return 0
    if isinstance(index, BinOp) and index.op in ("+", "-"):
        if isinstance(index.lhs, Var) and index.lhs.name == var:
            c = _const_value(index.rhs)
            if c is not None:
                return c if index.op == "+" else -c
        if (index.op == "+" and isinstance(index.rhs, Var)
                and index.rhs.name == var):
            c = _const_value(index.lhs)
            if c is not None:
                return c
    return None


def _detect_array_carried_dep(loop: For | While) -> bool:
    """Conservatively detect a loop-carried dependence through an array.

    A write ``a[f(i)]`` with a read ``a[g(i)]`` in the same body carries a
    dependence across iterations unless both indices are the same affine
    expression of the loop variable.  This is a syntactic approximation of
    what the paper obtains from its polyhedral analysis; it is exact for the
    access patterns our compiler emits (affine ``i + c`` indices).
    """
    var = loop.var if isinstance(loop, For) else None
    writes: dict[str, list[Expr]] = {}
    reads: dict[str, list[Expr]] = {}
    for stmt in _direct_stmts(loop.body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.lhs, ArrayRef):
                name = base_array_name(stmt.lhs)
                if name:
                    writes.setdefault(name, []).append(stmt.lhs.index)
            for e in walk_exprs(stmt.rhs):
                if isinstance(e, ArrayRef):
                    name = base_array_name(e)
                    if name:
                        reads.setdefault(name, []).append(e.index)
            if isinstance(stmt.lhs, ArrayRef):
                for e in walk_exprs(stmt.lhs.index):
                    if isinstance(e, ArrayRef):
                        name = base_array_name(e)
                        if name:
                            reads.setdefault(name, []).append(e.index)
    for name, write_indices in writes.items():
        if name not in reads:
            continue
        for w_idx in write_indices:
            for r_idx in reads[name]:
                if var is None:
                    return True  # unknown induction: assume carried
                w_off = _index_offsets(w_idx, var)
                r_off = _index_offsets(r_idx, var)
                if w_off is None or r_off is None:
                    return True  # non-affine access: be conservative
                if w_off != r_off:
                    return True
    return False


def build_loop_tree(func: CFunction) -> list[LoopInfo]:
    """Build the loop hierarchy of ``func``; returns root loops in order.

    Loops must already be labelled (see :func:`assign_loop_labels`).
    """
    float_vars = _float_var_names(func)
    roots: list[LoopInfo] = []

    def visit(block: Block, parent: Optional[LoopInfo], depth: int) -> None:
        for stmt in block.stmts:
            if isinstance(stmt, (For, While)):
                if stmt.label is None:
                    raise HLSError(
                        "loop has no label; run assign_loop_labels first")
                info = LoopInfo(
                    label=stmt.label,
                    node=stmt,
                    depth=depth,
                    trip_count=loop_trip_count(stmt),
                    parent=parent,
                )
                declared = {
                    s.name for s in _all_stmts(stmt.body)
                    if isinstance(s, VarDecl)
                }
                (info.is_reduction, info.recurrence_ops,
                 info.carried_scalar_dep) = _scalar_dep_kinds(
                    stmt, declared, float_vars)
                info.carried_array_dep = _detect_array_carried_dep(stmt)
                for body_stmt in _direct_stmts(stmt.body):
                    _count_stmt(body_stmt, info.body_ops, float_vars)
                _collect_array_use(stmt, info)
                # Non-innermost loops: an array both read and written
                # anywhere in the nest carries a cross-iteration
                # dependence (e.g. S-W's row buffers, AES's state across
                # rounds) unless it was locally proven independent above.
                has_inner_loops = any(
                    isinstance(s, (For, While))
                    for s in _all_stmts(stmt.body))
                if has_inner_loops and not info.carried_array_dep:
                    rw = info.arrays_read & info.arrays_written
                    if rw:
                        info.carried_array_dep = True
                if parent is None:
                    roots.append(info)
                else:
                    parent.children.append(info)
                visit(stmt.body, info, depth + 1)
            elif isinstance(stmt, If):
                visit(stmt.then, parent, depth)
                if stmt.orelse is not None:
                    visit(stmt.orelse, parent, depth)
    visit(func.body, None, 0)
    return roots


def _count_stmt(stmt: Stmt, ops: OpCounts, float_vars: set[str]) -> None:
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            _count_expr(stmt.init, ops, float_vars)
    elif isinstance(stmt, Assign):
        if isinstance(stmt.lhs, ArrayRef):
            ops.add("store")
            _count_expr(stmt.lhs.index, ops, float_vars)
        _count_expr(stmt.rhs, ops, float_vars)
    elif isinstance(stmt, ExprStmt):
        _count_expr(stmt.expr, ops, float_vars)
    elif isinstance(stmt, If):
        _count_expr(stmt.cond, ops, float_vars)
    elif isinstance(stmt, Return):
        if stmt.value is not None:
            _count_expr(stmt.value, ops, float_vars)


def _collect_array_use(loop: For | While, info: LoopInfo) -> None:
    for stmt in _all_stmts(loop.body):
        if isinstance(stmt, Assign):
            if isinstance(stmt.lhs, ArrayRef):
                name = base_array_name(stmt.lhs)
                if name:
                    info.arrays_written.add(name)
            for e in walk_exprs(stmt.rhs):
                if isinstance(e, ArrayRef):
                    name = base_array_name(e)
                    if name:
                        info.arrays_read.add(name)


def assign_loop_labels(func: CFunction, prefix: str = "L") -> list[str]:
    """Assign hierarchical labels (``L0``, ``L0_0``, ``L1``...) to all loops.

    Returns the labels in preorder.  Labels are stable across clones of the
    same function, which is what lets a design-point configuration refer to
    loops by name.
    """
    labels: list[str] = []

    def visit(block: Block, path: list[int]) -> None:
        index = 0
        for stmt in block.stmts:
            if isinstance(stmt, (For, While)):
                here = path + [index]
                stmt.label = prefix + "_".join(str(i) for i in here)
                labels.append(stmt.label)
                visit(stmt.body, here)
                index += 1
            elif isinstance(stmt, If):
                visit(stmt.then, path)
                if stmt.orelse is not None:
                    visit(stmt.orelse, path)
    visit(func.body, [])
    return labels


def label_kernel(kernel: CKernel) -> list[str]:
    """Label loops in every function; the top function gets bare ``L`` labels.

    Helper functions inside the kernel get labels prefixed with their
    function name so the flat design space never collides.
    """
    labels: list[str] = []
    for func in kernel.functions:
        prefix = "L" if func.name == kernel.top else f"{func.name}_L"
        labels.extend(assign_loop_labels(func, prefix))
    return labels


def find_loop(func: CFunction, label: str) -> For | While:
    """Locate a labelled loop inside ``func``."""
    for stmt in _all_stmts(func.body):
        if isinstance(stmt, (For, While)) and stmt.label == label:
            return stmt
    raise KeyError(f"no loop labelled {label!r} in {func.name}")


def direct_calls(block: Block, names: set[str]) -> list[Call]:
    """Calls to ``names`` in a block's direct statements (child loops
    excluded, ``if`` branches included)."""
    calls: list[Call] = []
    for stmt in _direct_stmts(block):
        exprs: list[Expr] = []
        if isinstance(stmt, VarDecl) and stmt.init is not None:
            exprs.append(stmt.init)
        elif isinstance(stmt, Assign):
            exprs.extend([stmt.lhs, stmt.rhs])
        elif isinstance(stmt, ExprStmt):
            exprs.append(stmt.expr)
        elif isinstance(stmt, If):
            exprs.append(stmt.cond)
        elif isinstance(stmt, Return) and stmt.value is not None:
            exprs.append(stmt.value)
        for root in exprs:
            for e in walk_exprs(root):
                if isinstance(e, Call) and e.name in names:
                    calls.append(e)
    return calls


def function_toplevel_ops(func: CFunction) -> OpCounts:
    """Op counts of a function's straight-line (non-loop) statements."""
    float_vars = _float_var_names(func)
    ops = OpCounts()
    for stmt in _direct_stmts(func.body):
        _count_stmt(stmt, ops, float_vars)
    return ops


def kernel_loop_tree(kernel: CKernel) -> list[LoopInfo]:
    """Loop tree of the top function with helper-function loops grafted in.

    Calls to kernel-local helper functions are treated as inlined (the
    Merlin compiler inlines before transforming): a helper's loops become
    children of the loop containing the call site, and the helper's
    straight-line ops are merged into that loop's per-iteration op counts.
    """
    top = kernel.top_function
    helpers = {f.name: f for f in kernel.functions if f.name != kernel.top}
    roots = build_loop_tree(top)
    if kernel.metadata.get("batch_size"):
        for root in roots:
            root.is_task_loop = True
            if root.trip_count is None:
                root.trip_count = kernel.metadata["batch_size"]

    def expand_all(info: LoopInfo, seen: tuple[str, ...]) -> None:
        original_children = list(info.children)
        for call in direct_calls(info.node.body, set(helpers)):
            if call.name in seen:
                raise HLSError(
                    f"recursive helper call to {call.name} cannot be "
                    f"inlined for the FPGA")
            callee = helpers[call.name]
            info.body_ops.merge(function_toplevel_ops(callee))
            for child in build_loop_tree(callee):
                child.parent = info
                _bump_depth(child, info.depth + 1)
                info.children.append(child)
                expand_all(child, seen + (call.name,))
        for child in original_children:
            expand_all(child, seen)

    for root in roots:
        expand_all(root, ())
    return roots


def _bump_depth(info: LoopInfo, depth: int) -> None:
    info.depth = depth
    for child in info.children:
        _bump_depth(child, depth + 1)


def flatten_loop_tree(roots: list[LoopInfo]) -> list[LoopInfo]:
    """Preorder flattening of a loop tree."""
    out: list[LoopInfo] = []
    for root in roots:
        out.extend(root.self_and_descendants())
    return out


def local_buffers(func: CFunction) -> list[VarDecl]:
    """All constant-size array declarations (on-chip BRAM candidates)."""
    return [
        s for s in _all_stmts(func.body)
        if isinstance(s, VarDecl) and s.is_array
    ]
