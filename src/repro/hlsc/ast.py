"""Abstract syntax tree for the generated HLS C kernels.

The bytecode-to-C compiler lifts JVM bytecode into this AST; the Merlin-style
transformation library rewrites it; the HLS estimator schedules it; and the
FPGA device simulator interprets it for functional execution.  The AST
deliberately models the *subset of C that HLS tools accept for kernels*:

* no pointers except top-level array parameters,
* no dynamic allocation (``new`` with constant size becomes a static array),
* structured control flow only (``for``/``while``/``if``),
* calls only to other kernel-local functions or math intrinsics.

Nodes are plain mutable dataclasses.  Transform passes either mutate a
deep-copied kernel (see :meth:`CFunction.clone`) or rebuild subtrees.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------

#: C base types accepted in kernels, mapped to their width in bits.
C_TYPE_WIDTHS = {
    "void": 0,
    "char": 8,
    "unsigned char": 8,
    "short": 16,
    "int": 32,
    "unsigned int": 32,
    "long": 64,
    "float": 32,
    "double": 64,
}

FLOAT_TYPES = frozenset({"float", "double"})
INT_TYPES = frozenset(
    {"char", "unsigned char", "short", "int", "unsigned int", "long"}
)


@dataclass(frozen=True)
class CType:
    """A scalar C type.  Arrays are represented by dims on decls/params."""

    base: str

    def __post_init__(self) -> None:
        if self.base not in C_TYPE_WIDTHS:
            raise ValueError(f"unknown C type: {self.base!r}")

    @property
    def width_bits(self) -> int:
        """Storage width of one element in bits."""
        return C_TYPE_WIDTHS[self.base]

    @property
    def is_float(self) -> bool:
        return self.base in FLOAT_TYPES

    @property
    def is_integer(self) -> bool:
        return self.base in INT_TYPES

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.base


VOID = CType("void")
CHAR = CType("char")
UCHAR = CType("unsigned char")
SHORT = CType("short")
INT = CType("int")
LONG = CType("long")
FLOAT = CType("float")
DOUBLE = CType("double")


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    def children(self) -> list["Expr"]:
        """Direct sub-expressions, used by generic walkers."""
        return []


@dataclass
class IntLit(Expr):
    """Integer literal."""

    value: int
    ctype: CType = field(default=INT)


@dataclass
class FloatLit(Expr):
    """Floating-point literal."""

    value: float
    ctype: CType = field(default=FLOAT)


@dataclass
class Var(Expr):
    """Reference to a local variable or parameter by name."""

    name: str


@dataclass
class ArrayRef(Expr):
    """``array[index]`` — possibly nested for multi-dimensional arrays."""

    array: Expr
    index: Expr

    def children(self) -> list[Expr]:
        return [self.array, self.index]


#: Binary operators permitted in kernels, in C spelling.
BINARY_OPS = frozenset(
    {
        "+", "-", "*", "/", "%",
        "<<", ">>", "&", "|", "^",
        "<", "<=", ">", ">=", "==", "!=",
        "&&", "||",
    }
)

COMPARISON_OPS = frozenset({"<", "<=", ">", ">=", "==", "!="})


@dataclass
class BinOp(Expr):
    """Binary operation ``lhs op rhs``."""

    op: str
    lhs: Expr
    rhs: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def children(self) -> list[Expr]:
        return [self.lhs, self.rhs]


@dataclass
class UnOp(Expr):
    """Unary operation (``-``, ``!``, ``~``)."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("-", "!", "~"):
            raise ValueError(f"unknown unary operator {self.op!r}")

    def children(self) -> list[Expr]:
        return [self.operand]


#: Math intrinsics the HLS backend knows how to schedule.  These are the
#: whitelisted "library calls" of Section 3.3 — everything else is rejected.
MATH_INTRINSICS = frozenset(
    {"expf", "logf", "sqrtf", "fabsf", "fminf", "fmaxf", "exp", "log", "sqrt",
     "fabs", "fmin", "fmax", "abs", "min", "max"}
)


@dataclass
class Call(Expr):
    """Call to a kernel-local function or a math intrinsic."""

    name: str
    args: list[Expr] = field(default_factory=list)

    def children(self) -> list[Expr]:
        return list(self.args)


@dataclass
class Cast(Expr):
    """C cast ``(type) expr``."""

    ctype: CType
    expr: Expr

    def children(self) -> list[Expr]:
        return [self.expr]


@dataclass
class Ternary(Expr):
    """Conditional expression ``cond ? then : other``."""

    cond: Expr
    then: Expr
    other: Expr

    def children(self) -> list[Expr]:
        return [self.cond, self.then, self.other]


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""


@dataclass
class Block(Stmt):
    """A brace-delimited statement sequence."""

    stmts: list[Stmt] = field(default_factory=list)

    def __iter__(self) -> Iterator[Stmt]:
        return iter(self.stmts)


@dataclass
class VarDecl(Stmt):
    """Declaration of a scalar or constant-size array local.

    ``dims`` of ``()`` declares a scalar; otherwise each entry is a
    compile-time constant extent (S2FA compiles JVM ``new`` with constant
    size to exactly this — no dynamic allocation on the FPGA).
    ``init_values`` carries a flat constant initializer for lookup tables
    (e.g. the AES S-box) baked in from Scala class fields.
    """

    name: str
    ctype: CType
    dims: tuple[int, ...] = ()
    init: Optional[Expr] = None
    init_values: Optional[tuple] = None
    qualifiers: tuple[str, ...] = ()

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def element_count(self) -> int:
        count = 1
        for d in self.dims:
            count *= d
        return count


@dataclass
class Assign(Stmt):
    """Assignment ``lhs = rhs`` (lhs is a Var or ArrayRef)."""

    lhs: Expr
    rhs: Expr


@dataclass
class ExprStmt(Stmt):
    """Expression evaluated for side effects (void calls)."""

    expr: Expr


@dataclass
class If(Stmt):
    """``if (cond) { then } else { orelse }``."""

    cond: Expr
    then: Block
    orelse: Optional[Block] = None


@dataclass
class Pragma(Stmt):
    """A raw pragma line attached inside a block (Merlin/HLS directives)."""

    text: str


@dataclass
class For(Stmt):
    """Canonical counted loop ``for (var = start; var < bound; var += step)``.

    The bytecode-to-C compiler produces canonical loops whenever the source
    loop is an induction pattern, which is what the design-space analysis
    needs for trip counts.  ``label`` names the loop in the design space
    (assigned by :func:`repro.hlsc.analysis.assign_loop_labels`); ``pragmas``
    holds Merlin directives printed immediately before the loop.
    """

    var: str
    start: Expr = field(default_factory=lambda: IntLit(0))
    bound: Expr = field(default_factory=lambda: IntLit(0))
    step: int = 1
    body: Block = field(default_factory=Block)
    label: Optional[str] = None
    pragmas: list[Pragma] = field(default_factory=list)


@dataclass
class While(Stmt):
    """General loop with unknown trip count (fallback for non-canonical CFG)."""

    cond: Expr
    body: Block = field(default_factory=Block)
    label: Optional[str] = None
    pragmas: list[Pragma] = field(default_factory=list)


@dataclass
class Return(Stmt):
    """Function return, optionally with a value."""

    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    """Loop break (used by early-exit search loops)."""


@dataclass
class Continue(Stmt):
    """Loop continue."""


# ---------------------------------------------------------------------------
# Functions and kernels
# ---------------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter.

    ``is_pointer`` marks array parameters (kernel interface buffers).
    ``elem_count`` records the per-task element count for interface buffers,
    which the Blaze serializer and the HLS bandwidth model both need.
    """

    name: str
    ctype: CType
    is_pointer: bool = False
    elem_count: Optional[int] = None
    direction: str = "in"  # "in" | "out" | "inout"


@dataclass
class CFunction:
    """A C function definition."""

    name: str
    return_type: CType
    params: list[Param] = field(default_factory=list)
    body: Block = field(default_factory=Block)

    def clone(self) -> "CFunction":
        """Deep copy, so transforms never alias the original tree."""
        return copy.deepcopy(self)

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"no parameter named {name!r} in {self.name}")


@dataclass
class CKernel:
    """A complete generated kernel: a top function plus helpers.

    ``top`` is the name of the wrapper inserted by the template engine
    (the ``kernel(int N, ...)`` function of Code 3 in the paper).
    ``metadata`` carries frontend facts the backend needs: the RDD
    transformation pattern ("map"/"reduce"), per-buffer element layouts,
    and the originating Scala class/method names.
    """

    functions: list[CFunction] = field(default_factory=list)
    top: str = "kernel"
    metadata: dict = field(default_factory=dict)

    def clone(self) -> "CKernel":
        return copy.deepcopy(self)

    def function(self, name: str) -> CFunction:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function named {name!r} in kernel")

    @property
    def top_function(self) -> CFunction:
        return self.function(self.top)


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------


def walk_exprs(node: Union[Expr, Stmt, Block, CFunction]) -> Iterator[Expr]:
    """Yield every expression in ``node`` in preorder."""
    if isinstance(node, CFunction):
        yield from walk_exprs(node.body)
        return
    if isinstance(node, Expr):
        yield node
        for child in node.children():
            yield from walk_exprs(child)
        return
    if isinstance(node, Block):
        for stmt in node.stmts:
            yield from walk_exprs(stmt)
        return
    # Statements
    if isinstance(node, VarDecl):
        if node.init is not None:
            yield from walk_exprs(node.init)
    elif isinstance(node, Assign):
        yield from walk_exprs(node.lhs)
        yield from walk_exprs(node.rhs)
    elif isinstance(node, ExprStmt):
        yield from walk_exprs(node.expr)
    elif isinstance(node, If):
        yield from walk_exprs(node.cond)
        yield from walk_exprs(node.then)
        if node.orelse is not None:
            yield from walk_exprs(node.orelse)
    elif isinstance(node, For):
        yield from walk_exprs(node.start)
        yield from walk_exprs(node.bound)
        yield from walk_exprs(node.body)
    elif isinstance(node, While):
        yield from walk_exprs(node.cond)
        yield from walk_exprs(node.body)
    elif isinstance(node, Return):
        if node.value is not None:
            yield from walk_exprs(node.value)
    # Pragma / Break / Continue have no expressions.


def walk_stmts(node: Union[Stmt, Block, CFunction]) -> Iterator[Stmt]:
    """Yield every statement in ``node`` in preorder (including blocks)."""
    if isinstance(node, CFunction):
        yield from walk_stmts(node.body)
        return
    if isinstance(node, Block):
        for stmt in node.stmts:
            yield stmt
            yield from walk_stmts(stmt)
        return
    if isinstance(node, If):
        yield from walk_stmts(node.then)
        if node.orelse is not None:
            yield from walk_stmts(node.orelse)
    elif isinstance(node, (For, While)):
        yield from walk_stmts(node.body)


def loops_in(node: Union[Stmt, Block, CFunction]) -> list[Union[For, While]]:
    """All loops under ``node`` in preorder."""
    return [s for s in walk_stmts(node) if isinstance(s, (For, While))]


def base_array_name(expr: Expr) -> Optional[str]:
    """For an (arbitrarily nested) ``ArrayRef``, return the base array name."""
    while isinstance(expr, ArrayRef):
        expr = expr.array
    if isinstance(expr, Var):
        return expr.name
    return None
