"""Convenience constructors for building HLS-C ASTs by hand.

Used by the template engine, the hand-written "manual" reference designs,
and throughout the test suite.  Each helper accepts plain Python values
where that is unambiguous (ints become ``IntLit``, floats ``FloatLit``,
strings ``Var``).
"""

from __future__ import annotations

from typing import Sequence, Union

from .ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    CFunction,
    CType,
    Expr,
    FloatLit,
    For,
    If,
    IntLit,
    Param,
    Return,
    Stmt,
    Var,
    VarDecl,
)

ExprLike = Union[Expr, int, float, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce a Python value into an expression node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return IntLit(int(value))
    if isinstance(value, int):
        return IntLit(value)
    if isinstance(value, float):
        return FloatLit(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot coerce {value!r} to an expression")


def var(name: str) -> Var:
    return Var(name)


def lit(value: Union[int, float]) -> Expr:
    return as_expr(value)


def idx(array: ExprLike, *indices: ExprLike) -> Expr:
    """Nested array reference ``array[i][j]...``."""
    expr = as_expr(array)
    for index in indices:
        expr = ArrayRef(expr, as_expr(index))
    return expr


def binop(op: str, lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return BinOp(op, as_expr(lhs), as_expr(rhs))


def add(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("+", lhs, rhs)


def sub(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("-", lhs, rhs)


def mul(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("*", lhs, rhs)


def div(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("/", lhs, rhs)


def lt(lhs: ExprLike, rhs: ExprLike) -> BinOp:
    return binop("<", lhs, rhs)


def call(name: str, *args: ExprLike) -> Call:
    return Call(name, [as_expr(a) for a in args])


def assign(lhs: ExprLike, rhs: ExprLike) -> Assign:
    target = as_expr(lhs)
    if not isinstance(target, (Var, ArrayRef)):
        raise TypeError(f"assignment target must be Var/ArrayRef, got {target!r}")
    return Assign(target, as_expr(rhs))


def decl(name: str, ctype: CType, dims: Sequence[int] = (),
         init: ExprLike | None = None) -> VarDecl:
    return VarDecl(
        name=name,
        ctype=ctype,
        dims=tuple(dims),
        init=None if init is None else as_expr(init),
    )


def block(*stmts: Stmt) -> Block:
    return Block(list(stmts))


def for_loop(loop_var: str, bound: ExprLike, *body: Stmt,
             start: ExprLike = 0, step: int = 1) -> For:
    return For(
        var=loop_var,
        start=as_expr(start),
        bound=as_expr(bound),
        step=step,
        body=Block(list(body)),
    )


def if_stmt(cond: ExprLike, then: Sequence[Stmt],
            orelse: Sequence[Stmt] | None = None) -> If:
    return If(
        cond=as_expr(cond),
        then=Block(list(then)),
        orelse=None if orelse is None else Block(list(orelse)),
    )


def ret(value: ExprLike | None = None) -> Return:
    return Return(None if value is None else as_expr(value))


def param(name: str, ctype: CType, *, pointer: bool = False,
          elem_count: int | None = None, direction: str = "in") -> Param:
    return Param(name=name, ctype=ctype, is_pointer=pointer,
                 elem_count=elem_count, direction=direction)


def function(name: str, return_type: CType, params: Sequence[Param],
             *body: Stmt) -> CFunction:
    return CFunction(
        name=name,
        return_type=return_type,
        params=list(params),
        body=Block(list(body)),
    )
