"""A small semantic linter for generated C kernels.

Catches code-generation bugs structurally: every variable reference must
resolve to a parameter, a declaration in scope, or a loop variable; every
called function must be kernel-local or a known math intrinsic.  The test
suite lints every generated kernel, so a lifter regression that produces
dangling names fails loudly instead of surfacing as a runtime KeyError
deep inside the executor.
"""

from __future__ import annotations

from .ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Call,
    Cast,
    CFunction,
    CKernel,
    Expr,
    ExprStmt,
    For,
    If,
    MATH_INTRINSICS,
    Pragma,
    Return,
    Stmt,
    Ternary,
    UnOp,
    Var,
    VarDecl,
    While,
)


def lint_kernel(kernel: CKernel) -> list[str]:
    """Return a list of problems (empty = clean)."""
    problems: list[str] = []
    local_functions = {f.name for f in kernel.functions}
    for func in kernel.functions:
        problems.extend(_lint_function(func, local_functions))
    return problems


def _lint_function(func: CFunction, local_functions: set[str]) -> list[str]:
    problems: list[str] = []
    scope = [set(p.name for p in func.params)]

    def declared(name: str) -> bool:
        return any(name in frame for frame in scope)

    def check_expr(expr: Expr) -> None:
        if isinstance(expr, Var):
            if not declared(expr.name):
                problems.append(
                    f"{func.name}: reference to undeclared "
                    f"variable {expr.name!r}")
            return
        if isinstance(expr, ArrayRef):
            check_expr(expr.array)
            check_expr(expr.index)
            return
        if isinstance(expr, BinOp):
            check_expr(expr.lhs)
            check_expr(expr.rhs)
            return
        if isinstance(expr, UnOp):
            check_expr(expr.operand)
            return
        if isinstance(expr, Cast):
            check_expr(expr.expr)
            return
        if isinstance(expr, Ternary):
            check_expr(expr.cond)
            check_expr(expr.then)
            check_expr(expr.other)
            return
        if isinstance(expr, Call):
            if expr.name not in local_functions \
                    and expr.name not in MATH_INTRINSICS:
                problems.append(
                    f"{func.name}: call to unknown function "
                    f"{expr.name!r}")
            for arg in expr.args:
                check_expr(arg)
            return

    def check_block(block: Block) -> None:
        scope.append(set())
        for stmt in block.stmts:
            check_stmt(stmt)
        scope.pop()

    def check_stmt(stmt: Stmt) -> None:
        if isinstance(stmt, VarDecl):
            if stmt.init is not None:
                check_expr(stmt.init)
            scope[-1].add(stmt.name)
            return
        if isinstance(stmt, Assign):
            check_expr(stmt.lhs)
            check_expr(stmt.rhs)
            return
        if isinstance(stmt, ExprStmt):
            check_expr(stmt.expr)
            return
        if isinstance(stmt, If):
            check_expr(stmt.cond)
            check_block(stmt.then)
            if stmt.orelse is not None:
                check_block(stmt.orelse)
            return
        if isinstance(stmt, For):
            check_expr(stmt.start)
            check_expr(stmt.bound)
            scope.append({stmt.var})
            check_block(stmt.body)
            scope.pop()
            return
        if isinstance(stmt, While):
            check_expr(stmt.cond)
            check_block(stmt.body)
            return
        if isinstance(stmt, Return):
            if stmt.value is not None:
                check_expr(stmt.value)
            return
        if isinstance(stmt, Pragma):
            return

    check_block(func.body)
    return problems
