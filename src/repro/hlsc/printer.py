"""Pretty-printer: HLS-C AST -> C source text.

The output is valid C99 (modulo the Merlin ``#pragma ACCEL`` directives) and
is what S2FA would hand to the Merlin compiler / Xilinx SDx.  The printer is
also used heavily in tests: round-trip expectations are easier to state on
source text than on trees.
"""

from __future__ import annotations

from .ast import (
    ArrayRef,
    Assign,
    BinOp,
    Block,
    Break,
    Call,
    Cast,
    CFunction,
    CKernel,
    Continue,
    Expr,
    ExprStmt,
    FloatLit,
    For,
    If,
    IntLit,
    Param,
    Pragma,
    Return,
    Stmt,
    Ternary,
    UnOp,
    Var,
    VarDecl,
    While,
)

_INDENT = "  "

#: C operator precedence, higher binds tighter.  Used to parenthesize
#: minimally so generated code stays readable.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}
_UNARY_PRECEDENCE = 11
_PRIMARY_PRECEDENCE = 12


def expr_to_c(expr: Expr, parent_prec: int = 0) -> str:
    """Render an expression, adding parentheses only where required."""
    if isinstance(expr, IntLit):
        suffix = "L" if expr.ctype.base == "long" else ""
        return f"{expr.value}{suffix}"
    if isinstance(expr, FloatLit):
        text = repr(float(expr.value))
        if expr.ctype.base == "float":
            return f"{text}f"
        return text
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, ArrayRef):
        return f"{expr_to_c(expr.array, _PRIMARY_PRECEDENCE)}[{expr_to_c(expr.index)}]"
    if isinstance(expr, Call):
        args = ", ".join(expr_to_c(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Cast):
        inner = expr_to_c(expr.expr, _UNARY_PRECEDENCE)
        text = f"({expr.ctype}) {inner}"
        return f"({text})" if parent_prec >= _UNARY_PRECEDENCE else text
    if isinstance(expr, UnOp):
        inner = expr_to_c(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec > _UNARY_PRECEDENCE else text
    if isinstance(expr, BinOp):
        prec = _PRECEDENCE[expr.op]
        lhs = expr_to_c(expr.lhs, prec - 1)
        rhs = expr_to_c(expr.rhs, prec)
        text = f"{lhs} {expr.op} {rhs}"
        return f"({text})" if prec <= parent_prec else text
    if isinstance(expr, Ternary):
        text = (
            f"{expr_to_c(expr.cond, 3)} ? {expr_to_c(expr.then)}"
            f" : {expr_to_c(expr.other)}"
        )
        return f"({text})" if parent_prec > 0 else text
    raise TypeError(f"cannot print expression {expr!r}")


def _decl_to_c(decl: VarDecl) -> str:
    quals = "".join(f"{q} " for q in decl.qualifiers)
    dims = "".join(f"[{d}]" for d in decl.dims)
    text = f"{quals}{decl.ctype} {decl.name}{dims}"
    if decl.init_values is not None:
        values = ", ".join(str(v) for v in decl.init_values)
        return f"{text} = {{{values}}};"
    if decl.init is not None:
        return f"{text} = {expr_to_c(decl.init)};"
    return f"{text};"


def _param_to_c(param: Param) -> str:
    star = " *" if param.is_pointer else " "
    return f"{param.ctype}{star}{param.name}"


def stmt_to_c(stmt: Stmt, depth: int = 0) -> str:
    """Render a statement (possibly multi-line) at the given indent depth."""
    pad = _INDENT * depth
    if isinstance(stmt, Block):
        return block_to_c(stmt, depth)
    if isinstance(stmt, VarDecl):
        return f"{pad}{_decl_to_c(stmt)}"
    if isinstance(stmt, Assign):
        return f"{pad}{expr_to_c(stmt.lhs)} = {expr_to_c(stmt.rhs)};"
    if isinstance(stmt, ExprStmt):
        return f"{pad}{expr_to_c(stmt.expr)};"
    if isinstance(stmt, Pragma):
        return f"{pad}#pragma {stmt.text}"
    if isinstance(stmt, Return):
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {expr_to_c(stmt.value)};"
    if isinstance(stmt, Break):
        return f"{pad}break;"
    if isinstance(stmt, Continue):
        return f"{pad}continue;"
    if isinstance(stmt, If):
        lines = [f"{pad}if ({expr_to_c(stmt.cond)}) {{"]
        lines.append(block_to_c(stmt.then, depth + 1))
        if stmt.orelse is not None and stmt.orelse.stmts:
            lines.append(f"{pad}}} else {{")
            lines.append(block_to_c(stmt.orelse, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(line for line in lines if line)
    if isinstance(stmt, For):
        lines = [f"{pad}#pragma {p.text}" for p in stmt.pragmas]
        label = f" /* {stmt.label} */" if stmt.label else ""
        step = f"{stmt.var}++" if stmt.step == 1 else f"{stmt.var} += {stmt.step}"
        header = (
            f"{pad}for (int {stmt.var} = {expr_to_c(stmt.start)}; "
            f"{stmt.var} < {expr_to_c(stmt.bound)}; {step}) {{{label}"
        )
        lines.append(header)
        lines.append(block_to_c(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(line for line in lines if line)
    if isinstance(stmt, While):
        lines = [f"{pad}#pragma {p.text}" for p in stmt.pragmas]
        label = f" /* {stmt.label} */" if stmt.label else ""
        lines.append(f"{pad}while ({expr_to_c(stmt.cond)}) {{{label}")
        lines.append(block_to_c(stmt.body, depth + 1))
        lines.append(f"{pad}}}")
        return "\n".join(line for line in lines if line)
    raise TypeError(f"cannot print statement {stmt!r}")


def block_to_c(block: Block, depth: int = 0) -> str:
    """Render every statement in a block."""
    return "\n".join(stmt_to_c(s, depth) for s in block.stmts)


def function_to_c(func: CFunction) -> str:
    """Render a full function definition."""
    params = ", ".join(_param_to_c(p) for p in func.params)
    header = f"{func.return_type} {func.name}({params}) {{"
    body = block_to_c(func.body, 1)
    return f"{header}\n{body}\n}}" if body else f"{header}\n}}"


def kernel_to_c(kernel: CKernel) -> str:
    """Render the complete kernel translation unit."""
    parts = ["#include <math.h>", ""]
    for func in kernel.functions:
        parts.append(function_to_c(func))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
