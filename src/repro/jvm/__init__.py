"""JVM substrate: classfile model, assembler, binary codec, interpreter."""

from .assembler import CodeBuilder, assemble, stack_delta  # noqa: F401
from .classfile import (  # noqa: F401
    ACC_FINAL,
    ACC_PUBLIC,
    ACC_STATIC,
    ClassRegistry,
    Instr,
    JClass,
    JField,
    JMethod,
)
from .codec import read_class, write_class  # noqa: F401
from .cost import CostModel, group_of  # noqa: F401
from .descriptors import (  # noqa: F401
    MethodDescriptor,
    parse_method_descriptor,
    pretty_type,
    slot_width,
)
from .disassembler import disassemble_class, disassemble_method  # noqa: F401
from .interpreter import Interpreter, JArray, JObject  # noqa: F401
from .tac import (  # noqa: F401
    TACInterpreter,
    class_tac_text,
    lower_method,
    program_tac_text,
)
from .stdlib import (  # noqa: F401
    is_tuple_class,
    make_tuple_class,
    tuple_class_name,
)
