"""Symbolic JVM assembler: label-based code -> resolved :class:`JMethod`.

The Scala frontend emits code through :class:`CodeBuilder` using symbolic
labels for branch targets.  ``assemble`` resolves labels to byte offsets,
verifies stack consistency along all paths, and computes ``max_stack`` /
``max_locals`` the way a real assembler (ASM, Jasmin) would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BytecodeError
from .classfile import ACC_PUBLIC, ACC_STATIC, Instr, JMethod
from .descriptors import parse_method_descriptor, slot_width
from .opcodes import BRANCH_OPS, RETURN_OPS, spec

#: Encoded size in bytes for each operand kind.
_KIND_SIZES = {
    "none": 1,
    "local": 2,
    "byte": 2,
    "short": 3,
    "branch": 3,
    "iinc": 3,
    "atype": 2,
    "ldc": 2,
    "ldc2": 3,
    "field": 3,
    "method": 3,
    "class": 3,
}


def instr_size(mnemonic: str) -> int:
    """Encoded byte size of an instruction."""
    return _KIND_SIZES[spec(mnemonic).kind]


@dataclass
class _Pending:
    """An instruction or label placeholder prior to offset resolution."""

    mnemonic: str | None  # None marks a label definition
    operands: tuple = ()
    label: str | None = None


@dataclass
class CodeBuilder:
    """Accumulates symbolic instructions and label definitions."""

    items: list[_Pending] = field(default_factory=list)
    _label_counter: int = 0

    def emit(self, mnemonic: str, *operands) -> None:
        """Append one instruction; validates the mnemonic eagerly."""
        spec(mnemonic)  # raises on unknown opcodes
        self.items.append(_Pending(mnemonic, tuple(operands)))

    def label(self, name: str) -> None:
        """Define a label at the current position."""
        self.items.append(_Pending(None, label=name))

    def new_label(self, hint: str = "lbl") -> str:
        """Return a fresh label name (not yet placed)."""
        self._label_counter += 1
        return f"{hint}_{self._label_counter}"

    def load_const_int(self, value: int) -> None:
        """Emit the smallest encoding of an int constant push."""
        if -1 <= value <= 5:
            self.emit("iconst_m1" if value == -1 else f"iconst_{value}")
        elif -128 <= value <= 127:
            self.emit("bipush", value)
        elif -32768 <= value <= 32767:
            self.emit("sipush", value)
        else:
            self.emit("ldc", value)

    def load_const_float(self, value: float) -> None:
        if value in (0.0, 1.0, 2.0) and str(value) != "-0.0":
            self.emit(f"fconst_{int(value)}")
        else:
            self.emit("ldc", float(value))

    def load_const_double(self, value: float) -> None:
        if value in (0.0, 1.0) and str(value) != "-0.0":
            self.emit(f"dconst_{int(value)}")
        else:
            self.emit("ldc2_w", float(value))

    def load_const_long(self, value: int) -> None:
        if value in (0, 1):
            self.emit(f"lconst_{value}")
        else:
            self.emit("ldc2_w", value)


def _invoke_stack_delta(mnemonic: str, descriptor: str) -> int:
    parsed = parse_method_descriptor(descriptor)
    delta = parsed.return_slots - parsed.param_slots
    if mnemonic in ("invokevirtual", "invokespecial"):
        delta -= 1  # the receiver
    return delta


def _field_stack_delta(mnemonic: str, descriptor: str) -> int:
    width = slot_width(descriptor)
    return {
        "getstatic": width,
        "putstatic": -width,
        "getfield": width - 1,
        "putfield": -width - 1,
    }[mnemonic]


def stack_delta(instr: Instr) -> int:
    """Net operand-stack effect of one resolved instruction."""
    sp = instr.spec
    if sp.stack_delta is not None:
        return sp.stack_delta
    if sp.kind == "method":
        return _invoke_stack_delta(instr.mnemonic, instr.operands[2])
    if sp.kind == "field":
        return _field_stack_delta(instr.mnemonic, instr.operands[2])
    raise BytecodeError(f"cannot compute stack delta of {instr.mnemonic}")


def _locals_touched(instr: Instr) -> int:
    """Highest local slot index (+width) referenced, or 0."""
    kind = instr.spec.kind
    if kind == "local":
        width = 2 if instr.mnemonic[0] in ("l", "d") else 1
        return int(instr.operands[0]) + width
    if kind == "iinc":
        return int(instr.operands[0]) + 1
    return 0


def _compute_max_stack(code: list[Instr]) -> int:
    """Abstract-interpret stack depth over all paths; verify consistency."""
    if not code:
        return 0
    index_by_offset = {instr.offset: i for i, instr in enumerate(code)}
    depth_at: dict[int, int] = {}
    worklist = [(0, 0)]
    max_depth = 0
    while worklist:
        index, depth = worklist.pop()
        if index >= len(code):
            raise BytecodeError("control flow falls off the end of the method")
        known = depth_at.get(index)
        if known is not None:
            if known != depth:
                raise BytecodeError(
                    f"inconsistent stack depth at offset "
                    f"{code[index].offset}: {known} vs {depth}")
            continue
        depth_at[index] = depth
        instr = code[index]
        new_depth = depth + stack_delta(instr)
        if new_depth < 0:
            raise BytecodeError(
                f"stack underflow at offset {instr.offset} "
                f"({instr.mnemonic})")
        max_depth = max(max_depth, new_depth)
        if instr.mnemonic in RETURN_OPS:
            continue
        if instr.mnemonic in BRANCH_OPS:
            target = instr.operands[0]
            if target not in index_by_offset:
                raise BytecodeError(f"branch to bad offset {target}")
            worklist.append((index_by_offset[target], new_depth))
            if instr.mnemonic != "goto":
                worklist.append((index + 1, new_depth))
        else:
            worklist.append((index + 1, new_depth))
    return max_depth


def assemble(name: str, descriptor: str, builder: CodeBuilder,
             *, is_static: bool = False, extra_locals: int = 0) -> JMethod:
    """Resolve labels and produce a verified :class:`JMethod`.

    ``extra_locals`` reserves slots beyond those implied by parameters and
    local-variable instructions (defensive headroom for temporaries).
    """
    # First pass: assign offsets.
    offset = 0
    label_offsets: dict[str, int] = {}
    code: list[Instr] = []
    for item in builder.items:
        if item.mnemonic is None:
            if item.label in label_offsets:
                raise BytecodeError(f"duplicate label {item.label!r}")
            label_offsets[item.label] = offset
        else:
            instr = Instr(item.mnemonic, item.operands, offset)
            code.append(instr)
            offset += instr_size(item.mnemonic)

    # Second pass: resolve branch labels to absolute offsets.
    for instr in code:
        if instr.spec.kind == "branch":
            (target,) = instr.operands
            if isinstance(target, str):
                if target not in label_offsets:
                    raise BytecodeError(f"undefined label {target!r}")
                instr.operands = (label_offsets[target],)

    if not code or code[-1].mnemonic not in RETURN_OPS | {"goto"}:
        raise BytecodeError(
            f"method {name} does not end with a return or goto")

    parsed = parse_method_descriptor(descriptor)
    param_slots = parsed.param_slots + (0 if is_static else 1)
    max_locals = max(
        [param_slots + extra_locals]
        + [_locals_touched(instr) for instr in code]
    )
    method = JMethod(
        name=name,
        descriptor=descriptor,
        code=code,
        max_stack=_compute_max_stack(code),
        max_locals=max_locals,
        access_flags=ACC_PUBLIC | (ACC_STATIC if is_static else 0),
    )
    return method
