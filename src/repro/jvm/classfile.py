"""In-memory model of JVM classes, fields, methods, and instructions.

This is the symbolic layer every other JVM component works on: the
assembler lowers label-based code into it, the binary codec serializes it
to real ``.class`` bytes, the interpreter executes it, and the
bytecode-to-C compiler lifts it.

Instruction operands stay *symbolic* (class/field/method names rather than
constant-pool indices); the codec materializes a constant pool only at
(de)serialization time, exactly like javac/ASM do internally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import BytecodeError
from .descriptors import (
    MethodDescriptor,
    parse_method_descriptor,
    validate_field_descriptor,
)
from .opcodes import OpSpec, spec

#: Access flag bits (subset).
ACC_PUBLIC = 0x0001
ACC_STATIC = 0x0008
ACC_FINAL = 0x0010
ACC_SUPER = 0x0020


@dataclass
class Instr:
    """One symbolic instruction.

    ``offset`` is the bytecode offset within the method, assigned by the
    assembler; branch operands are absolute target offsets once assembled.
    """

    mnemonic: str
    operands: tuple = ()
    offset: int = -1

    @property
    def spec(self) -> OpSpec:
        return spec(self.mnemonic)

    def __repr__(self) -> str:
        ops = " " + ", ".join(map(repr, self.operands)) if self.operands else ""
        return f"<{self.offset}: {self.mnemonic}{ops}>"


@dataclass
class JField:
    """A class field."""

    name: str
    descriptor: str
    access_flags: int = ACC_PUBLIC
    #: constant initial value for final fields (used for baked-in tables)
    constant_value: Optional[object] = None

    def __post_init__(self) -> None:
        validate_field_descriptor(self.descriptor)


@dataclass
class JMethod:
    """A method with its code attribute."""

    name: str
    descriptor: str
    code: list[Instr] = field(default_factory=list)
    max_stack: int = 0
    max_locals: int = 0
    access_flags: int = ACC_PUBLIC

    @property
    def parsed_descriptor(self) -> MethodDescriptor:
        return parse_method_descriptor(self.descriptor)

    @property
    def is_static(self) -> bool:
        return bool(self.access_flags & ACC_STATIC)

    @property
    def key(self) -> tuple[str, str]:
        return (self.name, self.descriptor)

    def instr_at(self, offset: int) -> Instr:
        """Instruction at a bytecode offset (binary search by offset)."""
        lo, hi = 0, len(self.code) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            here = self.code[mid].offset
            if here == offset:
                return self.code[mid]
            if here < offset:
                lo = mid + 1
            else:
                hi = mid - 1
        raise BytecodeError(f"no instruction at offset {offset} in {self.name}")

    def index_of_offset(self, offset: int) -> int:
        for i, instr in enumerate(self.code):
            if instr.offset == offset:
                return i
        raise BytecodeError(f"no instruction at offset {offset} in {self.name}")


@dataclass
class JClass:
    """A class definition."""

    name: str
    super_name: str = "java/lang/Object"
    fields: list[JField] = field(default_factory=list)
    methods: list[JMethod] = field(default_factory=list)
    access_flags: int = ACC_PUBLIC | ACC_SUPER
    major_version: int = 51  # JDK 7, matching the paper's environment
    minor_version: int = 0

    def method(self, name: str, descriptor: Optional[str] = None) -> JMethod:
        """Find a method by name (and descriptor, when overloaded)."""
        matches = [m for m in self.methods if m.name == name
                   and (descriptor is None or m.descriptor == descriptor)]
        if not matches:
            raise BytecodeError(
                f"no method {name}{descriptor or ''} in class {self.name}")
        if len(matches) > 1:
            raise BytecodeError(
                f"ambiguous method {name} in class {self.name}; "
                f"pass a descriptor")
        return matches[0]

    def field_named(self, name: str) -> JField:
        for f in self.fields:
            if f.name == name:
                return f
        raise BytecodeError(f"no field {name} in class {self.name}")

    def has_method(self, name: str, descriptor: Optional[str] = None) -> bool:
        return any(
            m.name == name
            and (descriptor is None or m.descriptor == descriptor)
            for m in self.methods
        )


class ClassRegistry:
    """Loaded classes by name — the interpreter's "class loader"."""

    def __init__(self) -> None:
        self._classes: dict[str, JClass] = {}

    def define(self, jclass: JClass) -> JClass:
        if jclass.name in self._classes:
            raise BytecodeError(f"class {jclass.name} already defined")
        self._classes[jclass.name] = jclass
        return jclass

    def lookup(self, name: str) -> JClass:
        try:
            return self._classes[name]
        except KeyError:
            raise BytecodeError(f"class {name} not loaded") from None

    def resolve_method(self, class_name: str, method_name: str,
                       descriptor: str) -> tuple[JClass, JMethod]:
        """Resolve a method reference, walking up the superclass chain."""
        name = class_name
        while name and name != "java/lang/Object":
            jclass = self._classes.get(name)
            if jclass is None:
                break
            if jclass.has_method(method_name, descriptor):
                return jclass, jclass.method(method_name, descriptor)
            name = jclass.super_name
        raise BytecodeError(
            f"cannot resolve {class_name}.{method_name}{descriptor}")

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def classes(self) -> list[JClass]:
        return list(self._classes.values())
