"""Binary ``.class`` file writer and reader.

The symbolic :class:`~repro.jvm.classfile.JClass` model round-trips through
the real classfile format (magic ``0xCAFEBABE``, constant pool, Code
attributes with encoded instructions).  This keeps the substrate honest:
the bytecode our frontend emits is genuine JVM bytecode, byte-for-byte.
"""

from __future__ import annotations

import struct

from ..errors import BytecodeError
from .classfile import Instr, JClass, JField, JMethod
from .constant_pool import ConstantPool
from .opcodes import spec, spec_by_byte

MAGIC = 0xCAFEBABE


# ---------------------------------------------------------------------------
# Writing
# ---------------------------------------------------------------------------


def _encode_code(method: JMethod, pool: ConstantPool) -> bytes:
    out = bytearray()
    for instr in method.code:
        sp = instr.spec
        if instr.offset != len(out):
            raise BytecodeError(
                f"instruction offset mismatch at {instr}: "
                f"expected {len(out)}")
        out.append(sp.byte)
        kind = sp.kind
        if kind == "none":
            pass
        elif kind == "local":
            out += struct.pack(">B", instr.operands[0])
        elif kind == "byte":
            out += struct.pack(">b", instr.operands[0])
        elif kind == "short":
            out += struct.pack(">h", instr.operands[0])
        elif kind == "branch":
            rel = instr.operands[0] - instr.offset
            out += struct.pack(">h", rel)
        elif kind == "iinc":
            out += struct.pack(">Bb", instr.operands[0], instr.operands[1])
        elif kind == "atype":
            out += struct.pack(">B", instr.operands[0])
        elif kind == "ldc":
            value = instr.operands[0]
            if isinstance(value, bool):
                index = pool.integer(int(value))
            elif isinstance(value, int):
                index = pool.integer(value)
            elif isinstance(value, float):
                index = pool.float_(value)
            elif isinstance(value, str):
                index = pool.string(value)
            else:
                raise BytecodeError(f"cannot ldc {value!r}")
            if index > 255:
                raise BytecodeError("ldc constant pool index exceeds 255")
            out += struct.pack(">B", index)
        elif kind == "ldc2":
            value = instr.operands[0]
            if isinstance(value, int):
                index = pool.long_(value)
            elif isinstance(value, float):
                index = pool.double(value)
            else:
                raise BytecodeError(f"cannot ldc2_w {value!r}")
            out += struct.pack(">H", index)
        elif kind == "field":
            out += struct.pack(">H", pool.fieldref(*instr.operands))
        elif kind == "method":
            out += struct.pack(">H", pool.methodref(*instr.operands))
        elif kind == "class":
            out += struct.pack(">H", pool.class_(instr.operands[0]))
        else:  # pragma: no cover
            raise BytecodeError(f"unhandled operand kind {kind}")
    return bytes(out)


def _code_attribute(method: JMethod, pool: ConstantPool) -> bytes:
    code_bytes = _encode_code(method, pool)
    body = struct.pack(">HH", method.max_stack, method.max_locals)
    body += struct.pack(">I", len(code_bytes)) + code_bytes
    body += struct.pack(">H", 0)  # exception table
    body += struct.pack(">H", 0)  # attributes
    return struct.pack(">HI", pool.utf8("Code"), len(body)) + body


def write_class(jclass: JClass) -> bytes:
    """Serialize a :class:`JClass` to classfile bytes."""
    pool = ConstantPool()
    this_idx = pool.class_(jclass.name)
    super_idx = pool.class_(jclass.super_name)

    field_blobs = []
    for jfield in jclass.fields:
        attrs = b""
        attr_count = 0
        if jfield.constant_value is not None:
            value = jfield.constant_value
            if isinstance(value, bool):
                const_idx = pool.integer(int(value))
            elif isinstance(value, int):
                const_idx = pool.integer(value)
            elif isinstance(value, float):
                const_idx = (pool.double(value)
                             if jfield.descriptor == "D"
                             else pool.float_(value))
            elif isinstance(value, str):
                const_idx = pool.string(value)
            else:
                raise BytecodeError(
                    f"cannot encode constant value {value!r}")
            attrs = struct.pack(
                ">HIH", pool.utf8("ConstantValue"), 2, const_idx)
            attr_count = 1
        field_blobs.append(
            struct.pack(
                ">HHHH",
                jfield.access_flags,
                pool.utf8(jfield.name),
                pool.utf8(jfield.descriptor),
                attr_count,
            ) + attrs
        )

    method_blobs = []
    for method in jclass.methods:
        code_attr = _code_attribute(method, pool)
        method_blobs.append(
            struct.pack(
                ">HHHH",
                method.access_flags,
                pool.utf8(method.name),
                pool.utf8(method.descriptor),
                1,
            ) + code_attr
        )

    out = bytearray()
    out += struct.pack(">IHH", MAGIC, jclass.minor_version,
                       jclass.major_version)
    out += pool.to_bytes()
    out += struct.pack(">HHH", jclass.access_flags, this_idx, super_idx)
    out += struct.pack(">H", 0)  # interfaces
    out += struct.pack(">H", len(field_blobs)) + b"".join(field_blobs)
    out += struct.pack(">H", len(method_blobs)) + b"".join(method_blobs)
    out += struct.pack(">H", 0)  # class attributes
    return bytes(out)


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


def _decode_code(data: bytes, pool: ConstantPool) -> list[Instr]:
    code: list[Instr] = []
    pos = 0
    while pos < len(data):
        offset = pos
        sp = spec_by_byte(data[pos])
        pos += 1
        kind = sp.kind
        operands: tuple = ()
        if kind == "none":
            pass
        elif kind == "local":
            operands = (data[pos],)
            pos += 1
        elif kind == "byte":
            operands = struct.unpack_from(">b", data, pos)
            pos += 1
        elif kind == "short":
            operands = struct.unpack_from(">h", data, pos)
            pos += 2
        elif kind == "branch":
            (rel,) = struct.unpack_from(">h", data, pos)
            pos += 2
            operands = (offset + rel,)
        elif kind == "iinc":
            index, delta = struct.unpack_from(">Bb", data, pos)
            pos += 2
            operands = (index, delta)
        elif kind == "atype":
            operands = (data[pos],)
            pos += 1
        elif kind == "ldc":
            operands = (pool.get_loadable(data[pos]),)
            pos += 1
        elif kind == "ldc2":
            (index,) = struct.unpack_from(">H", data, pos)
            pos += 2
            operands = (pool.get_loadable(index),)
        elif kind in ("field", "method"):
            (index,) = struct.unpack_from(">H", data, pos)
            pos += 2
            operands = pool.get_member_ref(index)
        elif kind == "class":
            (index,) = struct.unpack_from(">H", data, pos)
            pos += 2
            operands = (pool.get_class_name(index),)
        else:  # pragma: no cover
            raise BytecodeError(f"unhandled operand kind {kind}")
        code.append(Instr(sp.mnemonic, operands, offset))
    return code


def read_class(data: bytes) -> JClass:
    """Parse classfile bytes back into a symbolic :class:`JClass`."""
    (magic,) = struct.unpack_from(">I", data, 0)
    if magic != MAGIC:
        raise BytecodeError(f"bad classfile magic 0x{magic:08x}")
    minor, major = struct.unpack_from(">HH", data, 4)
    pool, pos = ConstantPool.parse(data, 8)
    access_flags, this_idx, super_idx = struct.unpack_from(">HHH", data, pos)
    pos += 6
    (iface_count,) = struct.unpack_from(">H", data, pos)
    pos += 2 + 2 * iface_count

    jclass = JClass(
        name=pool.get_class_name(this_idx),
        super_name=pool.get_class_name(super_idx),
        access_flags=access_flags,
        major_version=major,
        minor_version=minor,
    )

    (field_count,) = struct.unpack_from(">H", data, pos)
    pos += 2
    for _ in range(field_count):
        flags, name_idx, desc_idx, attr_count = struct.unpack_from(
            ">HHHH", data, pos)
        pos += 8
        constant_value = None
        for _ in range(attr_count):
            attr_name_idx, attr_len = struct.unpack_from(">HI", data, pos)
            pos += 6
            if pool.get_utf8(attr_name_idx) == "ConstantValue":
                (const_idx,) = struct.unpack_from(">H", data, pos)
                constant_value = pool.get_loadable(const_idx)
            pos += attr_len
        jclass.fields.append(JField(
            name=pool.get_utf8(name_idx),
            descriptor=pool.get_utf8(desc_idx),
            access_flags=flags,
            constant_value=constant_value,
        ))

    (method_count,) = struct.unpack_from(">H", data, pos)
    pos += 2
    for _ in range(method_count):
        flags, name_idx, desc_idx, attr_count = struct.unpack_from(
            ">HHHH", data, pos)
        pos += 8
        method = JMethod(
            name=pool.get_utf8(name_idx),
            descriptor=pool.get_utf8(desc_idx),
            access_flags=flags,
        )
        for _ in range(attr_count):
            attr_name_idx, attr_len = struct.unpack_from(">HI", data, pos)
            pos += 6
            attr_end = pos + attr_len
            if pool.get_utf8(attr_name_idx) == "Code":
                method.max_stack, method.max_locals = struct.unpack_from(
                    ">HH", data, pos)
                (code_len,) = struct.unpack_from(">I", data, pos + 4)
                code_start = pos + 8
                method.code = _decode_code(
                    data[code_start:code_start + code_len], pool)
            pos = attr_end
        jclass.methods.append(method)
    return jclass
