"""JVM constant pool construction and parsing.

The symbolic classfile model keeps names inline; this module materializes a
real constant pool when writing ``.class`` binaries and resolves indices
back to symbols when reading them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from ..errors import BytecodeError

CONSTANT_UTF8 = 1
CONSTANT_INTEGER = 3
CONSTANT_FLOAT = 4
CONSTANT_LONG = 5
CONSTANT_DOUBLE = 6
CONSTANT_CLASS = 7
CONSTANT_STRING = 8
CONSTANT_FIELDREF = 9
CONSTANT_METHODREF = 10
CONSTANT_NAME_AND_TYPE = 12


@dataclass(frozen=True)
class CPEntry:
    """One constant-pool entry: a tag plus its payload tuple."""

    tag: int
    payload: tuple


class ConstantPool:
    """Deduplicating constant pool builder (1-based indexing, 8-byte
    constants occupy two slots, per the JVM spec)."""

    def __init__(self) -> None:
        self._entries: list[Optional[CPEntry]] = [None]  # index 0 unused
        self._index: dict[CPEntry, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, index: int) -> CPEntry:
        if not 1 <= index < len(self._entries):
            raise BytecodeError(f"constant pool index {index} out of range")
        entry = self._entries[index]
        if entry is None:
            raise BytecodeError(
                f"constant pool index {index} is the unusable second slot "
                f"of a long/double")
        return entry

    def _add(self, entry: CPEntry) -> int:
        existing = self._index.get(entry)
        if existing is not None:
            return existing
        index = len(self._entries)
        self._entries.append(entry)
        if entry.tag in (CONSTANT_LONG, CONSTANT_DOUBLE):
            self._entries.append(None)  # phantom second slot
        self._index[entry] = index
        return index

    # -- builders ----------------------------------------------------------

    def utf8(self, text: str) -> int:
        return self._add(CPEntry(CONSTANT_UTF8, (text,)))

    def integer(self, value: int) -> int:
        if not -(2**31) <= value < 2**31:
            raise BytecodeError(f"int constant out of range: {value}")
        return self._add(CPEntry(CONSTANT_INTEGER, (value,)))

    def float_(self, value: float) -> int:
        # Canonicalize through single-precision bits so dedup is exact.
        bits = struct.unpack(">I", struct.pack(">f", value))[0]
        return self._add(CPEntry(CONSTANT_FLOAT, (bits,)))

    def long_(self, value: int) -> int:
        return self._add(CPEntry(CONSTANT_LONG, (value,)))

    def double(self, value: float) -> int:
        bits = struct.unpack(">Q", struct.pack(">d", value))[0]
        return self._add(CPEntry(CONSTANT_DOUBLE, (bits,)))

    def string(self, value: str) -> int:
        return self._add(CPEntry(CONSTANT_STRING, (self.utf8(value),)))

    def class_(self, name: str) -> int:
        return self._add(CPEntry(CONSTANT_CLASS, (self.utf8(name),)))

    def name_and_type(self, name: str, descriptor: str) -> int:
        return self._add(CPEntry(
            CONSTANT_NAME_AND_TYPE, (self.utf8(name), self.utf8(descriptor))))

    def fieldref(self, cls: str, name: str, descriptor: str) -> int:
        return self._add(CPEntry(
            CONSTANT_FIELDREF,
            (self.class_(cls), self.name_and_type(name, descriptor))))

    def methodref(self, cls: str, name: str, descriptor: str) -> int:
        return self._add(CPEntry(
            CONSTANT_METHODREF,
            (self.class_(cls), self.name_and_type(name, descriptor))))

    # -- resolution (for the reader) ---------------------------------------

    def get_utf8(self, index: int) -> str:
        entry = self.entry(index)
        if entry.tag != CONSTANT_UTF8:
            raise BytecodeError(f"cp[{index}] is not Utf8")
        return entry.payload[0]

    def get_class_name(self, index: int) -> str:
        entry = self.entry(index)
        if entry.tag != CONSTANT_CLASS:
            raise BytecodeError(f"cp[{index}] is not a Class")
        return self.get_utf8(entry.payload[0])

    def get_member_ref(self, index: int) -> tuple[str, str, str]:
        """Resolve a Fieldref/Methodref to (class, name, descriptor)."""
        entry = self.entry(index)
        if entry.tag not in (CONSTANT_FIELDREF, CONSTANT_METHODREF):
            raise BytecodeError(f"cp[{index}] is not a member reference")
        class_idx, nat_idx = entry.payload
        nat = self.entry(nat_idx)
        if nat.tag != CONSTANT_NAME_AND_TYPE:
            raise BytecodeError(f"cp[{nat_idx}] is not NameAndType")
        return (
            self.get_class_name(class_idx),
            self.get_utf8(nat.payload[0]),
            self.get_utf8(nat.payload[1]),
        )

    def get_loadable(self, index: int):
        """Resolve a constant for ldc/ldc2_w to a Python value."""
        entry = self.entry(index)
        if entry.tag == CONSTANT_INTEGER:
            value = entry.payload[0]
            return value - 2**32 if value >= 2**31 else value
        if entry.tag == CONSTANT_FLOAT:
            return struct.unpack(">f", struct.pack(">I", entry.payload[0]))[0]
        if entry.tag == CONSTANT_LONG:
            value = entry.payload[0]
            return value - 2**64 if value >= 2**63 else value
        if entry.tag == CONSTANT_DOUBLE:
            return struct.unpack(">d", struct.pack(">Q", entry.payload[0]))[0]
        if entry.tag == CONSTANT_STRING:
            return self.get_utf8(entry.payload[0])
        raise BytecodeError(f"cp[{index}] is not a loadable constant")

    # -- binary io ----------------------------------------------------------

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += struct.pack(">H", len(self._entries))
        for entry in self._entries[1:]:
            if entry is None:
                continue  # phantom long/double slot: nothing emitted
            out.append(entry.tag)
            if entry.tag == CONSTANT_UTF8:
                encoded = entry.payload[0].encode("utf-8")
                out += struct.pack(">H", len(encoded)) + encoded
            elif entry.tag == CONSTANT_INTEGER:
                out += struct.pack(">i", entry.payload[0])
            elif entry.tag == CONSTANT_FLOAT:
                out += struct.pack(">I", entry.payload[0])
            elif entry.tag == CONSTANT_LONG:
                out += struct.pack(">q", entry.payload[0])
            elif entry.tag == CONSTANT_DOUBLE:
                out += struct.pack(">Q", entry.payload[0])
            elif entry.tag in (CONSTANT_CLASS, CONSTANT_STRING):
                out += struct.pack(">H", entry.payload[0])
            elif entry.tag in (CONSTANT_FIELDREF, CONSTANT_METHODREF,
                               CONSTANT_NAME_AND_TYPE):
                out += struct.pack(">HH", *entry.payload)
            else:  # pragma: no cover - builder never creates other tags
                raise BytecodeError(f"cannot serialize cp tag {entry.tag}")
        return bytes(out)

    @classmethod
    def parse(cls, data: bytes, pos: int) -> tuple["ConstantPool", int]:
        """Parse a constant pool starting at ``pos``; returns (pool, newpos)."""
        pool = cls()
        (count,) = struct.unpack_from(">H", data, pos)
        pos += 2
        index = 1
        while index < count:
            tag = data[pos]
            pos += 1
            if tag == CONSTANT_UTF8:
                (length,) = struct.unpack_from(">H", data, pos)
                pos += 2
                text = data[pos:pos + length].decode("utf-8")
                pos += length
                entry = CPEntry(tag, (text,))
            elif tag == CONSTANT_INTEGER:
                (value,) = struct.unpack_from(">i", data, pos)
                pos += 4
                entry = CPEntry(tag, (value,))
            elif tag == CONSTANT_FLOAT:
                (bits,) = struct.unpack_from(">I", data, pos)
                pos += 4
                entry = CPEntry(tag, (bits,))
            elif tag == CONSTANT_LONG:
                (value,) = struct.unpack_from(">q", data, pos)
                pos += 8
                entry = CPEntry(tag, (value,))
            elif tag == CONSTANT_DOUBLE:
                (bits,) = struct.unpack_from(">Q", data, pos)
                pos += 8
                entry = CPEntry(tag, (bits,))
            elif tag in (CONSTANT_CLASS, CONSTANT_STRING):
                (ref,) = struct.unpack_from(">H", data, pos)
                pos += 2
                entry = CPEntry(tag, (ref,))
            elif tag in (CONSTANT_FIELDREF, CONSTANT_METHODREF,
                         CONSTANT_NAME_AND_TYPE):
                refs = struct.unpack_from(">HH", data, pos)
                pos += 4
                entry = CPEntry(tag, refs)
            else:
                raise BytecodeError(f"unsupported constant pool tag {tag}")
            # Append directly to preserve indices read from the file.
            pool._entries.append(entry)
            pool._index.setdefault(entry, index)
            if tag in (CONSTANT_LONG, CONSTANT_DOUBLE):
                pool._entries.append(None)
                index += 2
            else:
                index += 1
        return pool, pos
