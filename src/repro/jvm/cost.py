"""JVM execution cost model.

Fig. 4 of the paper compares FPGA designs against a *single-threaded Spark
executor on the JVM*.  Our substrate interprets real bytecode and charges
each executed instruction a calibrated latency that approximates steady
state JIT-compiled throughput on the paper's Xeon-class host (f1.2xlarge,
8-core CPU): simple integer/float ops are ~1 cycle at ~2.5 GHz plus JVM
overheads (bounds checks on array ops, virtual dispatch on invokes, object
allocation).

The absolute constants matter less than the *ratios* — the paper's speedup
shapes come from FPGA pipelining amortizing exactly these per-element
costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Nanoseconds charged per executed instruction, by group.
DEFAULT_COSTS_NS = {
    "const": 0.4,
    "local": 0.4,        # iload/istore and friends
    "array": 1.6,        # array access incl. bounds check
    "ialu": 0.4,
    "imul": 1.2,
    "idiv": 8.0,
    "falu": 0.8,
    "fmul": 1.2,
    "fdiv": 6.0,
    "stack": 0.2,
    "branch": 0.8,
    "invoke": 6.0,       # virtual/static dispatch overhead
    "field": 1.2,
    "alloc": 24.0,       # new/newarray: allocation + zeroing amortized
    "math_exp": 22.0,    # Math.exp/log
    "math_sqrt": 9.0,
    "math_cheap": 1.5,   # abs/min/max
    "convert": 0.6,
    "return": 1.0,
    "other": 0.6,
}

_GROUP_OF: dict[str, str] = {}


def _group(mnemonics: list[str], group: str) -> None:
    for m in mnemonics:
        _GROUP_OF[m] = group


_group(["nop"], "other")
_group(["aconst_null", "iconst_m1", "iconst_0", "iconst_1", "iconst_2",
        "iconst_3", "iconst_4", "iconst_5", "lconst_0", "lconst_1",
        "fconst_0", "fconst_1", "fconst_2", "dconst_0", "dconst_1",
        "bipush", "sipush", "ldc", "ldc2_w"], "const")
_group(["iload", "lload", "fload", "dload", "aload",
        "istore", "lstore", "fstore", "dstore", "astore", "iinc"], "local")
_group(["iaload", "laload", "faload", "daload", "aaload", "baload",
        "caload", "saload", "iastore", "lastore", "fastore", "dastore",
        "aastore", "bastore", "castore", "sastore", "arraylength"], "array")
_group(["iadd", "isub", "ineg", "ishl", "ishr", "iushr", "iand", "ior",
        "ixor", "ladd", "lsub", "lneg", "lshl", "lshr", "land", "lor",
        "lxor", "lcmp"], "ialu")
_group(["imul", "lmul"], "imul")
_group(["idiv", "irem", "ldiv", "lrem"], "idiv")
_group(["fadd", "fsub", "fneg", "dadd", "dsub", "dneg",
        "fcmpl", "fcmpg", "dcmpl", "dcmpg"], "falu")
_group(["fmul", "dmul"], "fmul")
_group(["fdiv", "ddiv", "frem", "drem"], "fdiv")
_group(["pop", "pop2", "dup", "dup_x1", "dup_x2", "dup2", "swap"], "stack")
_group(["ifeq", "ifne", "iflt", "ifge", "ifgt", "ifle",
        "if_icmpeq", "if_icmpne", "if_icmplt", "if_icmpge", "if_icmpgt",
        "if_icmple", "if_acmpeq", "if_acmpne", "ifnull", "ifnonnull",
        "goto"], "branch")
_group(["invokevirtual", "invokespecial", "invokestatic"], "invoke")
_group(["getfield", "putfield", "getstatic", "putstatic"], "field")
_group(["new", "newarray", "anewarray"], "alloc")
_group(["i2l", "i2f", "i2d", "l2i", "l2f", "l2d", "f2i", "f2l", "f2d",
        "d2i", "d2l", "d2f", "i2b", "i2c", "i2s"], "convert")
_group(["ireturn", "lreturn", "freturn", "dreturn", "areturn",
        "return"], "return")


def group_of(mnemonic: str) -> str:
    """Cost group of a mnemonic."""
    return _GROUP_OF.get(mnemonic, "other")


@dataclass
class CostModel:
    """Accumulates executed-instruction counts and virtual nanoseconds."""

    costs_ns: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_COSTS_NS))
    counts: dict[str, int] = field(default_factory=dict)
    total_ns: float = 0.0
    instructions: int = 0

    def charge(self, mnemonic: str) -> None:
        group = group_of(mnemonic)
        self.counts[group] = self.counts.get(group, 0) + 1
        self.total_ns += self.costs_ns[group]
        self.instructions += 1

    def charge_math(self, name: str) -> None:
        """Extra charge for a java/lang/Math intrinsic body."""
        if name in ("exp", "log"):
            group = "math_exp"
        elif name == "sqrt":
            group = "math_sqrt"
        else:
            group = "math_cheap"
        self.counts[group] = self.counts.get(group, 0) + 1
        self.total_ns += self.costs_ns[group]

    def reset(self) -> None:
        self.counts.clear()
        self.total_ns = 0.0
        self.instructions = 0

    @property
    def total_seconds(self) -> float:
        return self.total_ns * 1e-9
