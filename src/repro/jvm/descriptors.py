"""JVM type and method descriptor parsing/formatting.

Descriptors follow the JVM specification grammar:

* ``I``/``J``/``F``/``D``/``S``/``B``/``C``/``Z``/``V`` — primitives,
* ``Lcom/example/Name;`` — object types,
* ``[`` prefix — one array dimension.

Methods use ``(<params>)<return>``, e.g. ``([FI)F``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BytecodeError

PRIMITIVES = frozenset("IJFDSBCZV")

#: Java-source-level names for primitive descriptors.
PRIMITIVE_NAMES = {
    "I": "int", "J": "long", "F": "float", "D": "double",
    "S": "short", "B": "byte", "C": "char", "Z": "boolean", "V": "void",
}


def slot_width(descriptor: str) -> int:
    """Number of operand-stack/local slots a value of this type occupies."""
    return 2 if descriptor in ("J", "D") else 1


def is_reference(descriptor: str) -> bool:
    """True for object and array types."""
    return descriptor.startswith(("L", "["))


def is_array(descriptor: str) -> bool:
    return descriptor.startswith("[")


def element_type(descriptor: str) -> str:
    """Element descriptor of an array type."""
    if not is_array(descriptor):
        raise BytecodeError(f"{descriptor!r} is not an array descriptor")
    return descriptor[1:]


def class_name(descriptor: str) -> str:
    """Internal class name of an ``L...;`` descriptor."""
    if not (descriptor.startswith("L") and descriptor.endswith(";")):
        raise BytecodeError(f"{descriptor!r} is not an object descriptor")
    return descriptor[1:-1]


def object_descriptor(name: str) -> str:
    """Internal class name -> ``L...;`` descriptor."""
    return f"L{name};"


def _read_type(text: str, pos: int) -> tuple[str, int]:
    start = pos
    while pos < len(text) and text[pos] == "[":
        pos += 1
    if pos >= len(text):
        raise BytecodeError(f"truncated descriptor {text!r}")
    ch = text[pos]
    if ch in PRIMITIVES:
        return text[start:pos + 1], pos + 1
    if ch == "L":
        end = text.find(";", pos)
        if end < 0:
            raise BytecodeError(f"unterminated object descriptor in {text!r}")
        return text[start:end + 1], end + 1
    raise BytecodeError(f"bad descriptor character {ch!r} in {text!r}")


@dataclass(frozen=True)
class MethodDescriptor:
    """Parsed method descriptor."""

    params: tuple[str, ...]
    return_type: str

    @property
    def param_slots(self) -> int:
        """Total local-variable slots consumed by the parameters."""
        return sum(slot_width(p) for p in self.params)

    @property
    def return_slots(self) -> int:
        return 0 if self.return_type == "V" else slot_width(self.return_type)

    def __str__(self) -> str:
        return f"({''.join(self.params)}){self.return_type}"


def parse_method_descriptor(text: str) -> MethodDescriptor:
    """Parse ``(<params>)<return>`` into a :class:`MethodDescriptor`."""
    if not text.startswith("("):
        raise BytecodeError(f"method descriptor must start with '(': {text!r}")
    close = text.find(")")
    if close < 0:
        raise BytecodeError(f"method descriptor missing ')': {text!r}")
    params: list[str] = []
    pos = 1
    while pos < close:
        ptype, pos = _read_type(text, pos)
        params.append(ptype)
    if pos != close:
        raise BytecodeError(f"malformed parameter list in {text!r}")
    return_type, end = _read_type(text, close + 1)
    if end != len(text):
        raise BytecodeError(f"trailing junk in method descriptor {text!r}")
    return MethodDescriptor(tuple(params), return_type)


def validate_field_descriptor(text: str) -> str:
    """Validate a field descriptor, returning it unchanged."""
    descriptor, end = _read_type(text, 0)
    if end != len(text) or descriptor.endswith("V"):
        raise BytecodeError(f"bad field descriptor {text!r}")
    return descriptor


def pretty_type(descriptor: str) -> str:
    """Human-readable form, e.g. ``[[F`` -> ``float[][]``."""
    dims = 0
    while descriptor.startswith("["):
        dims += 1
        descriptor = descriptor[1:]
    if descriptor in PRIMITIVE_NAMES:
        base = PRIMITIVE_NAMES[descriptor]
    else:
        base = class_name(descriptor).replace("/", ".")
    return base + "[]" * dims
