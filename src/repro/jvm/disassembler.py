"""Human-readable bytecode listings (javap-style)."""

from __future__ import annotations

from .classfile import Instr, JClass, JMethod
from .descriptors import pretty_type
from .opcodes import BRANCH_OPS


def format_instr(instr: Instr) -> str:
    """One listing line for an instruction."""
    if not instr.operands:
        return f"{instr.offset:4d}: {instr.mnemonic}"
    if instr.mnemonic in BRANCH_OPS:
        return f"{instr.offset:4d}: {instr.mnemonic} -> {instr.operands[0]}"
    kind = instr.spec.kind
    if kind in ("field", "method"):
        owner, name, descriptor = instr.operands
        return (f"{instr.offset:4d}: {instr.mnemonic} "
                f"{owner}.{name}:{descriptor}")
    rendered = ", ".join(repr(op) for op in instr.operands)
    return f"{instr.offset:4d}: {instr.mnemonic} {rendered}"


def disassemble_method(method: JMethod) -> str:
    """Full listing of one method."""
    parsed = method.parsed_descriptor
    params = ", ".join(pretty_type(p) for p in parsed.params)
    header = (
        f"{pretty_type(parsed.return_type)} {method.name}({params})"
        f"  // stack={method.max_stack}, locals={method.max_locals}"
    )
    body = "\n".join("    " + format_instr(i) for i in method.code)
    return f"{header}\n{body}"


def disassemble_class(jclass: JClass) -> str:
    """Full listing of a class."""
    lines = [f"class {jclass.name} extends {jclass.super_name} {{"]
    for jfield in jclass.fields:
        lines.append(f"  {pretty_type(jfield.descriptor)} {jfield.name};")
    for method in jclass.methods:
        listing = disassemble_method(method)
        lines.append("")
        lines.extend("  " + line for line in listing.splitlines())
    lines.append("}")
    return "\n".join(lines)
