"""A JVM bytecode interpreter with a calibrated cost model.

This provides the "JVM baseline" of the paper's evaluation (single-threaded
Spark executor) and doubles as the functional oracle: every kernel is run
both here and on the FPGA simulator, and the outputs are compared.

Semantics follow the JVM spec for the supported subset: 32-bit wrapping int
arithmetic, truncating division, slot-accurate operand stack (longs and
doubles occupy two slots), bounds-checked arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from ..errors import JVMRuntimeError
from .classfile import ClassRegistry, Instr, JMethod
from .cost import CostModel
from .descriptors import parse_method_descriptor, slot_width
from .opcodes import ATYPE_NAMES

#: Sentinel occupying the second slot of a long/double on stack or locals.
PAD = object()

_INT_MIN, _INT_MAX = -(2**31), 2**31 - 1


def _i32(value: int) -> int:
    """Wrap to signed 32-bit, as Java int arithmetic does."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value > _INT_MAX else value


def _i64(value: int) -> int:
    value &= 0xFFFFFFFFFFFFFFFF
    return value - 0x10000000000000000 if value > 2**63 - 1 else value


def _jdiv(a: int, b: int) -> int:
    """Java integer division truncates toward zero."""
    if b == 0:
        raise JVMRuntimeError("division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _jrem(a: int, b: int) -> int:
    """Java remainder: sign follows the dividend."""
    return a - _jdiv(a, b) * b


@dataclass
class JObject:
    """An instance on the simulated heap."""

    class_name: str
    fields: dict[str, object] = field(default_factory=dict)


@dataclass
class JArray:
    """A typed array on the simulated heap."""

    elem: str  # element descriptor, e.g. "F", "I", "C", "[F"
    values: list

    def __len__(self) -> int:
        return len(self.values)

    @classmethod
    def new(cls, elem: str, length: int) -> "JArray":
        if length < 0:
            raise JVMRuntimeError(f"negative array size {length}")
        if elem in ("F", "D"):
            zero: object = 0.0
        elif elem in ("I", "J", "S", "B", "C", "Z"):
            zero = 0
        else:
            zero = None
        return cls(elem, [zero] * length)

    def check(self, index: int) -> int:
        if not 0 <= index < len(self.values):
            raise JVMRuntimeError(
                f"array index {index} out of bounds for length "
                f"{len(self.values)}")
        return index


_MATH_UNARY = {
    "exp": math.exp, "log": math.log, "sqrt": math.sqrt,
    "abs": abs, "floor": math.floor, "ceil": math.ceil,
}
_MATH_BINARY = {"min": min, "max": max, "pow": math.pow}


class Interpreter:
    """Executes methods from a :class:`ClassRegistry`.

    ``max_steps`` bounds total executed instructions per top-level invoke,
    protecting tests from infinite loops in generated code.
    """

    def __init__(self, registry: ClassRegistry,
                 cost_model: Optional[CostModel] = None,
                 max_steps: int = 200_000_000):
        self.registry = registry
        self.cost = cost_model or CostModel()
        self.max_steps = max_steps
        self._steps = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def new_instance(self, class_name: str, **fields) -> JObject:
        """Allocate an instance and set fields directly (host-side setup)."""
        obj = JObject(class_name, dict(fields))
        return obj

    def invoke(self, class_name: str, method_name: str, args: list,
               descriptor: Optional[str] = None):
        """Invoke a method; ``args`` includes the receiver for instance
        methods.  Returns the Java return value (or None for void)."""
        self._steps = 0
        jclass, method = self.registry.resolve_method(
            class_name, method_name,
            descriptor or self._only_descriptor(class_name, method_name))
        return self._run(jclass.name, method, args)

    def _only_descriptor(self, class_name: str, method_name: str) -> str:
        jclass = self.registry.lookup(class_name)
        return jclass.method(method_name).descriptor

    # ------------------------------------------------------------------
    # Frame execution
    # ------------------------------------------------------------------

    def _run(self, class_name: str, method: JMethod, args: list):
        frame_locals = self._layout_locals(method, args)
        stack: list = []
        index_by_offset = {ins.offset: i for i, ins in enumerate(method.code)}
        pc = 0
        code = method.code
        charge = self.cost.charge

        while True:
            if self._steps >= self.max_steps:
                raise JVMRuntimeError(
                    f"exceeded max_steps={self.max_steps} in "
                    f"{class_name}.{method.name}")
            self._steps += 1
            instr = code[pc]
            m = instr.mnemonic
            charge(m)
            result = self._execute(
                m, instr, stack, frame_locals, class_name, method)
            if result is _RETURN_VOID:
                return None
            if isinstance(result, _ReturnValue):
                return result.value
            if isinstance(result, _Jump):
                pc = index_by_offset[result.target]
            else:
                pc += 1

    def _layout_locals(self, method: JMethod, args: list) -> list:
        parsed = method.parsed_descriptor
        frame_locals: list = [None] * max(method.max_locals, 16)
        slot = 0
        arg_types: list[Optional[str]] = []
        if not method.is_static:
            arg_types.append(None)  # receiver
        arg_types.extend(parsed.params)
        if len(args) != len(arg_types):
            raise JVMRuntimeError(
                f"{method.name} expects {len(arg_types)} args, "
                f"got {len(args)}")
        for value, atype in zip(args, arg_types):
            frame_locals[slot] = value
            width = 1 if atype is None else slot_width(atype)
            if width == 2:
                slot += 1
                if slot < len(frame_locals):
                    frame_locals[slot] = PAD
            slot += 1
        return frame_locals

    # ------------------------------------------------------------------
    # Instruction semantics
    # ------------------------------------------------------------------

    def _execute(self, m: str, instr: Instr, stack: list, flocals: list,
                 class_name: str, method: JMethod):
        ops = instr.operands

        # --- constants ---
        if m == "nop":
            return None
        if m == "aconst_null":
            stack.append(None)
            return None
        if m.startswith("iconst_"):
            stack.append(-1 if m.endswith("m1") else int(m[-1]))
            return None
        if m.startswith("lconst_"):
            stack.append(int(m[-1]))
            stack.append(PAD)
            return None
        if m.startswith("fconst_"):
            stack.append(float(m[-1]))
            return None
        if m.startswith("dconst_"):
            stack.append(float(m[-1]))
            stack.append(PAD)
            return None
        if m in ("bipush", "sipush"):
            stack.append(ops[0])
            return None
        if m == "ldc":
            stack.append(ops[0])
            return None
        if m == "ldc2_w":
            stack.append(ops[0])
            stack.append(PAD)
            return None

        # --- locals ---
        if m in ("iload", "fload", "aload"):
            stack.append(flocals[ops[0]])
            return None
        if m in ("lload", "dload"):
            stack.append(flocals[ops[0]])
            stack.append(PAD)
            return None
        if m in ("istore", "fstore", "astore"):
            flocals[ops[0]] = stack.pop()
            return None
        if m in ("lstore", "dstore"):
            _pop_pad(stack)
            flocals[ops[0]] = stack.pop()
            if ops[0] + 1 < len(flocals):
                flocals[ops[0] + 1] = PAD
            return None
        if m == "iinc":
            flocals[ops[0]] = _i32(flocals[ops[0]] + ops[1])
            return None

        # --- arrays ---
        if m in ("iaload", "faload", "aaload", "baload", "caload", "saload"):
            index = stack.pop()
            array = _expect_array(stack.pop())
            stack.append(array.values[array.check(index)])
            return None
        if m in ("laload", "daload"):
            index = stack.pop()
            array = _expect_array(stack.pop())
            stack.append(array.values[array.check(index)])
            stack.append(PAD)
            return None
        if m in ("iastore", "fastore", "aastore", "bastore", "castore",
                 "sastore"):
            value = stack.pop()
            index = stack.pop()
            array = _expect_array(stack.pop())
            if m == "castore":
                value = value & 0xFFFF
            array.values[array.check(index)] = value
            return None
        if m in ("lastore", "dastore"):
            _pop_pad(stack)
            value = stack.pop()
            index = stack.pop()
            array = _expect_array(stack.pop())
            array.values[array.check(index)] = value
            return None
        if m == "arraylength":
            target = stack.pop()
            if isinstance(target, str):
                stack.append(len(target))
            else:
                stack.append(len(_expect_array(target)))
            return None

        # --- stack manipulation ---
        if m == "pop":
            stack.pop()
            return None
        if m == "pop2":
            stack.pop()
            stack.pop()
            return None
        if m == "dup":
            stack.append(stack[-1])
            return None
        if m == "dup_x1":
            stack.insert(-2, stack[-1])
            return None
        if m == "dup_x2":
            stack.insert(-3, stack[-1])
            return None
        if m == "dup2":
            stack.extend(stack[-2:])
            return None
        if m == "swap":
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return None

        # --- int arithmetic ---
        if m in _INT_BINOPS:
            b = stack.pop()
            a = stack.pop()
            stack.append(_INT_BINOPS[m](a, b))
            return None
        if m == "ineg":
            stack.append(_i32(-stack.pop()))
            return None

        # --- long arithmetic (two-slot values) ---
        if m in _LONG_BINOPS:
            shift = m in ("lshl", "lshr")
            if shift:
                b = stack.pop()
            else:
                _pop_pad(stack)
                b = stack.pop()
            _pop_pad(stack)
            a = stack.pop()
            stack.append(_LONG_BINOPS[m](a, b))
            stack.append(PAD)
            return None
        if m == "lneg":
            _pop_pad(stack)
            stack.append(_i64(-stack.pop()))
            stack.append(PAD)
            return None
        if m == "lcmp":
            _pop_pad(stack)
            b = stack.pop()
            _pop_pad(stack)
            a = stack.pop()
            stack.append((a > b) - (a < b))
            return None

        # --- float/double arithmetic ---
        if m in _FLOAT_BINOPS:
            wide = m[0] == "d"
            if wide:
                _pop_pad(stack)
            b = stack.pop()
            if wide:
                _pop_pad(stack)
            a = stack.pop()
            stack.append(_FLOAT_BINOPS[m](a, b))
            if wide:
                stack.append(PAD)
            return None
        if m in ("fneg", "dneg"):
            wide = m[0] == "d"
            if wide:
                _pop_pad(stack)
            stack.append(-stack.pop())
            if wide:
                stack.append(PAD)
            return None
        if m in ("fcmpl", "fcmpg", "dcmpl", "dcmpg"):
            wide = m[0] == "d"
            if wide:
                _pop_pad(stack)
            b = stack.pop()
            if wide:
                _pop_pad(stack)
            a = stack.pop()
            if math.isnan(a) or math.isnan(b):
                stack.append(-1 if m.endswith("l") else 1)
            else:
                stack.append((a > b) - (a < b))
            return None

        # --- conversions ---
        if m in _CONVERSIONS:
            widen_from, func, widen_to = _CONVERSIONS[m]
            if widen_from:
                _pop_pad(stack)
            stack.append(func(stack.pop()))
            if widen_to:
                stack.append(PAD)
            return None

        # --- branches ---
        if m in _IF_ZERO:
            value = stack.pop()
            if _IF_ZERO[m](value):
                return _Jump(ops[0])
            return None
        if m in _IF_ICMP:
            b = stack.pop()
            a = stack.pop()
            if _IF_ICMP[m](a, b):
                return _Jump(ops[0])
            return None
        if m == "if_acmpeq":
            b, a = stack.pop(), stack.pop()
            return _Jump(ops[0]) if a is b else None
        if m == "if_acmpne":
            b, a = stack.pop(), stack.pop()
            return _Jump(ops[0]) if a is not b else None
        if m == "ifnull":
            return _Jump(ops[0]) if stack.pop() is None else None
        if m == "ifnonnull":
            return _Jump(ops[0]) if stack.pop() is not None else None
        if m == "goto":
            return _Jump(ops[0])

        # --- returns ---
        if m == "return":
            return _RETURN_VOID
        if m in ("ireturn", "freturn", "areturn"):
            return _ReturnValue(stack.pop())
        if m in ("lreturn", "dreturn"):
            _pop_pad(stack)
            return _ReturnValue(stack.pop())

        # --- fields ---
        if m == "getfield":
            owner, name, descriptor = ops
            obj = stack.pop()
            if not isinstance(obj, JObject):
                raise JVMRuntimeError(
                    f"getfield {name} on non-object {obj!r}")
            if name not in obj.fields:
                raise JVMRuntimeError(
                    f"object of {obj.class_name} has no field {name}")
            stack.append(obj.fields[name])
            if slot_width(descriptor) == 2:
                stack.append(PAD)
            return None
        if m == "putfield":
            owner, name, descriptor = ops
            if slot_width(descriptor) == 2:
                _pop_pad(stack)
            value = stack.pop()
            obj = stack.pop()
            if not isinstance(obj, JObject):
                raise JVMRuntimeError(
                    f"putfield {name} on non-object {obj!r}")
            obj.fields[name] = value
            return None
        if m in ("getstatic", "putstatic"):
            raise JVMRuntimeError("static fields are not supported")

        # --- allocation ---
        if m == "new":
            stack.append(JObject(ops[0]))
            return None
        if m == "newarray":
            length = stack.pop()
            elem = {"int": "I", "long": "J", "float": "F", "double": "D",
                    "short": "S", "byte": "B", "char": "C",
                    "boolean": "Z"}[ATYPE_NAMES[ops[0]]]
            stack.append(JArray.new(elem, length))
            return None
        if m == "anewarray":
            length = stack.pop()
            stack.append(JArray.new(f"L{ops[0]};", length))
            return None

        # --- invokes ---
        if m in ("invokevirtual", "invokespecial", "invokestatic"):
            return self._invoke_instr(m, ops, stack)

        raise JVMRuntimeError(f"unimplemented opcode {m}")

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------

    def _invoke_instr(self, m: str, ops: tuple, stack: list):
        owner, name, descriptor = ops
        parsed = parse_method_descriptor(descriptor)
        args: list = []
        for ptype in reversed(parsed.params):
            if slot_width(ptype) == 2:
                _pop_pad(stack)
            args.append(stack.pop())
        args.reverse()
        if m != "invokestatic":
            receiver = stack.pop()
            args.insert(0, receiver)

        result = self._dispatch(m, owner, name, descriptor, args)
        if parsed.return_type != "V":
            stack.append(result)
            if parsed.return_slots == 2:
                stack.append(PAD)
        return None

    def _dispatch(self, m: str, owner: str, name: str, descriptor: str,
                  args: list):
        # Builtin runtime classes.
        if owner == "java/lang/Object" and name == "<init>":
            return None
        if owner == "java/lang/Math":
            self.cost.charge_math(name)
            if name in _MATH_UNARY and len(args) == 1:
                return _MATH_UNARY[name](*args)
            if name in _MATH_BINARY and len(args) == 2:
                return _MATH_BINARY[name](*args)
            raise JVMRuntimeError(f"unsupported Math.{name}{descriptor}")
        if owner == "java/lang/String":
            text = args[0]
            if not isinstance(text, str):
                raise JVMRuntimeError(f"String method on {text!r}")
            if name == "charAt":
                index = args[1]
                if not 0 <= index < len(text):
                    raise JVMRuntimeError(
                        f"charAt({index}) out of range for length {len(text)}")
                return ord(text[index])
            if name == "length":
                return len(text)
            raise JVMRuntimeError(f"unsupported String.{name}")

        # User / builtin-library classes dispatched through the registry.
        if m == "invokevirtual" and isinstance(args[0], JObject):
            owner = args[0].class_name  # dynamic dispatch
        jclass, method = self.registry.resolve_method(owner, name, descriptor)
        return self._run(jclass.name, method, args)


# ---------------------------------------------------------------------------
# Helpers and dispatch tables
# ---------------------------------------------------------------------------


class _Jump:
    __slots__ = ("target",)

    def __init__(self, target: int):
        self.target = target


class _ReturnValue:
    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value


_RETURN_VOID = object()


def _pop_pad(stack: list) -> None:
    top = stack.pop()
    if top is not PAD:
        raise JVMRuntimeError("expected wide-value padding slot on stack")


def _expect_array(value) -> JArray:
    if not isinstance(value, JArray):
        raise JVMRuntimeError(f"expected array, got {value!r}")
    return value


_INT_BINOPS = {
    "iadd": lambda a, b: _i32(a + b),
    "isub": lambda a, b: _i32(a - b),
    "imul": lambda a, b: _i32(a * b),
    "idiv": lambda a, b: _i32(_jdiv(a, b)),
    "irem": lambda a, b: _i32(_jrem(a, b)),
    "ishl": lambda a, b: _i32(a << (b & 31)),
    "ishr": lambda a, b: _i32(a >> (b & 31)),
    "iushr": lambda a, b: _i32((a & 0xFFFFFFFF) >> (b & 31)),
    "iand": lambda a, b: _i32(a & b),
    "ior": lambda a, b: _i32(a | b),
    "ixor": lambda a, b: _i32(a ^ b),
}

_LONG_BINOPS = {
    "ladd": lambda a, b: _i64(a + b),
    "lsub": lambda a, b: _i64(a - b),
    "lmul": lambda a, b: _i64(a * b),
    "ldiv": lambda a, b: _i64(_jdiv(a, b)),
    "lrem": lambda a, b: _i64(_jrem(a, b)),
    "lshl": lambda a, b: _i64(a << (b & 63)),
    "lshr": lambda a, b: _i64(a >> (b & 63)),
    "land": lambda a, b: a & b,
    "lor": lambda a, b: a | b,
    "lxor": lambda a, b: a ^ b,
}

_FLOAT_BINOPS = {
    "fadd": lambda a, b: a + b, "dadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b, "dsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b, "dmul": lambda a, b: a * b,
    "fdiv": lambda a, b: _fdiv(a, b), "ddiv": lambda a, b: _fdiv(a, b),
    "frem": lambda a, b: math.fmod(a, b), "drem": lambda a, b: math.fmod(a, b),
}


def _fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.inf * math.copysign(1.0, a) * math.copysign(1.0, b)
    return a / b


#: (pops_pad, converter, pushes_pad) per conversion opcode.
_CONVERSIONS = {
    "i2l": (False, _i64, True),
    "i2f": (False, float, False),
    "i2d": (False, float, True),
    "l2i": (True, _i32, False),
    "l2f": (True, float, False),
    "l2d": (True, float, True),
    "f2i": (False, lambda v: _i32(int(v)) if math.isfinite(v) else (
        _INT_MAX if v > 0 else (_INT_MIN if v < 0 else 0)), False),
    "f2l": (False, lambda v: _i64(int(v)) if math.isfinite(v) else 0, True),
    "f2d": (False, float, True),
    "d2i": (True, lambda v: _i32(int(v)) if math.isfinite(v) else (
        _INT_MAX if v > 0 else (_INT_MIN if v < 0 else 0)), False),
    "d2l": (True, lambda v: _i64(int(v)) if math.isfinite(v) else 0, True),
    "d2f": (True, float, False),
    "i2b": (False, lambda v: _i32((v & 0xFF) - 256 if (v & 0xFF) > 127
                                  else v & 0xFF), False),
    "i2c": (False, lambda v: v & 0xFFFF, False),
    "i2s": (False, lambda v: _i32((v & 0xFFFF) - 65536
                                  if (v & 0xFFFF) > 32767
                                  else v & 0xFFFF), False),
}

_IF_ZERO = {
    "ifeq": lambda v: v == 0,
    "ifne": lambda v: v != 0,
    "iflt": lambda v: v < 0,
    "ifge": lambda v: v >= 0,
    "ifgt": lambda v: v > 0,
    "ifle": lambda v: v <= 0,
}

_IF_ICMP = {
    "if_icmpeq": lambda a, b: a == b,
    "if_icmpne": lambda a, b: a != b,
    "if_icmplt": lambda a, b: a < b,
    "if_icmpge": lambda a, b: a >= b,
    "if_icmpgt": lambda a, b: a > b,
    "if_icmple": lambda a, b: a <= b,
}
