"""JVM instruction set table (the subset S2FA kernels exercise).

Each opcode is described by its real JVM byte value and an operand *kind*
that drives assembly, binary encoding/decoding, interpretation, and
decompilation:

========  =====================================================
kind      operands (symbolic form)
========  =====================================================
none      ()
local     (local_index,)                       — u1 in binary
byte      (imm,)                               — s1 immediate
short     (imm,)                               — s2 immediate
branch    (label_or_offset,)                   — s2 pc-relative
iinc      (local_index, delta)                 — u1, s1
atype     (array_type_code,)                   — u1
ldc       (python_constant,)                   — u1 cp index
ldc2      (python_constant,)                   — u2 cp index
field     (class_name, field_name, descriptor) — u2 cp index
method    (class_name, method_name, descriptor)— u2 cp index
class     (class_name,)                        — u2 cp index
========  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BytecodeError


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    mnemonic: str
    byte: int
    kind: str
    #: net operand-stack effect in slots (long/double count as 2); None for
    #: opcodes whose effect depends on the resolved descriptor (invokes).
    stack_delta: int | None


def _spec(mnemonic: str, byte: int, kind: str = "none",
          stack: int | None = 0) -> OpSpec:
    return OpSpec(mnemonic, byte, kind, stack)


_SPECS = [
    _spec("nop", 0x00),
    _spec("aconst_null", 0x01, stack=1),
    _spec("iconst_m1", 0x02, stack=1),
    _spec("iconst_0", 0x03, stack=1),
    _spec("iconst_1", 0x04, stack=1),
    _spec("iconst_2", 0x05, stack=1),
    _spec("iconst_3", 0x06, stack=1),
    _spec("iconst_4", 0x07, stack=1),
    _spec("iconst_5", 0x08, stack=1),
    _spec("lconst_0", 0x09, stack=2),
    _spec("lconst_1", 0x0A, stack=2),
    _spec("fconst_0", 0x0B, stack=1),
    _spec("fconst_1", 0x0C, stack=1),
    _spec("fconst_2", 0x0D, stack=1),
    _spec("dconst_0", 0x0E, stack=2),
    _spec("dconst_1", 0x0F, stack=2),
    _spec("bipush", 0x10, "byte", 1),
    _spec("sipush", 0x11, "short", 1),
    _spec("ldc", 0x12, "ldc", 1),
    _spec("ldc2_w", 0x14, "ldc2", 2),
    _spec("iload", 0x15, "local", 1),
    _spec("lload", 0x16, "local", 2),
    _spec("fload", 0x17, "local", 1),
    _spec("dload", 0x18, "local", 2),
    _spec("aload", 0x19, "local", 1),
    _spec("iaload", 0x2E, stack=-1),
    _spec("laload", 0x2F, stack=0),
    _spec("faload", 0x30, stack=-1),
    _spec("daload", 0x31, stack=0),
    _spec("aaload", 0x32, stack=-1),
    _spec("baload", 0x33, stack=-1),
    _spec("caload", 0x34, stack=-1),
    _spec("saload", 0x35, stack=-1),
    _spec("istore", 0x36, "local", -1),
    _spec("lstore", 0x37, "local", -2),
    _spec("fstore", 0x38, "local", -1),
    _spec("dstore", 0x39, "local", -2),
    _spec("astore", 0x3A, "local", -1),
    _spec("iastore", 0x4F, stack=-3),
    _spec("lastore", 0x50, stack=-4),
    _spec("fastore", 0x51, stack=-3),
    _spec("dastore", 0x52, stack=-4),
    _spec("aastore", 0x53, stack=-3),
    _spec("bastore", 0x54, stack=-3),
    _spec("castore", 0x55, stack=-3),
    _spec("sastore", 0x56, stack=-3),
    _spec("pop", 0x57, stack=-1),
    _spec("pop2", 0x58, stack=-2),
    _spec("dup", 0x59, stack=1),
    _spec("dup_x1", 0x5A, stack=1),
    _spec("dup_x2", 0x5B, stack=1),
    _spec("dup2", 0x5C, stack=2),
    _spec("swap", 0x5F, stack=0),
    _spec("iadd", 0x60, stack=-1),
    _spec("ladd", 0x61, stack=-2),
    _spec("fadd", 0x62, stack=-1),
    _spec("dadd", 0x63, stack=-2),
    _spec("isub", 0x64, stack=-1),
    _spec("lsub", 0x65, stack=-2),
    _spec("fsub", 0x66, stack=-1),
    _spec("dsub", 0x67, stack=-2),
    _spec("imul", 0x68, stack=-1),
    _spec("lmul", 0x69, stack=-2),
    _spec("fmul", 0x6A, stack=-1),
    _spec("dmul", 0x6B, stack=-2),
    _spec("idiv", 0x6C, stack=-1),
    _spec("ldiv", 0x6D, stack=-2),
    _spec("fdiv", 0x6E, stack=-1),
    _spec("ddiv", 0x6F, stack=-2),
    _spec("irem", 0x70, stack=-1),
    _spec("lrem", 0x71, stack=-2),
    _spec("frem", 0x72, stack=-1),
    _spec("drem", 0x73, stack=-2),
    _spec("ineg", 0x74, stack=0),
    _spec("lneg", 0x75, stack=0),
    _spec("fneg", 0x76, stack=0),
    _spec("dneg", 0x77, stack=0),
    _spec("ishl", 0x78, stack=-1),
    _spec("lshl", 0x79, stack=-1),
    _spec("ishr", 0x7A, stack=-1),
    _spec("lshr", 0x7B, stack=-1),
    _spec("iushr", 0x7C, stack=-1),
    _spec("iand", 0x7E, stack=-1),
    _spec("land", 0x7F, stack=-2),
    _spec("ior", 0x80, stack=-1),
    _spec("lor", 0x81, stack=-2),
    _spec("ixor", 0x82, stack=-1),
    _spec("lxor", 0x83, stack=-2),
    _spec("iinc", 0x84, "iinc", 0),
    _spec("i2l", 0x85, stack=1),
    _spec("i2f", 0x86, stack=0),
    _spec("i2d", 0x87, stack=1),
    _spec("l2i", 0x88, stack=-1),
    _spec("l2f", 0x89, stack=-1),
    _spec("l2d", 0x8A, stack=0),
    _spec("f2i", 0x8B, stack=0),
    _spec("f2l", 0x8C, stack=1),
    _spec("f2d", 0x8D, stack=1),
    _spec("d2i", 0x8E, stack=-1),
    _spec("d2l", 0x8F, stack=0),
    _spec("d2f", 0x90, stack=-1),
    _spec("i2b", 0x91, stack=0),
    _spec("i2c", 0x92, stack=0),
    _spec("i2s", 0x93, stack=0),
    _spec("lcmp", 0x94, stack=-3),
    _spec("fcmpl", 0x95, stack=-1),
    _spec("fcmpg", 0x96, stack=-1),
    _spec("dcmpl", 0x97, stack=-3),
    _spec("dcmpg", 0x98, stack=-3),
    _spec("ifeq", 0x99, "branch", -1),
    _spec("ifne", 0x9A, "branch", -1),
    _spec("iflt", 0x9B, "branch", -1),
    _spec("ifge", 0x9C, "branch", -1),
    _spec("ifgt", 0x9D, "branch", -1),
    _spec("ifle", 0x9E, "branch", -1),
    _spec("if_icmpeq", 0x9F, "branch", -2),
    _spec("if_icmpne", 0xA0, "branch", -2),
    _spec("if_icmplt", 0xA1, "branch", -2),
    _spec("if_icmpge", 0xA2, "branch", -2),
    _spec("if_icmpgt", 0xA3, "branch", -2),
    _spec("if_icmple", 0xA4, "branch", -2),
    _spec("if_acmpeq", 0xA5, "branch", -2),
    _spec("if_acmpne", 0xA6, "branch", -2),
    _spec("goto", 0xA7, "branch", 0),
    _spec("ireturn", 0xAC, stack=-1),
    _spec("lreturn", 0xAD, stack=-2),
    _spec("freturn", 0xAE, stack=-1),
    _spec("dreturn", 0xAF, stack=-2),
    _spec("areturn", 0xB0, stack=-1),
    _spec("return", 0xB1, stack=0),
    _spec("getstatic", 0xB2, "field", None),
    _spec("putstatic", 0xB3, "field", None),
    _spec("getfield", 0xB4, "field", None),
    _spec("putfield", 0xB5, "field", None),
    _spec("invokevirtual", 0xB6, "method", None),
    _spec("invokespecial", 0xB7, "method", None),
    _spec("invokestatic", 0xB8, "method", None),
    _spec("new", 0xBB, "class", 1),
    _spec("newarray", 0xBC, "atype", 0),
    _spec("anewarray", 0xBD, "class", 0),
    _spec("arraylength", 0xBE, stack=0),
    _spec("ifnull", 0xC6, "branch", -1),
    _spec("ifnonnull", 0xC7, "branch", -1),
]

BY_MNEMONIC: dict[str, OpSpec] = {s.mnemonic: s for s in _SPECS}
BY_BYTE: dict[int, OpSpec] = {s.byte: s for s in _SPECS}

#: ``newarray`` atype codes (JVM spec table 6.5.newarray-A).
ATYPE_CODES = {
    "boolean": 4, "char": 5, "float": 6, "double": 7,
    "byte": 8, "short": 9, "int": 10, "long": 11,
}
ATYPE_NAMES = {v: k for k, v in ATYPE_CODES.items()}

BRANCH_OPS = frozenset(s.mnemonic for s in _SPECS if s.kind == "branch")
CONDITIONAL_BRANCH_OPS = BRANCH_OPS - {"goto"}
RETURN_OPS = frozenset(
    {"ireturn", "lreturn", "freturn", "dreturn", "areturn", "return"}
)
TERMINATOR_OPS = RETURN_OPS | {"goto"}
INVOKE_OPS = frozenset({"invokevirtual", "invokespecial", "invokestatic"})


def spec(mnemonic: str) -> OpSpec:
    """Look up an opcode by mnemonic, raising a friendly error."""
    try:
        return BY_MNEMONIC[mnemonic]
    except KeyError:
        raise BytecodeError(f"unknown opcode mnemonic {mnemonic!r}") from None


def spec_by_byte(byte: int) -> OpSpec:
    """Look up an opcode by its byte value."""
    try:
        return BY_BYTE[byte]
    except KeyError:
        raise BytecodeError(f"unknown opcode byte 0x{byte:02x}") from None
