"""Synthesized runtime-library classes (specialized tuples).

Scala's ``TupleN`` erase to ``Object`` fields on a real JVM, which is
exactly why the paper cannot support arbitrary library calls (Section 3.3:
"the bytecode of library methods might not contain enough information such
as type parameter description").  S2FA instead ships its own known
composite classes.  We mirror that: the frontend requests *specialized*
tuple classes (one per field-type combination), generated here with real
bytecode for the constructor and the ``_1``/``_2``/... accessors.

The bytecode-to-C compiler recognizes these classes by name and flattens
them (Challenge 1 of the paper).
"""

from __future__ import annotations

from .assembler import CodeBuilder, assemble
from .classfile import ACC_FINAL, ACC_PUBLIC, JClass, JField
from .descriptors import slot_width

#: Name prefix of synthesized tuple classes, e.g. ``s2fa/Tuple2_IF``.
TUPLE_PREFIX = "s2fa/Tuple"


def _mangle_descriptor(descriptor: str) -> str:
    if descriptor == "Ljava/lang/String;":
        return "s"
    if descriptor.startswith("["):
        return "A" + _mangle_descriptor(descriptor[1:])
    if descriptor.startswith("L") and descriptor.endswith(";"):
        # Nested object types (e.g. an inner specialized tuple): wrap the
        # slash-free class name in T...E so the result is unambiguous.
        return "T" + descriptor[1:-1].replace("/", "_") + "E"
    return descriptor


def tuple_class_name(field_descriptors: tuple[str, ...]) -> str:
    """Mangled class name for a specialized tuple.

    Array/object descriptors contain characters illegal in class names, so
    they are mangled: ``[`` -> ``A``, ``Ljava/lang/String;`` -> ``s``, and
    any other ``L...;`` object descriptor (nested tuples) -> ``T...E``
    with ``/`` replaced by ``_``.
    """
    mangled = [_mangle_descriptor(d) for d in field_descriptors]
    return f"{TUPLE_PREFIX}{len(field_descriptors)}_{''.join(mangled)}"


def is_tuple_class(name: str) -> bool:
    """Is ``name`` one of the synthesized specialized tuple classes?"""
    return name.startswith(TUPLE_PREFIX)


def _load_for(builder: CodeBuilder, descriptor: str, slot: int) -> None:
    prefix = {"I": "i", "S": "i", "B": "i", "C": "i", "Z": "i",
              "J": "l", "F": "f", "D": "d"}.get(descriptor, "a")
    builder.emit(f"{prefix}load", slot)


def _return_for(builder: CodeBuilder, descriptor: str) -> None:
    prefix = {"I": "i", "S": "i", "B": "i", "C": "i", "Z": "i",
              "J": "l", "F": "f", "D": "d"}.get(descriptor, "a")
    builder.emit(f"{prefix}return")


def make_tuple_class(field_descriptors: tuple[str, ...]) -> JClass:
    """Build a specialized TupleN class with constructor and accessors."""
    name = tuple_class_name(field_descriptors)
    jclass = JClass(name=name)
    for i, descriptor in enumerate(field_descriptors, start=1):
        jclass.fields.append(JField(
            name=f"_{i}",
            descriptor=descriptor,
            access_flags=ACC_PUBLIC | ACC_FINAL,
        ))

    # <init>(fields...)V — calls super() then stores every field.
    init = CodeBuilder()
    init.emit("aload", 0)
    init.emit("invokespecial", "java/lang/Object", "<init>", "()V")
    slot = 1
    for i, descriptor in enumerate(field_descriptors, start=1):
        init.emit("aload", 0)
        _load_for(init, descriptor, slot)
        init.emit("putfield", name, f"_{i}", descriptor)
        slot += slot_width(descriptor)
    init.emit("return")
    jclass.methods.append(assemble(
        "<init>", f"({''.join(field_descriptors)})V", init))

    # Accessors _1()..._N() — aload_0; getfield; return.
    for i, descriptor in enumerate(field_descriptors, start=1):
        acc = CodeBuilder()
        acc.emit("aload", 0)
        acc.emit("getfield", name, f"_{i}", descriptor)
        _return_for(acc, descriptor)
        jclass.methods.append(assemble(f"_{i}", f"(){descriptor}", acc))
    return jclass
